//! Fault-injection integration through the facade crate: determinism of
//! seeded [`FaultPlan`]s, the stop-and-wait ARQ contract of the TUTMAC
//! case study under injected bit errors, and the quiescence watchdog on
//! a processing-element outage.

use tut_profile_suite::faults::{FaultConfig, FaultPlan, Outage};
use tut_profile_suite::profiling;
use tut_profile_suite::sim::{RecordRef, SimConfig, SimError, SimReport, Simulation};
use tut_profile_suite::trace::NoopSink;
use tut_profile_suite::tutmac::{self, TutmacConfig};

/// The paper's case-study system with default calibration.
fn paper_system() -> tut_profile_suite::profile::SystemModel {
    tutmac::build_tutmac_system(&TutmacConfig::default()).expect("tutmac builds")
}

/// A short horizon that still carries dozens of ARQ frames.
fn short_config() -> SimConfig {
    SimConfig::with_horizon_ns(10_000_000)
}

fn run_plain(config: SimConfig) -> SimReport {
    Simulation::from_system(&paper_system(), config)
        .expect("sim builds")
        .run()
        .expect("sim runs")
}

fn run_faulted(config: SimConfig, fault_config: FaultConfig) -> SimReport {
    let mut plan = FaultPlan::new(fault_config);
    Simulation::from_system(&paper_system(), config)
        .expect("sim builds")
        .run_with_faults(&mut plan, &mut NoopSink)
        .expect("sim runs")
}

/// Determinism regression: a zero-rate fault plan must be byte-identical
/// to a build that never heard of fault injection — same report, same
/// log-file text.
#[test]
fn zero_rate_fault_plan_is_byte_identical_to_a_plain_run() {
    let plain = run_plain(short_config());
    let faulted = run_faulted(short_config(), FaultConfig::default());

    assert_eq!(
        plain.log.to_text(),
        faulted.log.to_text(),
        "zero-rate fault plan must not perturb the log-file"
    );
    assert_eq!(plain, faulted, "reports must match field for field");
    assert_eq!(faulted.faults.injected(), 0);
}

/// Same seed, same scenario: the whole campaign is reproducible.
#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let fault_config = FaultConfig::with_ber(0xABCD, 1e-4);
    let first = run_faulted(short_config(), fault_config.clone());
    let second = run_faulted(short_config(), fault_config);

    assert!(
        first.faults.corrupted > 0,
        "BER 1e-4 over 10 ms should corrupt at least one transfer"
    );
    assert_eq!(first.log.to_text(), second.log.to_text());
    assert_eq!(first, second);

    let other_seed = run_faulted(short_config(), FaultConfig::with_ber(0xDCBA, 1e-4));
    assert_ne!(
        first.log.to_text(),
        other_seed.log.to_text(),
        "a different seed should land faults differently"
    );
}

/// The stop-and-wait ARQ contract, checked frame by frame from the `CNT`
/// records of the log: for any seeded error rate below 1.0, every frame
/// the sender does not give up on is acknowledged exactly once, frames
/// are handled strictly one at a time (in order), and no frame is
/// retried past the configured cap.
#[test]
fn arq_delivers_every_non_abandoned_frame_exactly_once_in_order() {
    // Disable the channel's deterministic ack-loss so injected bit
    // errors are the only disturbance under test.
    let tutmac_config = TutmacConfig {
        loss_modulus: 0,
        ..TutmacConfig::default()
    };
    let system = tutmac::build_tutmac_system(&tutmac_config).expect("tutmac builds");

    for seed in [0xA1, 0xB2, 0xC3] {
        for ber in [1e-5, 1e-4] {
            let mut plan = FaultPlan::new(FaultConfig::with_ber(seed, ber));
            let report = Simulation::from_system(&system, short_config())
                .expect("sim builds")
                .run_with_faults(&mut plan, &mut NoopSink)
                .expect("sim runs");

            check_arq_contract(&report, tutmac_config.max_retries, seed, ber);
        }
    }
}

/// Walks the log's `arq.*` counter records and asserts the per-frame
/// stop-and-wait invariants.
fn check_arq_contract(report: &SimReport, max_retries: i64, seed: u64, ber: f64) {
    let ctx = format!("seed {seed:#x}, BER {ber:e}");
    let mut open = false; // a frame window is in flight
    let mut window_retries = 0i64;
    let mut window_outcomes = 0i64; // acked + gave_up of the open window
    let mut tx = 0i64;
    let mut acked = 0i64;
    let mut gave_up = 0i64;

    for record in report.log.iter() {
        let RecordRef::Count {
            counter, amount, ..
        } = record
        else {
            continue;
        };
        match counter {
            "arq.tx" => {
                // The previous frame must be fully settled before the
                // next one starts: that is the in-order guarantee of
                // stop-and-wait.
                if open {
                    assert_eq!(
                        window_outcomes, 1,
                        "{ctx}: frame window must settle (ack or give-up) before the next tx"
                    );
                }
                open = true;
                window_retries = 0;
                window_outcomes = 0;
                tx += amount;
            }
            "arq.retries" => {
                assert!(open, "{ctx}: retry outside any frame window");
                assert_eq!(window_outcomes, 0, "{ctx}: retry after the frame settled");
                window_retries += amount;
                assert!(
                    window_retries <= max_retries,
                    "{ctx}: frame exceeded the retry cap ({window_retries} > {max_retries})"
                );
            }
            "arq.acked" | "arq.gave_up" => {
                assert!(open, "{ctx}: outcome outside any frame window");
                window_outcomes += amount;
                assert_eq!(
                    window_outcomes, 1,
                    "{ctx}: a frame must settle exactly once (duplicate ack or give-up)"
                );
                if counter == "arq.acked" {
                    acked += amount;
                } else {
                    gave_up += amount;
                }
            }
            _ => {}
        }
    }

    assert!(tx > 0, "{ctx}: the run should transmit at least one frame");
    assert!(acked > 0, "{ctx}: some frames should get through");
    assert!(
        acked + gave_up <= tx,
        "{ctx}: settled frames cannot exceed transmissions"
    );
    assert!(
        report
            .log
            .iter()
            .any(|r| matches!(r, RecordRef::Count { counter, .. } if counter == "arq.tx")),
        "{ctx}: counter records must be present in the log"
    );
}

/// A permanent outage of every mapped processing element leaves only the
/// environment ticking: the run makes no useful progress, and the
/// quiescence watchdog must convert that livelock into an error naming
/// the starved processes.
#[test]
fn pe_outage_trips_the_quiescence_watchdog() {
    let mut config = SimConfig::with_horizon_ns(20_000_000);
    config.watchdog.quiescence_ns = 2_000_000;

    // Control: the un-faulted system finishes under the same watchdog.
    let mut none = FaultPlan::new(FaultConfig::default());
    Simulation::from_system(&paper_system(), config.clone())
        .expect("sim builds")
        .run_with_faults(&mut none, &mut NoopSink)
        .expect("the healthy system must not trip the watchdog");

    let outages = ["processor1", "processor2", "processor3", "accelerator1"]
        .into_iter()
        .map(|pe| Outage {
            pe: pe.to_owned(),
            from_ns: 0,
            until_ns: u64::MAX,
        })
        .collect();
    let mut plan = FaultPlan::new(FaultConfig {
        outages,
        ..FaultConfig::default()
    });
    let err = Simulation::from_system(&paper_system(), config)
        .expect("sim builds")
        .run_with_faults(&mut plan, &mut NoopSink)
        .expect_err("a fully stalled platform must trip the watchdog");

    match err {
        SimError::WatchdogExpired {
            limit,
            hot_processes,
            time_ns,
            ..
        } => {
            assert_eq!(limit, "quiescence");
            assert!(
                !hot_processes.is_empty(),
                "the error should name the starved processes"
            );
            assert!(time_ns > 0);
        }
        other => panic!("expected WatchdogExpired, got {other}"),
    }
}

/// The profiling report of a lossy run surfaces the fault totals and the
/// retransmission counters of the ARQ process group (the acceptance
/// criterion of the fault-injection campaign).
#[test]
fn profiling_report_surfaces_fault_and_retry_counters() {
    let mut plan = FaultPlan::new(FaultConfig::with_ber(0x7071, 1e-4));
    let report = profiling::profile_system_with_faults(
        &paper_system(),
        short_config(),
        &mut plan,
        &mut NoopSink,
    )
    .expect("profiling pipeline");

    assert!(
        report.faults.corrupted > 0,
        "BER 1e-4 should corrupt frames"
    );
    assert!(
        report.counter_total("arq.retries") > 0,
        "corrupted frames must drive retransmissions"
    );
    let retry_group = report
        .group_counters
        .iter()
        .find(|c| c.counter == "arq.retries")
        .expect("retry counter attributed to a process group");
    assert!(
        !retry_group.group.is_empty() && retry_group.total > 0,
        "the retransmitting group must show a non-zero retry counter"
    );
}
