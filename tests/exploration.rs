//! Cross-crate integration of the exploration loop: profile → analyse →
//! re-group/re-map → re-profile, asserting the optimiser's results are
//! consistent with the paper's design decisions.

use tut_profile_suite::explore;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::SimConfig;
use tut_profile_suite::tutmac::{self, TutmacConfig};

#[test]
fn partitioner_reproduces_the_papers_grouping_intent() {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("build");
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(20_000_000))
        .expect("profile");
    let graph = explore::CommGraph::from_report(&report);

    // Pin the environment out of the way, then ask for 5 parts.
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let solution = explore::partition(
        &graph,
        &explore::GroupingOptions {
            groups: 5,
            balance_weight: 0.0,
            pinned,
            ..Default::default()
        },
    );

    // The paper's own grouping scored on the same graph.
    let paper: Vec<usize> = graph
        .nodes()
        .iter()
        .map(|name| match name.as_str() {
            "rca" | "mng" | "rmng" => 0,
            "ui.msduRec" | "ui.msduDel" => 1,
            "dp.frag" | "dp.defrag" => 2,
            "dp.crc" => 3,
            _ => 4,
        })
        .collect();
    let paper_cut = graph.cut_weight(&paper);
    assert!(
        solution.cut_weight <= paper_cut,
        "the optimiser must match or beat the paper's manual grouping: {} vs {paper_cut}",
        solution.cut_weight
    );

    // Sanity: heavy communicators end up together.
    let frag = graph.index_of("dp.frag").expect("frag node");
    let crc = graph.index_of("dp.crc").expect("crc node");
    let rca = graph.index_of("rca").expect("rca node");
    let same_cluster = solution.assignment[frag] == solution.assignment[crc]
        || solution.assignment[crc] == solution.assignment[rca];
    assert!(
        same_cluster,
        "crc must join one of its heavy peers (frag or rca)"
    );
}

#[test]
fn remapping_respects_fixed_group4() {
    let (system, handles) =
        tutmac::model::build_with_handles(&TutmacConfig::default()).expect("build");
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(10_000_000))
        .expect("profile");
    let (problem, groups, instances) =
        explore::mapping::problem_from_system(&system, &report).expect("problem");

    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator");
    let solution = explore::optimise_mapping(
        &problem,
        &explore::MappingOptions {
            pinned: vec![(3, acc_index)],
            ..Default::default()
        },
    );
    let mut remapped = system.clone();
    explore::apply::apply_mapping(&mut remapped, &groups, &instances, &solution.assignment);

    // group4's mapping is Fixed in the model; whatever the optimiser says,
    // it stays on the accelerator.
    assert_eq!(
        remapped.mapping().instance_of(handles.groups[3]),
        Some(handles.accelerator)
    );
    // The remapped system still validates and simulates.
    assert!(remapped.validate_errors().is_empty());
    let report2 = profiling::profile_system(&remapped, SimConfig::with_horizon_ns(5_000_000))
        .expect("reprofile");
    assert!(report2.total_cycles > 0);
}

#[test]
fn static_and_dynamic_graphs_agree_on_the_heavy_edges() {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("build");
    let dynamic = explore::CommGraph::from_report(
        &profiling::profile_system(&system, SimConfig::with_horizon_ns(10_000_000))
            .expect("profile"),
    );
    let static_graph = explore::CommGraph::from_static(&system).expect("static");

    // Every dynamically observed edge exists statically (the static graph
    // over-approximates: it knows connectivity, not traffic volume).
    for (a, b, w) in dynamic.edges() {
        if w == 0 {
            continue;
        }
        let sa = static_graph.index_of(&dynamic.nodes()[a]);
        let sb = static_graph.index_of(&dynamic.nodes()[b]);
        let (Some(sa), Some(sb)) = (sa, sb) else {
            panic!("dynamic node missing statically");
        };
        assert!(
            static_graph.weight(sa, sb) > 0,
            "edge {}-{} observed dynamically but absent statically",
            dynamic.nodes()[a],
            dynamic.nodes()[b]
        );
    }
}
