//! Cross-crate integration of the exploration loop: profile → analyse →
//! re-group/re-map → re-profile, asserting the optimiser's results are
//! consistent with the paper's design decisions.

use tut_profile_suite::explore;
use tut_profile_suite::profile::application::ProcessType;
use tut_profile_suite::profile::platform::ComponentKind;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::SimConfig;
use tut_profile_suite::trace::SplitMix64;
use tut_profile_suite::tutmac::{self, TutmacConfig};

#[test]
fn partitioner_reproduces_the_papers_grouping_intent() {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("build");
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(20_000_000))
        .expect("profile");
    let graph = explore::CommGraph::from_report(&report);

    // Pin the environment out of the way, then ask for 5 parts.
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let solution = explore::partition(
        &graph,
        &explore::GroupingOptions {
            groups: 5,
            balance_weight: 0.0,
            pinned,
            ..Default::default()
        },
    );

    // The paper's own grouping scored on the same graph.
    let paper: Vec<usize> = graph
        .nodes()
        .iter()
        .map(|name| match name.as_str() {
            "rca" | "mng" | "rmng" => 0,
            "ui.msduRec" | "ui.msduDel" => 1,
            "dp.frag" | "dp.defrag" => 2,
            "dp.crc" => 3,
            _ => 4,
        })
        .collect();
    let paper_cut = graph.cut_weight(&paper);
    assert!(
        solution.cut_weight <= paper_cut,
        "the optimiser must match or beat the paper's manual grouping: {} vs {paper_cut}",
        solution.cut_weight
    );

    // Sanity: heavy communicators end up together.
    let frag = graph.index_of("dp.frag").expect("frag node");
    let crc = graph.index_of("dp.crc").expect("crc node");
    let rca = graph.index_of("rca").expect("rca node");
    let same_cluster = solution.assignment[frag] == solution.assignment[crc]
        || solution.assignment[crc] == solution.assignment[rca];
    assert!(
        same_cluster,
        "crc must join one of its heavy peers (frag or rca)"
    );
}

#[test]
fn remapping_respects_fixed_group4() {
    let (system, handles) =
        tutmac::model::build_with_handles(&TutmacConfig::default()).expect("build");
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(10_000_000))
        .expect("profile");
    let (problem, groups, instances) =
        explore::mapping::problem_from_system(&system, &report).expect("problem");

    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator");
    let solution = explore::optimise_mapping(
        &problem,
        &explore::MappingOptions {
            pinned: vec![(3, acc_index)],
            ..Default::default()
        },
    );
    let mut remapped = system.clone();
    explore::apply::apply_mapping(&mut remapped, &groups, &instances, &solution.assignment);

    // group4's mapping is Fixed in the model; whatever the optimiser says,
    // it stays on the accelerator.
    assert_eq!(
        remapped.mapping().instance_of(handles.groups[3]),
        Some(handles.accelerator)
    );
    // The remapped system still validates and simulates.
    assert!(remapped.validate_errors().is_empty());
    let report2 = profiling::profile_system(&remapped, SimConfig::with_horizon_ns(5_000_000))
        .expect("reprofile");
    assert!(report2.total_cycles > 0);
}

/// Property: the parallel exhaustive mapping search returns exactly the
/// serial solution — same assignment, bit-identical cost — across random
/// problems, pin sets, and thread counts.
#[test]
fn parallel_mapping_matches_serial_on_random_problems() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    let kinds = [
        ProcessType::General,
        ProcessType::Dsp,
        ProcessType::Hardware,
    ];
    let pe_kinds = [
        ComponentKind::General,
        ComponentKind::Dsp,
        ComponentKind::HwAccelerator,
    ];
    for _case in 0..25 {
        let groups = 2 + rng.next_index(4);
        let pes = 2 + rng.next_index(3);
        let mut comm = vec![vec![0u64; groups]; groups];
        for (g, row) in comm.iter_mut().enumerate() {
            for (h, cell) in row.iter_mut().enumerate() {
                if g != h {
                    *cell = rng.next_below(200);
                }
            }
        }
        let mut distance = vec![vec![0u64; pes]; pes];
        for (a, row) in distance.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                if a != b {
                    *cell = 1 + rng.next_below(3);
                }
            }
        }
        let problem = explore::mapping::MappingProblem {
            group_names: (0..groups).map(|g| format!("g{g}")).collect(),
            group_cycles: (0..groups).map(|_| rng.next_below(100_000)).collect(),
            group_kinds: (0..groups).map(|_| kinds[rng.next_index(3)]).collect(),
            comm,
            pes: (0..pes)
                .map(|_| explore::mapping::PeInfo {
                    frequency_mhz: 1 + rng.next_below(200),
                    kind: pe_kinds[rng.next_index(3)],
                })
                .collect(),
            distance,
        };
        let mut pinned: Vec<(usize, usize)> = Vec::new();
        for g in 0..groups {
            if rng.next_below(3) == 0 {
                pinned.push((g, rng.next_index(pes)));
            }
        }
        let options = |threads| explore::MappingOptions {
            pinned: pinned.clone(),
            threads,
            ..Default::default()
        };
        let serial = explore::optimise_mapping(&problem, &options(1));
        for threads in [2usize, 4] {
            let parallel = explore::optimise_mapping(&problem, &options(threads));
            assert_eq!(
                serial.assignment, parallel.assignment,
                "assignment diverged at {threads} threads (pins {pinned:?})"
            );
            assert_eq!(
                serial.cost.to_bits(),
                parallel.cost.to_bits(),
                "cost diverged at {threads} threads"
            );
        }
    }
}

/// Property: multi-start partitioning is bit-identical across thread
/// counts — every restart is a pure function of (graph, start, seed), and
/// the reduction picks the same winner regardless of which worker ran it.
#[test]
fn parallel_partition_matches_serial_on_random_graphs() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for _case in 0..15 {
        let nodes = 5 + rng.next_index(10);
        let mut graph = explore::CommGraph::default();
        for i in 0..nodes {
            let index = graph.intern(&format!("p{i}"));
            graph.set_load(index, rng.next_below(5_000));
        }
        for _ in 0..nodes * 2 {
            let a = rng.next_index(nodes);
            let b = rng.next_index(nodes);
            graph.add_edge(a, b, 1 + rng.next_below(40));
        }
        let groups = 2 + rng.next_index(3);
        let mut pinned: Vec<(usize, usize)> = Vec::new();
        for n in 0..nodes {
            if rng.next_below(4) == 0 {
                pinned.push((n, rng.next_index(groups)));
            }
        }
        let seed = rng.next_u64();
        let options = |threads| explore::GroupingOptions {
            groups,
            balance_weight: if nodes.is_multiple_of(2) { 0.2 } else { 0.0 },
            pinned: pinned.clone(),
            annealing_iterations: 400,
            seed,
            restarts: 3,
            threads,
        };
        let serial = explore::partition(&graph, &options(1));
        for threads in [2usize, 4] {
            let parallel = explore::partition(&graph, &options(threads));
            assert_eq!(
                serial.assignment, parallel.assignment,
                "assignment diverged at {threads} threads (pins {pinned:?})"
            );
            assert_eq!(serial.cut_weight, parallel.cut_weight);
            assert_eq!(
                serial.objective.to_bits(),
                parallel.objective.to_bits(),
                "objective diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn static_and_dynamic_graphs_agree_on_the_heavy_edges() {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("build");
    let dynamic = explore::CommGraph::from_report(
        &profiling::profile_system(&system, SimConfig::with_horizon_ns(10_000_000))
            .expect("profile"),
    );
    let static_graph = explore::CommGraph::from_static(&system).expect("static");

    // Every dynamically observed edge exists statically (the static graph
    // over-approximates: it knows connectivity, not traffic volume).
    for (a, b, w) in dynamic.edges() {
        if w == 0 {
            continue;
        }
        let sa = static_graph.index_of(&dynamic.nodes()[a]);
        let sb = static_graph.index_of(&dynamic.nodes()[b]);
        let (Some(sa), Some(sb)) = (sa, sb) else {
            panic!("dynamic node missing statically");
        };
        assert!(
            static_graph.weight(sa, sb) > 0,
            "edge {}-{} observed dynamically but absent statically",
            dynamic.nodes()[a],
            dynamic.nodes()[b]
        );
    }
}
