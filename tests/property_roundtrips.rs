//! Randomised tests on the cross-crate invariants: random models
//! survive the XMI round trip, random expressions survive the structural
//! encoding, random logs survive the text round trip — driven by a
//! seeded in-tree generator (deterministic, no external dependencies).

use tut_profile_suite::sim::{LogRecord, SimLog};
use tut_profile_suite::uml::action::{BinOp, Builtin, Expr, UnaryOp};
use tut_profile_suite::uml::value::{DataType, Value};
use tut_profile_suite::uml::xmi;
use tut_profile_suite::uml::Model;
use tut_trace::SplitMix64;

const CASES: usize = 64;

fn rand_ident(rng: &mut SplitMix64) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut out = String::new();
    out.push(FIRST[rng.next_index(FIRST.len())] as char);
    for _ in 0..rng.next_index(8) {
        out.push(REST[rng.next_index(REST.len())] as char);
    }
    out
}

fn rand_text(rng: &mut SplitMix64) -> String {
    // Includes XML-delicate characters on purpose.
    const CHARS: &[u8] = b"abcXYZ019 <>&'\"";
    (0..rng.next_index(24))
        .map(|_| CHARS[rng.next_index(CHARS.len())] as char)
        .collect()
}

fn rand_value(rng: &mut SplitMix64) -> Value {
    match rng.next_index(4) {
        0 => Value::Int(rng.next_u64() as i64),
        1 => Value::Bool(rng.next_index(2) == 0),
        2 => {
            let mut bytes = vec![0u8; rng.next_index(32)];
            rng.fill_bytes(&mut bytes);
            Value::Bytes(bytes)
        }
        _ => Value::Str(rand_text(rng)),
    }
}

fn rand_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.next_index(3) == 0 {
        return match rng.next_index(3) {
            0 => Expr::Lit(rand_value(rng)),
            1 => Expr::Var(rand_ident(rng)),
            _ => Expr::Param(rand_ident(rng)),
        };
    }
    match rng.next_index(6) {
        0 => rand_expr(rng, depth - 1).bin(BinOp::Add, rand_expr(rng, depth - 1)),
        1 => rand_expr(rng, depth - 1).bin(BinOp::Shl, rand_expr(rng, depth - 1)),
        2 => rand_expr(rng, depth - 1).bin(BinOp::Lt, rand_expr(rng, depth - 1)),
        3 => Expr::Unary(UnaryOp::Not, Box::new(rand_expr(rng, depth - 1))),
        4 => Expr::call(Builtin::Len, vec![rand_expr(rng, depth - 1)]),
        _ => Expr::call(
            Builtin::Min,
            vec![rand_expr(rng, depth - 1), rand_expr(rng, depth - 1)],
        ),
    }
}

/// Expressions restricted to forms whose `Display` output is valid
/// textual-notation input (byte/string literals print as summaries, so
/// they are excluded here and covered by the structural round trip).
fn rand_textual_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.next_index(3) == 0 {
        return match rng.next_index(4) {
            0 => Expr::int(rng.next_index(1_000_000) as i64),
            1 => Expr::bool(rng.next_index(2) == 0),
            2 => Expr::Var(rand_ident(rng)),
            _ => Expr::Param(rand_ident(rng)),
        };
    }
    const OPS: [BinOp; 8] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Lt,
        BinOp::Eq,
        BinOp::And,
        BinOp::BitAnd,
        BinOp::Shl,
    ];
    match rng.next_index(3) {
        0 => {
            let op = OPS[rng.next_index(OPS.len())];
            rand_textual_expr(rng, depth - 1).bin(op, rand_textual_expr(rng, depth - 1))
        }
        1 => Expr::Unary(UnaryOp::Not, Box::new(rand_textual_expr(rng, depth - 1))),
        _ => Expr::call(
            Builtin::Max,
            vec![
                rand_textual_expr(rng, depth - 1),
                rand_textual_expr(rng, depth - 1),
            ],
        ),
    }
}

#[test]
fn expressions_round_trip_structurally() {
    let mut rng = SplitMix64::new(0x0E17_0001);
    for _ in 0..CASES {
        let expr = rand_expr(&mut rng, 4);
        let node = xmi::encode_expr(&expr);
        let decoded = xmi::decode_expr(&node).expect("decode");
        assert_eq!(decoded, expr);
    }
}

#[test]
fn random_models_round_trip_through_xmi() {
    let mut rng = SplitMix64::new(0x0E17_0002);
    for _ in 0..CASES {
        let class_count = 1 + rng.next_index(7);
        let signal_count = 1 + rng.next_index(4);
        let mut model = Model::new("Random");
        let signals: Vec<_> = (0..signal_count)
            .map(|i| {
                let s = model.add_signal(format!("Sig{i}"));
                model.signal_mut(s).add_param("payload", DataType::Bytes);
                s
            })
            .collect();
        let classes: Vec<_> = (0..class_count)
            .map(|i| model.add_class(format!("C{i}")))
            .collect();
        for (i, &class) in classes.iter().enumerate() {
            let port = model.add_port(class, format!("p{i}"));
            model
                .port_mut(port)
                .add_provided(signals[rng.next_index(signals.len())]);
            if i > 0 && rng.next_index(2) == 0 {
                let parent = classes[rng.next_index(i)];
                // Only parts towards earlier classes: keeps composition acyclic.
                model.add_part(class, format!("part{i}"), parent);
            }
        }
        let text = xmi::to_xml(&model);
        let parsed = xmi::from_xml(&text).expect("parse");
        assert_eq!(parsed, model);
    }
}

#[test]
fn log_records_round_trip_as_text() {
    let mut rng = SplitMix64::new(0x0E17_0003);
    for _ in 0..CASES {
        let time = rng.next_u64();
        let cycles = rng.next_u64();
        let process = rand_ident(&mut rng);
        let signal = rand_text(&mut rng);
        let bytes = rng.next_u64();
        let mut log = SimLog::new();
        log.push(LogRecord::Exec {
            time_ns: time,
            process: process.clone(),
            cycles,
            duration_ns: cycles / 2,
            from_state: "A".into(),
            to_state: "B".into(),
            trigger: signal.clone(),
        });
        log.push(LogRecord::Sig {
            time_ns: time,
            sender: process.clone(),
            receiver: process,
            signal,
            bytes,
            latency_ns: 7,
        });
        let parsed = SimLog::parse(&log.to_text()).expect("parse");
        assert_eq!(parsed, log);
    }
}

#[test]
fn eval_never_panics() {
    let mut rng = SplitMix64::new(0x0E17_0004);
    for _ in 0..CASES {
        // Arbitrary expressions may fail to evaluate (unbound variables,
        // type errors) but must never panic.
        let expr = rand_expr(&mut rng, 4);
        let env = tut_profile_suite::uml::action::Env::new()
            .with_var("a", 1i64)
            .with_var("b", vec![1u8, 2, 3]);
        let _ = expr.eval(&env);
    }
}

#[test]
fn display_form_reparses_to_the_same_ast() {
    let mut rng = SplitMix64::new(0x0E17_0005);
    for _ in 0..CASES {
        // `Display` prints fully parenthesised text; the textual parser
        // must read it back to the identical AST.
        let expr = rand_textual_expr(&mut rng, 4);
        let text = expr.to_string();
        let reparsed = tut_profile_suite::uml::textual::parse_expr(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to reparse: {e}"));
        assert_eq!(reparsed, expr);
    }
}

#[test]
fn crc_implementations_agree() {
    let mut rng = SplitMix64::new(0x0E17_0006);
    let acc = tut_profile_suite::platform::Crc32Accelerator::new();
    for _ in 0..CASES {
        let mut data = vec![0u8; rng.next_index(1024)];
        rng.fill_bytes(&mut data);
        assert_eq!(
            acc.compute(&data),
            tut_profile_suite::uml::action::crc32_bitwise(&data)
        );
    }
}
