//! Property-based tests on the cross-crate invariants: random models
//! survive the XMI round trip, random expressions survive the structural
//! encoding, random logs survive the text round trip, and random tagged
//! values respect their declared types.

use proptest::prelude::*;

use tut_profile_suite::sim::{LogRecord, SimLog};
use tut_profile_suite::uml::action::{BinOp, Builtin, Expr};
use tut_profile_suite::uml::value::{DataType, Value};
use tut_profile_suite::uml::xmi;
use tut_profile_suite::uml::Model;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        "[a-zA-Z0-9 <>&'\"]{0,24}".prop_map(Value::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Lit),
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Var),
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Param),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bin(BinOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bin(BinOp::Shl, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bin(BinOp::Lt, b)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(tut_profile_suite::uml::action::UnaryOp::Not, Box::new(e))),
            inner.clone().prop_map(|e| Expr::call(Builtin::Len, vec![e])),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::call(Builtin::Min, vec![a, b])),
        ]
    })
}

/// Expressions restricted to forms whose `Display` output is valid
/// textual-notation input (byte/string literals print as summaries, so
/// they are excluded here and covered by the structural round trip).
fn arb_textual_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1_000_000).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::bool),
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Var),
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Param),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        let ops = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Lt),
            Just(BinOp::Eq),
            Just(BinOp::And),
            Just(BinOp::BitAnd),
            Just(BinOp::Shl),
        ];
        prop_oneof![
            (inner.clone(), ops, inner.clone()).prop_map(|(a, op, b)| a.bin(op, b)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(tut_profile_suite::uml::action::UnaryOp::Not, Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::call(Builtin::Max, vec![a, b])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expressions_round_trip_structurally(expr in arb_expr()) {
        let node = xmi::encode_expr(&expr);
        let decoded = xmi::decode_expr(&node).expect("decode");
        prop_assert_eq!(decoded, expr);
    }

    #[test]
    fn random_models_round_trip_through_xmi(
        class_count in 1usize..8,
        signal_count in 1usize..5,
        part_seed in any::<u64>(),
    ) {
        let mut model = Model::new("Random");
        let signals: Vec<_> = (0..signal_count)
            .map(|i| {
                let s = model.add_signal(format!("Sig{i}"));
                model.signal_mut(s).add_param("payload", DataType::Bytes);
                s
            })
            .collect();
        let classes: Vec<_> = (0..class_count)
            .map(|i| model.add_class(format!("C{i}")))
            .collect();
        // Deterministic pseudo-random structure from the seed.
        let mut state = part_seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for (i, &class) in classes.iter().enumerate() {
            let port = model.add_port(class, format!("p{i}"));
            model.port_mut(port).add_provided(signals[next() % signals.len()]);
            if i > 0 && next() % 2 == 0 {
                let parent = classes[next() % i];
                // Only parts towards earlier classes: keeps composition acyclic.
                model.add_part(class, format!("part{i}"), parent);
            }
        }
        let text = xmi::to_xml(&model);
        let parsed = xmi::from_xml(&text).expect("parse");
        prop_assert_eq!(parsed, model);
    }

    #[test]
    fn log_records_round_trip_as_text(
        time in any::<u64>(),
        cycles in any::<u64>(),
        process in "[a-z][a-z0-9.]{0,12}",
        signal in "[A-Z][a-zA-Z0-9]{0,10}",
        bytes in any::<u64>(),
    ) {
        let mut log = SimLog::new();
        log.push(LogRecord::Exec {
            time_ns: time,
            process: process.clone(),
            cycles,
            duration_ns: cycles / 2,
            from_state: "A".into(),
            to_state: "B".into(),
            trigger: signal.clone(),
        });
        log.push(LogRecord::Sig {
            time_ns: time,
            sender: process.clone(),
            receiver: process.clone(),
            signal,
            bytes,
            latency_ns: 7,
        });
        let parsed = SimLog::parse(&log.to_text()).expect("parse");
        prop_assert_eq!(parsed, log);
    }

    #[test]
    fn eval_never_panics(expr in arb_expr()) {
        // Arbitrary expressions may fail to evaluate (unbound variables,
        // type errors) but must never panic.
        let env = tut_profile_suite::uml::action::Env::new()
            .with_var("a", 1i64)
            .with_var("b", vec![1u8, 2, 3]);
        let _ = expr.eval(&env);
    }

    #[test]
    fn display_form_reparses_to_the_same_ast(expr in arb_textual_expr()) {
        // `Display` prints fully parenthesised text; the textual parser
        // must read it back to the identical AST.
        let text = expr.to_string();
        let reparsed = tut_profile_suite::uml::textual::parse_expr(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to reparse: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn crc_implementations_agree(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let acc = tut_profile_suite::platform::Crc32Accelerator::new();
        prop_assert_eq!(
            acc.compute(&data),
            tut_profile_suite::uml::action::crc32_bitwise(&data)
        );
    }
}
