//! Integration tests for the host-side self-profiler: the
//! zero-perturbation contract (a profiled simulation's log is
//! byte-identical to an unprofiled one), the disabled-profiler no-op
//! contract, and the renderings (folded stacks, hotspot table).
//!
//! The profiler's state is process-global, so every test that enables or
//! drains it serialises on one shared lock — `cargo test` runs
//! integration tests on a thread pool.

use std::sync::{Mutex, MutexGuard};

use tut_faults::NoFaults;
use tut_sim::{SimConfig, SimReport, Simulation};
use tut_trace::perf::{self, HostProf, NoProf, Prof};
use tut_trace::NoopSink;
use tutmac::TutmacConfig;

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tutmac_run<P: Prof>(prof: P) -> SimReport {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("tutmac builds");
    Simulation::from_system(&system, SimConfig::with_horizon_ns(2_000_000))
        .expect("sim builds")
        .run_with_faults_prof(&mut NoFaults, &mut NoopSink, prof)
        .expect("sim runs")
}

/// The tentpole discipline: profiling is observation only. The simulated
/// behaviour — every log record, byte for byte — must be identical with
/// the profiler recording and without.
#[test]
fn profiled_simulation_log_is_byte_identical_to_unprofiled() {
    let _g = guard();
    let baseline = tutmac_run(NoProf);

    perf::reset();
    perf::enable();
    let profiled = tutmac_run(HostProf);
    perf::disable();
    let report = perf::drain();

    assert_eq!(
        baseline.log.to_text(),
        profiled.log.to_text(),
        "profiling must not perturb the simulation"
    );
    assert_eq!(baseline.total_steps, profiled.total_steps);
    assert!(!report.is_empty(), "the profiled run must record frames");
}

/// With the profiler disabled, instrumented code runs but nothing is
/// recorded — `drain` returns an empty report.
#[test]
fn disabled_profiler_records_nothing_across_the_pipeline() {
    let _g = guard();
    perf::disable();
    perf::reset();
    let _ = tutmac_run(HostProf); // HostProf, but the global flag is off
    let report = perf::drain();
    assert!(report.is_empty());
    assert_eq!(report.to_folded(), "");
    assert_eq!(report.hotspots().len(), 0);
}

/// The profiled sim run produces the advertised frames: the `sim.run`
/// root, per-event-kind frames, and per-process attribution.
#[test]
fn sim_frames_carry_event_kinds_and_processes() {
    let _g = guard();
    perf::reset();
    perf::enable();
    let _ = tutmac_run(HostProf);
    perf::disable();
    let report = perf::drain();
    let labels: Vec<&str> = report.nodes.iter().map(|n| n.label.as_str()).collect();
    assert!(labels.contains(&"sim.run"), "labels: {labels:?}");
    assert!(labels.contains(&"sim.event.deliver"), "labels: {labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("proc/")),
        "per-process frames missing: {labels:?}"
    );
    // Per-process frames nest under an event kind, which nests under the
    // run root.
    let proc_node = report
        .nodes
        .iter()
        .find(|n| n.label.starts_with("proc/"))
        .expect("a process frame");
    let parent = &report.nodes[proc_node.parent.expect("process frames have parents")];
    assert!(parent.label.starts_with("sim.event."), "{}", parent.label);
}

/// The folded rendering is valid flamegraph input: every line is
/// `frame(;frame)* value` with a positive integer value, and nested
/// frames produce at least one `parent;child` line.
#[test]
fn folded_output_parses_as_collapsed_stacks() {
    let _g = guard();
    perf::reset();
    perf::enable();
    let _ = tutmac_run(HostProf);
    perf::disable();
    let folded = perf::drain().to_folded();
    assert!(!folded.is_empty());
    let mut nested = false;
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("`frames value` shape");
        let value: u64 = value.parse().expect("numeric sample value");
        assert!(value > 0, "zero-weight line: {line}");
        assert!(!stack.is_empty());
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in: {line}");
            assert!(!frame.contains(' '), "space inside frame name: {line}");
        }
        nested |= stack.contains(';');
    }
    assert!(nested, "no parent;child line in:\n{folded}");
}

/// The hotspot table and Chrome export render from the same report.
#[test]
fn hotspot_table_and_chrome_export_render() {
    let _g = guard();
    perf::reset();
    perf::enable();
    let _ = tutmac_run(HostProf);
    perf::disable();
    let report = perf::drain();
    let table = report.render_top(10);
    assert!(table.contains("sim.run"), "{table}");
    let chrome = report.to_chrome();
    let doc = tut_trace::json::parse(&chrome).expect("valid Chrome JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(
        events
            .iter()
            .any(|e| { e.get("name").and_then(tut_trace::json::Json::as_str) == Some("sim.run") }),
        "sim.run span missing from the Chrome export"
    );
}

/// The profiled full pipeline (`profile_system_prof`) produces the same
/// report as the unprofiled one and leaves pipeline-phase frames behind.
#[test]
fn profiled_pipeline_report_matches_unprofiled() {
    let _g = guard();
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("tutmac builds");
    let config = SimConfig::with_horizon_ns(2_000_000);
    let baseline = tut_profiling::profile_system(&system, config.clone()).expect("baseline");

    perf::reset();
    perf::enable();
    let profiled =
        tut_profiling::profile_system_prof(&system, config, &mut NoFaults, &mut NoopSink, HostProf)
            .expect("profiled");
    perf::disable();
    let report = perf::drain();

    assert_eq!(baseline.group_exec, profiled.group_exec);
    assert_eq!(baseline.horizon_ns, profiled.horizon_ns);
    let labels: Vec<&str> = report.nodes.iter().map(|n| n.label.as_str()).collect();
    for phase in [
        "pipeline.profile",
        "pipeline.serialise_xml",
        "pipeline.parse_groups",
        "pipeline.sim_setup",
        "pipeline.analyze",
    ] {
        assert!(labels.contains(&phase), "{phase} missing from {labels:?}");
    }
}
