//! The conservative parallel kernel on the paper's TUTMAC case study:
//! the bridged TUTWLAN platform decomposes into the environment LP
//! (user + channel) plus one LP for the bus-attached processors, and
//! the merged log must stay byte-identical to the serial engine.

use tut_profile_suite::faults::{FaultConfig, FaultPlan};
use tut_profile_suite::sim::{SimConfig, Simulation};
use tut_profile_suite::trace::NoopSink;
use tut_profile_suite::tutmac::{self, TutmacConfig};

fn sim(config: &SimConfig) -> Simulation {
    let system = tutmac::build_tutmac_system(&TutmacConfig::default()).expect("tutmac builds");
    Simulation::from_system(&system, config.clone()).expect("sim builds")
}

#[test]
fn tutmac_decomposes_into_environment_and_bus_lps() {
    let config = SimConfig::with_horizon_ns(2_000_000);
    let plan = sim(&config).parallel_plan();
    assert!(
        plan.parallelizable(),
        "the case study should parallelize, got {plan:?}"
    );
    assert_eq!(plan.occupied_lps, 2, "environment LP + bridged-bus LP");
    assert_eq!(
        plan.lookahead_ns, config.env_latency_ns,
        "lookahead is the environment delivery latency"
    );
}

#[test]
fn tutmac_parallel_log_matches_serial() {
    let config = SimConfig::with_horizon_ns(5_000_000);
    let reference = sim(&config).run().expect("serial run");
    for threads in [1, 2, 4] {
        let report = sim(&config).run_parallel(threads).expect("parallel run");
        assert_eq!(
            reference.log.to_text(),
            report.log.to_text(),
            "TUTMAC parallel log diverged at {threads} threads"
        );
        assert_eq!(reference, report);
    }
}

#[test]
fn tutmac_parallel_log_matches_serial_under_faults() {
    let config = SimConfig::with_horizon_ns(5_000_000);
    let fault_config = FaultConfig::with_ber(0xABCD, 1e-4);
    let reference = sim(&config)
        .run_with_faults(&mut FaultPlan::new(fault_config.clone()), &mut NoopSink)
        .expect("serial faulted run");
    assert!(
        reference.faults.injected() > 0,
        "BER 1e-4 should inject something"
    );
    let report = sim(&config)
        .run_parallel_with_faults(2, &FaultPlan::new(fault_config))
        .expect("parallel faulted run");
    assert_eq!(reference.log.to_text(), report.log.to_text());
    assert_eq!(reference, report);
}

/// Coalescing pin for the paper fixture: the adaptive grants must cut
/// the window count at least 5x against the fixed `lookahead_ns` march
/// (a single worker coalesces the whole horizon into one window, so the
/// factor there is the full fixed-step count).
#[test]
fn tutmac_coalescing_cuts_window_count() {
    let config = SimConfig::with_horizon_ns(5_000_000);
    let (_, stats) = sim(&config).run_parallel_stats(1).expect("parallel run");
    assert!(stats.used_parallel, "kernel should run, got {stats:?}");
    assert_eq!(stats.windows, 1, "one worker coalesces to one window");
    assert!(
        stats.windows_fixed_step >= 5 * stats.windows,
        "coalescing below 5x: {stats:?}"
    );
    let (_, stats) = sim(&config).run_parallel_stats(2).expect("parallel run");
    assert!(stats.used_parallel, "kernel should run, got {stats:?}");
    assert!(
        stats.windows < stats.windows_fixed_step,
        "two-worker adaptive windows should still beat the fixed march: {stats:?}"
    );
}

/// Property sweep: the merged log is byte-identical to serial across
/// fault seeds x BER levels x thread counts on the TUTMAC fixture.
#[test]
fn tutmac_parallel_matches_serial_across_seeds_threads_and_faults() {
    let config = SimConfig::with_horizon_ns(2_000_000);
    for seed in [0x1u64, 0xABCD, 0x7071] {
        for ber in [0.0, 1e-4] {
            let fault_config = FaultConfig::with_ber(seed, ber);
            let reference = sim(&config)
                .run_with_faults(&mut FaultPlan::new(fault_config.clone()), &mut NoopSink)
                .expect("serial faulted run");
            for threads in [1, 2, 3] {
                let report = sim(&config)
                    .run_parallel_with_faults(threads, &FaultPlan::new(fault_config.clone()))
                    .expect("parallel faulted run");
                assert_eq!(
                    reference.log.to_text(),
                    report.log.to_text(),
                    "log diverged: seed {seed:#x}, ber {ber}, {threads} threads"
                );
                assert_eq!(reference, report);
            }
        }
    }
}
