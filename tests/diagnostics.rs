//! Golden tests for the diagnostics engine: parser error recovery over a
//! fixture with several distinct syntax errors, and snapshot tests for
//! the text and JSON renderers.

use tut_profile_suite::diag::{
    render_bag_json, render_bag_text, Diagnostic, DiagnosticBag, SourceMap, Span,
};
use tut_profile_suite::uml::textual;

/// A program with three distinct broken statements interleaved with good
/// ones. Recovery must surface every failure and keep every survivor.
const BROKEN_PROGRAM: &str = "\
seq := seq + 1;
count := ;
send radio.Nope(seq);
flag := 1 $;
log \"still alive\";
";

#[test]
fn recovery_surfaces_every_error_with_stable_codes_and_spans() {
    let parsed = textual::parse_program(BROKEN_PROGRAM, None);

    // Three broken statements → three diagnostics; two good ones survive.
    assert_eq!(parsed.diagnostics.len(), 3, "{}", parsed.diagnostics);
    assert_eq!(parsed.statements.len(), 2);

    let source = SourceMap::new("broken.act", BROKEN_PROGRAM);
    let mut seen_lines = Vec::new();
    for d in parsed.diagnostics.iter() {
        assert!(
            d.code == textual::E_SYNTAX
                || d.code == textual::E_UNKNOWN_NAME
                || d.code == textual::E_LITERAL,
            "unexpected code {}",
            d.code
        );
        let span = d.span.expect("every recovery diagnostic is spanned");
        seen_lines.push(source.locate(span.start).line);
    }
    // One failure per broken line, in order.
    assert_eq!(seen_lines, vec![2, 3, 4]);
}

#[test]
fn recovered_diagnostics_render_with_source_excerpts() {
    let parsed = textual::parse_program(BROKEN_PROGRAM, None);
    let source = SourceMap::new("broken.act", BROKEN_PROGRAM);
    let text = render_bag_text(&parsed.diagnostics, Some(&source));

    assert!(text.contains("broken.act:2:"), "{text}");
    assert!(text.contains("count := ;"), "{text}");
    assert!(text.contains("3 errors"), "{text}");
}

fn snapshot_bag() -> (SourceMap, DiagnosticBag) {
    let source_text = "x := 1\nsend reply(y)\n";
    let source = SourceMap::new("model.act", source_text);
    let mut bag = DiagnosticBag::new();
    bag.push(
        Diagnostic::error("E0316", "variable `y` is never assigned")
            .with_span(Span::new(18, 19))
            .with_note("assign it before use")
            .with_help("did you mean `x`?"),
    );
    bag.push(Diagnostic::warning(
        "W0207",
        "process `p` is not in any process group",
    ));
    bag.sort();
    (source, bag)
}

#[test]
fn text_renderer_snapshot() {
    let (source, bag) = snapshot_bag();
    let rendered = render_bag_text(&bag, Some(&source));
    let expected = "\
error[E0316]: variable `y` is never assigned
 --> model.act:2:12
  |
2 | send reply(y)
  |            ^
  = note: assign it before use
  = help: did you mean `x`?

warning[W0207]: process `p` is not in any process group

1 error, 1 warning
";
    assert_eq!(rendered, expected);
}

#[test]
fn json_renderer_snapshot() {
    let (source, bag) = snapshot_bag();
    let rendered = render_bag_json(&bag, Some(&source));
    let expected = concat!(
        "{\"summary\":{\"errors\":1,\"warnings\":1,\"total\":2},\"diagnostics\":[",
        "{\"severity\":\"error\",\"code\":\"E0316\",",
        "\"message\":\"variable `y` is never assigned\",\"element\":null,",
        "\"span\":{\"start\":18,\"end\":19,\"line\":2,\"column\":12},",
        "\"labels\":[],\"notes\":[\"assign it before use\"],",
        "\"help\":\"did you mean `x`?\"},",
        "{\"severity\":\"warning\",\"code\":\"W0207\",",
        "\"message\":\"process `p` is not in any process group\",",
        "\"element\":null,\"span\":null,\"labels\":[],\"notes\":[],\"help\":null}",
        "]}"
    );
    assert_eq!(rendered, expected);
}
