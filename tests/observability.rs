//! Observability integration through the facade crate: attaching a
//! [`Recorder`] must not perturb the simulation (observer effect), and
//! the exporters must emit artefacts the in-tree validators accept for
//! a tiny two-process model.

use tut_profile_suite::profile::application::ProcessType;
use tut_profile_suite::profile::platform::ComponentKind;
use tut_profile_suite::profile::SystemModel;
use tut_profile_suite::profile_core::TagValue;
use tut_profile_suite::sim::{SimConfig, Simulation};
use tut_profile_suite::trace::{chrome, json, prom, vcd, Clock, EventKind, Recorder};
use tut_profile_suite::uml::action::{BinOp, CostClass, Expr, Statement};
use tut_profile_suite::uml::model::ConnectorEnd;
use tut_profile_suite::uml::statemachine::{StateMachine, Trigger};
use tut_profile_suite::uml::value::DataType;

/// A minimal two-process system: `pinger` and `ponger` exchange a
/// counter signal across two CPUs joined by one HIBI segment.
fn tiny_system(rounds: i64) -> SystemModel {
    let mut s = SystemModel::new("Tiny");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();

    let ping_sig = s.model.add_signal("Ping");
    s.model.signal_mut(ping_sig).add_param("n", DataType::Int);
    let pong_sig = s.model.add_signal("Pong");
    s.model.signal_mut(pong_sig).add_param("n", DataType::Int);

    let pinger = s.model.add_class("Pinger");
    s.apply(pinger, |t| t.application_component).unwrap();
    let p_out = s.model.add_port(pinger, "out");
    let p_in = s.model.add_port(pinger, "in");
    s.model.port_mut(p_out).add_required(ping_sig);
    s.model.port_mut(p_in).add_provided(pong_sig);
    let mut sm = StateMachine::new("PingerB");
    let idle = sm.add_state_with_entry(
        "Idle",
        vec![Statement::Send {
            port: "out".into(),
            signal: ping_sig,
            args: vec![Expr::int(rounds)],
        }],
    );
    let wait = sm.add_state("Wait");
    sm.set_initial(idle);
    sm.add_transition(idle, wait, Trigger::Completion, None, vec![]);
    sm.add_transition(
        wait,
        wait,
        Trigger::Signal(pong_sig),
        Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
        vec![
            Statement::Compute {
                class: CostClass::Control,
                amount: Expr::int(10),
            },
            Statement::Send {
                port: "out".into(),
                signal: ping_sig,
                args: vec![Expr::param("n")],
            },
        ],
    );
    s.model.add_state_machine(pinger, sm);

    let ponger = s.model.add_class("Ponger");
    s.apply(ponger, |t| t.application_component).unwrap();
    let q_in = s.model.add_port(ponger, "in");
    let q_out = s.model.add_port(ponger, "out");
    s.model.port_mut(q_in).add_provided(ping_sig);
    s.model.port_mut(q_out).add_required(pong_sig);
    let mut sm = StateMachine::new("PongerB");
    let st = sm.add_state("S");
    sm.set_initial(st);
    sm.add_transition(
        st,
        st,
        Trigger::Signal(ping_sig),
        None,
        vec![
            Statement::Compute {
                class: CostClass::Control,
                amount: Expr::int(50),
            },
            Statement::Send {
                port: "out".into(),
                signal: pong_sig,
                args: vec![Expr::param("n").bin(BinOp::Sub, Expr::int(1))],
            },
        ],
    );
    s.model.add_state_machine(ponger, sm);

    let ping_part = s.model.add_part(top, "pinger", pinger);
    let pong_part = s.model.add_part(top, "ponger", ponger);
    for part in [ping_part, pong_part] {
        s.apply(part, |t| t.application_process).unwrap();
    }
    s.model.add_connector(
        top,
        "ping_wire",
        ConnectorEnd {
            part: Some(ping_part),
            port: p_out,
        },
        ConnectorEnd {
            part: Some(pong_part),
            port: q_in,
        },
    );
    s.model.add_connector(
        top,
        "pong_wire",
        ConnectorEnd {
            part: Some(pong_part),
            port: q_out,
        },
        ConnectorEnd {
            part: Some(ping_part),
            port: p_in,
        },
    );

    let g1 = s.add_process_group("group1", false, ProcessType::General);
    let g2 = s.add_process_group("group2", false, ProcessType::General);
    s.assign_to_group(ping_part, g1);
    s.assign_to_group(pong_part, g2);

    let platform = s.model.add_class("Platform");
    s.apply(platform, |t| t.platform).unwrap();
    let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
    let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
    let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);

    let seg_class = s.model.add_class("Seg");
    s.apply(seg_class, |t| t.hibi_segment).unwrap();
    let wrap1 = s.model.add_class("Wrap1");
    s.apply_with(wrap1, |t| t.hibi_wrapper, [("Address", TagValue::Int(16))])
        .unwrap();
    let wrap2 = s.model.add_class("Wrap2");
    s.apply_with(wrap2, |t| t.hibi_wrapper, [("Address", TagValue::Int(32))])
        .unwrap();
    let seg = s.model.add_part(platform, "seg", seg_class);
    let seg_port = s.model.add_port(seg_class, "agents");
    let nios_port = s.model.add_port(nios, "hibi");
    for (cpu, wrap_class, name) in [(cpu1, wrap1, "w1"), (cpu2, wrap2, "w2")] {
        let wp = s.model.add_port(wrap_class, "pe");
        let wb = s.model.add_port(wrap_class, "bus");
        let w = s.model.add_part(platform, name, wrap_class);
        s.model.add_connector(
            platform,
            format!("{name}_pe"),
            ConnectorEnd {
                part: Some(w),
                port: wp,
            },
            ConnectorEnd {
                part: Some(cpu),
                port: nios_port,
            },
        );
        s.model.add_connector(
            platform,
            format!("{name}_bus"),
            ConnectorEnd {
                part: Some(w),
                port: wb,
            },
            ConnectorEnd {
                part: Some(seg),
                port: seg_port,
            },
        );
    }

    s.map_group(g1, cpu1, false);
    s.map_group(g2, cpu2, false);
    s
}

fn traced_run(rounds: i64) -> (tut_profile_suite::sim::SimReport, Recorder) {
    let mut recorder = Recorder::new();
    let report = Simulation::from_system(&tiny_system(rounds), SimConfig::default())
        .expect("sim builds")
        .run_with(&mut recorder)
        .expect("sim runs");
    (report, recorder)
}

/// Observer effect: a traced run must produce a byte-identical report
/// and log — trace data lives only in the external sink.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let untraced = Simulation::from_system(&tiny_system(8), SimConfig::default())
        .expect("sim builds")
        .run()
        .expect("sim runs");
    let (traced, recorder) = traced_run(8);

    assert_eq!(untraced, traced, "SimReport must not depend on tracing");
    assert_eq!(
        untraced.log.to_text(),
        traced.log.to_text(),
        "log text must be byte-identical"
    );
    assert!(!recorder.is_empty(), "the traced run did record events");
}

/// Simulated-clock trace content is deterministic across runs (host
/// clock spans vary; the engine emits none here).
#[test]
fn traced_runs_are_deterministic() {
    let (_, a) = traced_run(6);
    let (_, b) = traced_run(6);
    assert_eq!(a.tracks(), b.tracks());
    assert_eq!(a.events(), b.events());
}

/// Golden structure test: the tiny model's Chrome trace parses with the
/// in-tree JSON parser and carries the expected tracks and event kinds.
#[test]
fn tiny_model_emits_valid_chrome_trace() {
    let (report, recorder) = traced_run(5);

    // One simulated-clock track per processing element and segment,
    // plus the event-queue track.
    for name in ["pe/cpu1", "pe/cpu2", "hibi/seg", "sim/events"] {
        let id = recorder
            .find_track(name)
            .unwrap_or_else(|| panic!("track `{name}` missing"));
        assert_eq!(recorder.tracks()[id.index()].clock, Clock::Sim);
    }

    let text = chrome::to_chrome_json(&recorder);
    let doc = json::parse(&text).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Thread-name metadata announces every track to the viewer.
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("M"))
        .filter(|e| e.get("name").and_then(json::Json::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for name in ["pe/cpu1", "pe/cpu2", "hibi/seg"] {
        assert!(thread_names.contains(&name), "no thread_name for {name}");
    }

    // Spans and counters both survive the round trip, and every
    // non-metadata event carries a numeric timestamp.
    let mut spans = 0usize;
    let mut counters = 0usize;
    for event in events {
        match event.get("ph").and_then(json::Json::as_str) {
            Some("X") => {
                spans += 1;
                assert!(event.get("ts").and_then(json::Json::as_f64).is_some());
                assert!(event.get("dur").and_then(json::Json::as_f64).is_some());
            }
            Some("C") => {
                counters += 1;
                assert!(event.get("args").and_then(|a| a.get("value")).is_some());
            }
            _ => {}
        }
    }
    assert!(spans > 0, "no span events exported");
    assert!(counters > 0, "no counter events exported");

    // The recorder saw every delivered signal and executed step.
    let signals = report
        .log
        .iter()
        .filter(|r| matches!(r, tut_profile_suite::sim::RecordRef::Sig { .. }))
        .count() as u64;
    assert_eq!(
        recorder.metrics.counter("sim.signals_delivered"),
        Some(signals)
    );
    assert_eq!(
        recorder
            .metrics
            .histogram("sim.signal_latency_ns")
            .map(|h| h.count()),
        Some(signals)
    );
    let pe_spans = recorder
        .events()
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::Span { .. })
                && recorder.tracks()[e.track.index()].name.starts_with("pe/")
        })
        .count();
    assert!(pe_spans > 0, "processing-element spans missing");
}

/// The VCD exporter produces a waveform the in-tree validator accepts,
/// with one busy wire for the HIBI segment.
#[test]
fn vcd_export_validates_and_covers_the_bus() {
    let (_, recorder) = traced_run(5);
    let text = vcd::to_vcd(&recorder, "hibi/");
    vcd::validate_vcd(&text).expect("VCD validates");
    assert!(text.contains("$var"), "wire declarations missing");
    assert!(text.contains("hibi_seg"), "segment wire missing:\n{text}");
}

/// The Prometheus exposition lists the core engine and bus metrics.
#[test]
fn prometheus_export_lists_the_core_metrics() {
    let (_, recorder) = traced_run(5);
    let text = prom::to_prometheus(&recorder.metrics);
    for metric in [
        "sim_steps",
        "sim_signals_delivered",
        "sim_step_duration_ns",
        "sim_signal_latency_ns",
        "pe_cpu1_busy_ns",
        "hibi_seg_busy_ns",
    ] {
        assert!(text.contains(metric), "`{metric}` missing from:\n{text}");
    }
}
