//! Cross-crate integration: the complete paper pipeline through the
//! facade crate — model, validation, XML, code generation, simulation,
//! profiling — with end-to-end functional checks on the protocol itself.

use tut_profile_suite::codegen;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::{RecordRef, SimConfig, Simulation};
use tut_profile_suite::tutmac::{build_tutmac_system, TutmacConfig};

#[test]
fn the_protocol_delivers_data_end_to_end() {
    let system = build_tutmac_system(&TutmacConfig::default()).expect("build");
    let report = Simulation::from_system(&system, SimConfig::with_horizon_ns(20_000_000))
        .expect("sim builds")
        .run()
        .expect("sim runs");

    // The user sent MSDUs and got deliveries back (receive path works:
    // channel -> rca -> crc -> defrag -> msduDel -> user).
    let user = report.process("user").expect("user stats");
    assert!(user.signals_sent > 0, "user generated traffic");
    assert!(user.signals_received > 0, "user received deliveries");

    // CRC errors were detected: the channel corrupts every 5th remote
    // frame, and the crc process logs the discard.
    let crc_errors = report
        .log
        .iter()
        .filter(|r| matches!(r, RecordRef::User { message, .. } if message.contains("crc error")))
        .count();
    assert!(crc_errors > 0, "corrupted frames must be caught");

    // ARQ retransmissions happened: the channel loses every 8th frame and
    // rca must retry (visible as repeated AirFrame sends, i.e. more
    // AirFrames than acks + beacon count).
    let air_frames = report
        .log
        .iter()
        .filter(|r| matches!(r, RecordRef::Sig { signal, .. } if *signal == "AirFrame"))
        .count();
    let acks = report
        .log
        .iter()
        .filter(|r| matches!(r, RecordRef::Sig { signal, .. } if *signal == "Ack"))
        .count();
    assert!(
        air_frames > acks,
        "losses force retransmissions: {air_frames} vs {acks}"
    );
}

#[test]
fn validation_passes_and_xml_round_trips() {
    let system = build_tutmac_system(&TutmacConfig::default()).expect("build");
    assert!(system.validate_errors().is_empty());
    let xml = system.to_xml();
    let parsed = tut_profile_suite::profile::SystemModel::from_xml(&xml).expect("parse");
    assert_eq!(parsed.model, system.model);
    assert_eq!(parsed.apps, system.apps);
}

#[test]
fn generated_c_covers_every_functional_component() {
    let system = build_tutmac_system(&TutmacConfig::default()).expect("build");
    let files = codegen::generate_project(&system).expect("codegen");
    let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
    for module in [
        "management.c",
        "radiomanagement.c",
        "radiochannelaccess.c",
        "msdureception.c",
        "msdudelivery.c",
        "fragmentation.c",
        "defragmentation.c",
        "crcprocessing.c",
        "userenvironment.c",
        "radiochannel.c",
        "main.c",
        "tut_rt.h",
        "Makefile",
    ] {
        assert!(names.contains(&module), "missing {module}; have {names:?}");
    }
    // The wiring in main.c reflects the composite structure.
    let main_c = &files.iter().find(|f| f.name == "main.c").unwrap().contents;
    assert!(main_c.contains("tut_rt_wire(\"ui.msduRec\", \"pDp\", \"Msdu\", \"dp.frag\");"));
    assert!(main_c.contains("tut_rt_wire(\"dp.crc\", \"pOut\", \"TxFrame\", \"rca\");"));
}

#[test]
fn profiling_via_xml_and_log_text_matches_in_memory_path() {
    let system = build_tutmac_system(&TutmacConfig::light_load()).expect("build");
    let config = SimConfig::with_horizon_ns(8_000_000);

    // Full pipeline (analyses the in-memory log).
    let report_pipeline = profiling::profile_system(&system, config.clone()).expect("pipeline");

    // Explicit paths: in-memory analysis and the rendered log-file text.
    let groups = profiling::groups::gather_groups(&system).expect("groups");
    let sim_report = Simulation::from_system(&system, config)
        .expect("sim")
        .run()
        .expect("run");
    let report_mem = profiling::analyze::analyze_log(&groups, &sim_report.log);
    let report_text =
        profiling::analyze::analyze(&groups, &sim_report.log.to_text()).expect("text path");

    assert_eq!(report_text, report_mem, "text boundary must be lossless");
    assert_eq!(report_pipeline, report_mem, "pipeline matches both paths");
}

#[test]
fn light_load_keeps_the_backlog_empty() {
    let system = build_tutmac_system(&TutmacConfig::light_load()).expect("build");
    let report = Simulation::from_system(&system, SimConfig::with_horizon_ns(20_000_000))
        .expect("sim")
        .run()
        .expect("run");
    // Under light load every fragment completes: PduDone count equals
    // TxPdu count (no fragments stuck in flight at the 20 ms cut is
    // allowed a tolerance of one in-flight fragment).
    let count = |name: &str| {
        report
            .log
            .iter()
            .filter(|r| matches!(r, RecordRef::Sig { signal, .. } if *signal == name))
            .count() as i64
    };
    let tx = count("TxPdu");
    let done = count("PduDone");
    assert!(tx > 0);
    assert!(
        (tx - done).abs() <= 1,
        "light load should drain: {tx} TxPdu vs {done} PduDone"
    );
}
