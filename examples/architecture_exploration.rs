//! Architecture exploration on the TUTMAC case study: measure the
//! communication graph, search for a better grouping and mapping, apply
//! them, and re-simulate to quantify the improvement — the §4.4 loop
//! ("the process groups and mapping are modified to improve performance")
//! run by a tool instead of a designer.
//!
//! ```sh
//! cargo run --example architecture_exploration
//! ```

use tut_profile_suite::explore;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::SimConfig;
use tut_profile_suite::tutmac::{self, TutmacConfig};

fn bottleneck_ns(system: &tut_profile_suite::profile::SystemModel) -> u64 {
    let report = tut_profile_suite::sim::Simulation::from_system(
        system,
        SimConfig::with_horizon_ns(10_000_000),
    )
    .expect("simulation builds")
    .run()
    .expect("simulation runs");
    report
        .pes
        .iter()
        .filter(|(_, s)| !s.is_env)
        .map(|(_, s)| s.busy_ns)
        .max()
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, handles) = tutmac::model::build_with_handles(&TutmacConfig::default())?;

    // Profile the paper's configuration.
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(20_000_000))?;
    println!("paper grouping/mapping:");
    println!(
        "  inter-group signals: {}",
        report.signal_matrix.inter_group()
    );
    println!(
        "  bottleneck busy    : {} ns / 10 ms",
        bottleneck_ns(&system)
    );

    // Grouping analysis: does the partitioner agree with Figure 6?
    let graph = explore::CommGraph::from_report(&report);
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let solution = explore::partition(
        &graph,
        &explore::GroupingOptions {
            groups: 5,
            balance_weight: 0.0,
            pinned,
            ..Default::default()
        },
    );
    println!("\ngrouping exploration:");
    println!("  optimiser cut weight: {}", solution.cut_weight);
    for (node, &group) in graph.nodes().iter().zip(&solution.assignment) {
        println!("    {node:<14} -> part {group}");
    }

    // Mapping exploration: exhaustive search over 4 groups x 4 elements.
    let (problem, groups, instances) =
        explore::mapping::problem_from_system(&system, &report).map_err(std::io::Error::other)?;
    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator present");
    let mapping = explore::optimise_mapping(
        &problem,
        &explore::MappingOptions {
            pinned: vec![(3, acc_index)],
            ..Default::default()
        },
    );
    println!("\nmapping exploration (cost {:.1}):", mapping.cost);
    for (g, &pe) in mapping.assignment.iter().enumerate() {
        println!(
            "  {} -> {}",
            problem.group_names[g],
            system.model.property(instances[pe]).name()
        );
    }

    // Apply and re-simulate, against a naive all-on-one baseline.
    let mut improved = system.clone();
    let changed =
        explore::apply::apply_mapping(&mut improved, &groups, &instances, &mapping.assignment);
    let mut all_on_one = system.clone();
    explore::apply::apply_mapping(&mut all_on_one, &groups, &instances, &[0, 0, 0, 0]);

    println!("\napplied: {changed} mapping(s) changed");
    println!("bottleneck busy time over 10 ms of traffic (lower is better):");
    println!("  all-on-processor1 : {:>9} ns", bottleneck_ns(&all_on_one));
    println!("  paper (figure 8)  : {:>9} ns", bottleneck_ns(&system));
    println!("  explore-optimised : {:>9} ns", bottleneck_ns(&improved));
    println!(
        "\nnote: the optimiser reproduces the *structure* of the paper's mapping\n\
         (group1+group3 share a processor, group2 has its own, group4 stays on\n\
         the accelerator) — the processors themselves are interchangeable."
    );
    Ok(())
}
