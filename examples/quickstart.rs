//! Quickstart: model a two-process system with TUT-Profile, validate it,
//! map it onto a one-processor platform, simulate, and print the
//! profiling report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tut_profile_suite::profile::application::ProcessType;
use tut_profile_suite::profile::platform::ComponentKind;
use tut_profile_suite::profile::SystemModel;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::SimConfig;
use tut_profile_suite::uml::action::{BinOp, CostClass, Expr, Statement};
use tut_profile_suite::uml::model::ConnectorEnd;
use tut_profile_suite::uml::statemachine::{StateMachine, Trigger};
use tut_profile_suite::uml::value::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. The application: a producer and a consumer -----------------
    let mut system = SystemModel::new("Quickstart");
    let top = system.model.add_class("App");
    system.apply(top, |t| t.application)?;

    let item = system.model.add_signal("Item");
    system.model.signal_mut(item).add_param("n", DataType::Int);

    // Producer: sends an Item every 100 µs.
    let producer = system.model.add_class("Producer");
    system.apply(producer, |t| t.application_component)?;
    let p_out = system.model.add_port(producer, "out");
    system.model.port_mut(p_out).add_required(item);
    let mut sm = StateMachine::new("ProducerB");
    sm.add_variable("n", DataType::Int, 0i64.into());
    let run = sm.add_state_with_entry(
        "Run",
        vec![Statement::SetTimer {
            name: "tick".into(),
            duration: Expr::int(100_000),
        }],
    );
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("tick".into()),
        None,
        vec![
            Statement::Assign {
                var: "n".into(),
                expr: Expr::var("n").bin(BinOp::Add, Expr::int(1)),
            },
            Statement::Send {
                port: "out".into(),
                signal: item,
                args: vec![Expr::var("n")],
            },
            Statement::SetTimer {
                name: "tick".into(),
                duration: Expr::int(100_000),
            },
        ],
    );
    system.model.add_state_machine(producer, sm);

    // Consumer: 500 units of control work per item.
    let consumer = system.model.add_class("Consumer");
    system.apply(consumer, |t| t.application_component)?;
    let c_in = system.model.add_port(consumer, "in");
    system.model.port_mut(c_in).add_provided(item);
    let mut sm = StateMachine::new("ConsumerB");
    let run = sm.add_state("Run");
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Signal(item),
        None,
        vec![Statement::Compute {
            class: CostClass::Control,
            amount: Expr::int(500),
        }],
    );
    system.model.add_state_machine(consumer, sm);

    // Composite structure: two «ApplicationProcess» parts, one connector.
    let producer_part = system.model.add_part(top, "producer", producer);
    let consumer_part = system.model.add_part(top, "consumer", consumer);
    system.apply(producer_part, |t| t.application_process)?;
    system.apply(consumer_part, |t| t.application_process)?;
    system.model.add_connector(
        top,
        "pipe",
        ConnectorEnd {
            part: Some(producer_part),
            port: p_out,
        },
        ConnectorEnd {
            part: Some(consumer_part),
            port: c_in,
        },
    );

    // ---- 2. Grouping + platform + mapping -------------------------------
    let group = system.add_process_group("workers", false, ProcessType::General);
    system.assign_to_group(producer_part, group);
    system.assign_to_group(consumer_part, group);

    let platform = system.model.add_class("Board");
    system.apply(platform, |t| t.platform)?;
    let cpu_class = system.add_platform_component("Cpu", ComponentKind::General, 50, 1.0, 0.2);
    let cpu = system.add_platform_instance(platform, "cpu0", cpu_class, 1, 0);
    system.map_group(group, cpu, false);

    // ---- 3. Validate ------------------------------------------------------
    let findings = system.validate();
    println!("validation findings: {}", findings.len());
    for finding in &findings {
        println!("  {finding}");
    }
    assert!(system.validate_errors().is_empty(), "model must be clean");

    // ---- 4. Simulate and profile -------------------------------------------
    let report = profiling::profile_system(&system, SimConfig::with_horizon_ns(10_000_000))?;
    println!();
    println!("{}", profiling::render_table4(&report));
    println!(
        "consumer processed {} items in 10 ms of simulated time",
        report
            .signal_matrix
            .between("workers", "workers")
            .unwrap_or(0)
    );
    Ok(())
}
