//! Model interchange: serialise the TUTMAC system (model + profile
//! application) to XML, parse it back, and prove the round trip is exact —
//! the tool boundary the paper's profiling scripts rely on.
//!
//! ```sh
//! cargo run --example xmi_roundtrip [output.xml]
//! ```

use tut_profile_suite::profile::SystemModel;
use tut_profile_suite::tutmac::{build_tutmac_system, TutmacConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = build_tutmac_system(&TutmacConfig::default())?;
    let xml = system.to_xml();
    println!(
        "serialised `{}`: {} bytes of XML, {} model elements",
        system.model.name(),
        xml.len(),
        system.model.element_count()
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &xml)?;
        println!("wrote {path}");
    }

    let parsed = SystemModel::from_xml(&xml)?;
    assert_eq!(parsed.model, system.model, "model round trip must be exact");
    assert_eq!(
        parsed.apps, system.apps,
        "profile application round trip must be exact"
    );
    println!("round trip: exact (model and stereotype applications identical)");

    // A taste of the content: the first few lines.
    for line in xml.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
