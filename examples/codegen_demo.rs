//! Generates the C project for the TUTMAC model into a directory (default
//! `target/tutmac_c`), ready for `make` — the Figure 2 "Code generation"
//! and "Compilation and linking" stages.
//!
//! ```sh
//! cargo run --example codegen_demo [output-dir]
//! ```

use tut_profile_suite::codegen;
use tut_profile_suite::tutmac::{build_tutmac_system, TutmacConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tutmac_c".to_owned());
    let system = build_tutmac_system(&TutmacConfig::default())?;
    let files = codegen::generate_project(&system)?;

    std::fs::create_dir_all(&out_dir)?;
    let mut total_lines = 0;
    for file in &files {
        let path = std::path::Path::new(&out_dir).join(&file.name);
        std::fs::write(&path, &file.contents)?;
        let lines = file.contents.lines().count();
        total_lines += lines;
        println!("wrote {:>28}  ({lines} lines)", path.display());
    }
    println!("\n{} files, {total_lines} lines of C", files.len());
    println!("build it with: make -C {out_dir}");
    println!("running the binary prints the simulation log-file to stdout.");
    Ok(())
}
