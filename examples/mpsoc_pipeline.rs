//! A second case study, anticipating the paper's future work: "the
//! profile will also be evaluated for multiprocessor System-on-Chip
//! co-design environment" (§5). A four-stage video-style DSP pipeline
//! (capture → preprocess → encode → packetize) on a heterogeneous MPSoC
//! (one general CPU, two DSP cores) — with all behaviours written in the
//! **textual action notation** instead of AST constructors.
//!
//! ```sh
//! cargo run --example mpsoc_pipeline
//! ```

use tut_profile_suite::profile::application::ProcessType;
use tut_profile_suite::profile::platform::ComponentKind;
use tut_profile_suite::profile::SystemModel;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::SimConfig;
use tut_profile_suite::uml::model::ConnectorEnd;
use tut_profile_suite::uml::statemachine::{StateMachine, Trigger};
use tut_profile_suite::uml::textual::parse_statements;
use tut_profile_suite::uml::value::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = SystemModel::new("MpsocPipeline");
    let top = s.model.add_class("Pipeline");
    s.apply(top, |t| t.application)?;

    let frame = s.model.add_signal("Frame");
    s.model.signal_mut(frame).add_param("data", DataType::Bytes);
    let packet = s.model.add_signal("Packet");
    s.model
        .signal_mut(packet)
        .add_param("data", DataType::Bytes);

    // ---- Stage builder: behaviour written in the textual notation ------
    let stage = |s: &mut SystemModel,
                 name: &str,
                 on_frame: &str,
                 entry: &str|
     -> Result<_, Box<dyn std::error::Error>> {
        let class = s.model.add_class(name);
        s.apply(class, |t| t.application_component)?;
        let pin = s.model.add_port(class, "in");
        let pout = s.model.add_port(class, "out");
        s.model.port_mut(pin).add_provided(frame);
        s.model.port_mut(pout).add_required(frame);
        s.model.port_mut(pout).add_required(packet);
        let mut sm = StateMachine::new(format!("{name}B"));
        let run = sm.add_state_with_entry("Run", parse_statements(entry, &s.model)?);
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Signal(frame),
            None,
            parse_statements(on_frame, &s.model)?,
        );
        if !entry.is_empty() {
            // Timer-driven stages also need their tick transition; the
            // capture stage is handled below.
        }
        s.model.add_state_machine(class, sm);
        Ok((class, pin, pout))
    };

    // Capture: environment-fed timer source producing 4 kB frames.
    let capture = s.model.add_class("Capture");
    s.apply(capture, |t| t.application_component)?;
    let cap_out = s.model.add_port(capture, "out");
    s.model.port_mut(cap_out).add_required(frame);
    let mut sm = StateMachine::new("CaptureB");
    let run = sm.add_state_with_entry(
        "Run",
        parse_statements("set_timer shutter, 200000;", &s.model)?,
    );
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("shutter".into()),
        None,
        parse_statements(
            r#"
            n := n + 1;
            send out.Frame(fill(n % 256, 16384));
            set_timer shutter, 200000;
            "#,
            &s.model,
        )?,
    );
    sm.add_variable("n", DataType::Int, 0i64.into());
    s.model.add_state_machine(capture, sm);

    // Preprocess: DSP filtering, halves the data.
    let (preprocess, pre_in, pre_out) = stage(
        &mut s,
        "Preprocess",
        r#"
        compute dsp len($data) / 2;
        send out.Frame(slice($data, 0, len($data) / 2));
        "#,
        "",
    )?;
    // Encode: heavy DSP work, quarters the data.
    let (encode, enc_in, enc_out) = stage(
        &mut s,
        "Encode",
        r#"
        compute dsp len($data) * 4;
        compute mem len($data) / 16;
        send out.Frame(slice($data, 0, len($data) / 4));
        "#,
        "",
    )?;
    // Packetize: general-purpose framing with CRC.
    let (packetize, pack_in, pack_out) = stage(
        &mut s,
        "Packetize",
        r#"
        compute control 300;
        send out.Packet(concat($data, pack_int(crc32($data), 4)));
        "#,
        "",
    )?;

    // Sink: environment, counts packets.
    let sink = s.model.add_class("Sink");
    s.apply(sink, |t| t.application_component)?;
    let sink_in = s.model.add_port(sink, "in");
    s.model.port_mut(sink_in).add_provided(packet);
    let mut sm = StateMachine::new("SinkB");
    let run = sm.add_state("Run");
    sm.set_initial(run);
    sm.add_variable("packets", DataType::Int, 0i64.into());
    sm.add_transition(
        run,
        run,
        Trigger::Signal(packet),
        None,
        parse_statements("packets := packets + 1;", &s.model)?,
    );
    s.model.add_state_machine(sink, sm);

    // ---- Composite structure --------------------------------------------
    let cap = s.model.add_part(top, "capture", capture);
    let pre = s.model.add_part(top, "preprocess", preprocess);
    let enc = s.model.add_part(top, "encode", encode);
    let pack = s.model.add_part(top, "packetize", packetize);
    let snk = s.model.add_part(top, "sink", sink);
    for (part, kind, priority) in [(pre, "dsp", 2i64), (enc, "dsp", 3), (pack, "general", 1)] {
        s.apply_with(
            part,
            |t| t.application_process,
            [
                ("ProcessType", tut_profile_core::TagValue::Enum(kind.into())),
                ("Priority", tut_profile_core::TagValue::Int(priority)),
            ],
        )?;
    }
    s.apply(cap, |t| t.application_process)?;
    s.apply(snk, |t| t.application_process)?;
    let wire = |s: &mut SystemModel, name: &str, a, ap, b, bp| {
        s.model.add_connector(
            top,
            name,
            ConnectorEnd {
                part: Some(a),
                port: ap,
            },
            ConnectorEnd {
                part: Some(b),
                port: bp,
            },
        );
    };
    wire(&mut s, "c1", cap, cap_out, pre, pre_in);
    wire(&mut s, "c2", pre, pre_out, enc, enc_in);
    wire(&mut s, "c3", enc, enc_out, pack, pack_in);
    wire(&mut s, "c4", pack, pack_out, snk, sink_in);

    // ---- Groups, MPSoC platform, mapping ---------------------------------
    let g_pre = s.add_process_group("gPre", false, ProcessType::Dsp);
    let g_enc = s.add_process_group("gEnc", false, ProcessType::Dsp);
    let g_ctrl = s.add_process_group("gCtrl", false, ProcessType::General);
    s.assign_to_group(pre, g_pre);
    s.assign_to_group(enc, g_enc);
    s.assign_to_group(pack, g_ctrl);
    // capture & sink stay in the environment.

    let platform = s.model.add_class("MpsocPlatform");
    s.apply(platform, |t| t.platform)?;
    let arm = s.add_platform_component("RiscCpu", ComponentKind::General, 100, 3.0, 1.0);
    let dsp = s.add_platform_component("VliwDsp", ComponentKind::Dsp, 200, 4.0, 1.4);
    let cpu0 = s.add_platform_instance(platform, "cpu0", arm, 1, 1);
    let dsp0 = s.add_platform_instance(platform, "dsp0", dsp, 2, 2);
    let dsp1 = s.add_platform_instance(platform, "dsp1", dsp, 3, 2);
    s.map_group(g_ctrl, cpu0, false);
    s.map_group(g_pre, dsp0, false);
    s.map_group(g_enc, dsp1, false);

    // ---- Validate, simulate, profile ---------------------------------------
    assert!(s.validate_errors().is_empty(), "{:#?}", s.validate_errors());
    let report = profiling::profile_system(&s, SimConfig::with_horizon_ns(50_000_000))?;
    println!("{}", profiling::render_table4(&report));

    // Compare against a single-CPU mapping: the MPSoC should pipeline.
    let mut single = s.clone();
    for mapping in single.mapping().mappings() {
        single.unmap(mapping.dependency);
    }
    single.map_group(g_pre, cpu0, false);
    single.map_group(g_enc, cpu0, false);
    single.map_group(g_ctrl, cpu0, false);
    let single_report = profiling::profile_system(&single, SimConfig::with_horizon_ns(50_000_000))?;

    let delivered = |r: &profiling::ProfilingReport| {
        r.signal_matrix.between("gCtrl", "Environment").unwrap_or(0)
    };
    println!(
        "packets delivered in 50 ms: MPSoC (1 CPU + 2 DSP) = {}, single CPU = {}",
        delivered(&report),
        delivered(&single_report)
    );
    println!(
        "mean frame latency: MPSoC {:.0} ns vs single CPU {:.0} ns",
        report.mean_signal_latency_ns, single_report.mean_signal_latency_ns
    );
    Ok(())
}
