//! The complete Figure 2 design-and-profiling flow on the paper's TUTMAC
//! case study: model → validate → generate C → simulate → profile →
//! improvement suggestions.
//!
//! ```sh
//! cargo run --example tutmac_flow
//! ```

use tut_profile_suite::codegen;
use tut_profile_suite::profiling;
use tut_profile_suite::sim::{SimConfig, Simulation};
use tut_profile_suite::tutmac::{build_tutmac_system, TutmacConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: modelling (Figures 4-8 are all inside this call).
    let system = build_tutmac_system(&TutmacConfig::default())?;
    println!("model: {}", system.model);

    // Stage 2: design-rule validation.
    let findings = system.validate();
    println!("\nvalidation: {} findings", findings.len());
    for finding in &findings {
        println!("  {finding}");
    }

    // Stage 3: model parsing over the honest XML boundary.
    let xml = system.to_xml();
    let groups = profiling::groups::parse_model_xml(&xml)?;
    println!(
        "\nmodel parsing: {} bytes of XML -> groups {:?}",
        xml.len(),
        groups.labels()
    );

    // Stage 4: code generation (the C the paper compiles for the FPGA).
    let files = codegen::generate_project(&system)?;
    println!("\ncode generation:");
    for file in &files {
        println!(
            "  {:>24}  {:>6} lines",
            file.name,
            file.contents.lines().count()
        );
    }

    // Stage 5+6: simulation producing the log-file.
    let report = Simulation::from_system(&system, SimConfig::with_horizon_ns(20_000_000))?.run()?;
    println!("\nsimulation: {}", report.summary());
    let log_text = report.log.to_text();

    // Stage 7: profiling (Table 4).
    let profile = profiling::analyze(&groups, &log_text)?;
    println!("\n{}", profiling::render_table4(&profile));
    println!("{}", profiling::report::render_transfers(&profile));

    // The designer feedback loop (§4.4).
    println!("suggestions:");
    for suggestion in profiling::suggest::suggest(&profile, 0.85) {
        println!("  - {suggestion}");
    }
    Ok(())
}
