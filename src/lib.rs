//! Facade crate for the TUT-Profile suite: re-exports every workspace crate
//! under one roof so examples and integration tests can depend on a single
//! package.
//!
//! This workspace reproduces Kukkala et al., *UML 2.0 Profile for Embedded
//! System Design* (DATE 2005). See the repository `README.md`, `DESIGN.md`,
//! and `EXPERIMENTS.md` for the full map.

#![forbid(unsafe_code)]

pub use tut_codegen as codegen;
pub use tut_diag as diag;
pub use tut_explore as explore;
pub use tut_faults as faults;
pub use tut_hibi as hibi;
pub use tut_platform as platform;
pub use tut_profile as profile;
pub use tut_profile_core as profile_core;
pub use tut_profiling as profiling;
pub use tut_sim as sim;
pub use tut_store as store;
pub use tut_trace as trace;
pub use tut_uml as uml;
pub use tutmac;
