//! Error type for the profiling tool.

use std::fmt;

/// Errors produced by the profiling tool's stages.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ProfilingError {
    /// The model XML failed to parse or decode.
    Model(String),
    /// The log-file text failed to parse.
    Log(String),
    /// The simulation stage failed (pipeline convenience path).
    Simulation(String),
}

impl fmt::Display for ProfilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilingError::Model(msg) => write!(f, "model parsing failed: {msg}"),
            ProfilingError::Log(msg) => write!(f, "log parsing failed: {msg}"),
            ProfilingError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
        }
    }
}

impl std::error::Error for ProfilingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(ProfilingError::Model("x".into())
            .to_string()
            .contains("model"));
        assert!(ProfilingError::Log("y".into()).to_string().contains("log"));
    }
}
