//! Improvement suggestions derived from a profiling report.
//!
//! "The report is used for improving the application. The process groups
//! and mapping are modified to improve performance including amount of
//! communication and the division of workload between application
//! processes." (§4.4). This module turns a [`ProfilingReport`] into the
//! concrete observations a designer (or the exploration tools in
//! `tut-explore`) acts on.

use crate::report::ProfilingReport;

/// One machine-readable improvement suggestion.
#[derive(Clone, PartialEq, Debug)]
pub enum Suggestion {
    /// Two groups exchange many signals; co-mapping them to one
    /// processing element removes that bus traffic.
    CoMapGroups {
        /// First group.
        a: String,
        /// Second group.
        b: String,
        /// Signals exchanged (both directions).
        signals: u64,
    },
    /// One group dominates execution; consider splitting it or moving it
    /// to a faster element.
    RebalanceGroup {
        /// The dominating group.
        group: String,
        /// Its share of total cycles, in `[0, 1]`.
        proportion: f64,
    },
    /// Dropped signals point at missing transitions or mis-wired ports.
    InvestigateDrops {
        /// Total dropped signals.
        drops: u64,
    },
    /// Lost signals point at unconnected ports.
    InvestigateLosses {
        /// Total lost signals.
        losses: u64,
    },
}

impl std::fmt::Display for Suggestion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suggestion::CoMapGroups { a, b, signals } => write!(
                f,
                "groups `{a}` and `{b}` exchange {signals} signals; map them to the same processing element"
            ),
            Suggestion::RebalanceGroup { group, proportion } => write!(
                f,
                "group `{group}` uses {:.1}% of all cycles; consider splitting it or a faster element",
                proportion * 100.0
            ),
            Suggestion::InvestigateDrops { drops } => {
                write!(f, "{drops} signals were discarded with no enabled transition")
            }
            Suggestion::InvestigateLosses { losses } => {
                write!(f, "{losses} signals had no connected receiver")
            }
        }
    }
}

/// Derives suggestions from a report.
///
/// * The group pair with the largest bidirectional signal exchange is
///   proposed for co-mapping (when it exchanges anything at all).
/// * A group using more than `dominance_threshold` of all cycles is
///   flagged for rebalancing.
/// * Any drops or losses are surfaced.
pub fn suggest(report: &ProfilingReport, dominance_threshold: f64) -> Vec<Suggestion> {
    let mut suggestions = Vec::new();
    let matrix = &report.signal_matrix;
    let mut best: Option<(usize, usize, u64)> = None;
    for i in 0..matrix.labels.len() {
        for j in (i + 1)..matrix.labels.len() {
            // Skip the synthetic environment row: it cannot be mapped.
            if matrix.labels[i] == crate::groups::ENVIRONMENT
                || matrix.labels[j] == crate::groups::ENVIRONMENT
            {
                continue;
            }
            let exchanged = matrix.counts[i][j] + matrix.counts[j][i];
            if exchanged > best.map(|(_, _, s)| s).unwrap_or(0) {
                best = Some((i, j, exchanged));
            }
        }
    }
    if let Some((i, j, signals)) = best {
        suggestions.push(Suggestion::CoMapGroups {
            a: matrix.labels[i].clone(),
            b: matrix.labels[j].clone(),
            signals,
        });
    }
    for group in &report.group_exec {
        if group.proportion > dominance_threshold {
            suggestions.push(Suggestion::RebalanceGroup {
                group: group.group.clone(),
                proportion: group.proportion,
            });
        }
    }
    if report.drops > 0 {
        suggestions.push(Suggestion::InvestigateDrops {
            drops: report.drops,
        });
    }
    if report.losses > 0 {
        suggestions.push(Suggestion::InvestigateLosses {
            losses: report.losses,
        });
    }
    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{GroupExec, SignalMatrix};

    fn report() -> ProfilingReport {
        ProfilingReport {
            horizon_ns: 1000,
            total_cycles: 1000,
            group_exec: vec![
                GroupExec {
                    group: "g1".into(),
                    cycles: 950,
                    busy_ns: 950,
                    proportion: 0.95,
                },
                GroupExec {
                    group: "g2".into(),
                    cycles: 50,
                    busy_ns: 50,
                    proportion: 0.05,
                },
                GroupExec {
                    group: "Environment".into(),
                    cycles: 0,
                    busy_ns: 0,
                    proportion: 0.0,
                },
            ],
            signal_matrix: SignalMatrix {
                labels: vec!["g1".into(), "g2".into(), "Environment".into()],
                counts: vec![vec![0, 30, 99], vec![12, 0, 0], vec![99, 0, 0]],
            },
            process_transfers: vec![],
            process_cycles: vec![],
            drops: 2,
            losses: 0,
            mean_signal_latency_ns: 0.0,
            faults: tut_sim::FaultTally::default(),
            group_counters: vec![],
        }
    }

    #[test]
    fn co_map_skips_environment() {
        let suggestions = suggest(&report(), 0.9);
        match &suggestions[0] {
            Suggestion::CoMapGroups { a, b, signals } => {
                assert_eq!((a.as_str(), b.as_str()), ("g1", "g2"));
                assert_eq!(*signals, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dominance_and_drops_flagged() {
        let suggestions = suggest(&report(), 0.9);
        assert!(suggestions
            .iter()
            .any(|s| matches!(s, Suggestion::RebalanceGroup { group, .. } if group == "g1")));
        assert!(suggestions
            .iter()
            .any(|s| matches!(s, Suggestion::InvestigateDrops { drops: 2 })));
        assert!(!suggestions
            .iter()
            .any(|s| matches!(s, Suggestion::InvestigateLosses { .. })));
    }

    #[test]
    fn suggestions_render() {
        for s in suggest(&report(), 0.5) {
            assert!(!s.to_string().is_empty());
        }
    }
}
