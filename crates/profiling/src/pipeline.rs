//! End-to-end convenience: the full Figure 2 loop in one call.

use tut_faults::{FaultModel, NoFaults};
use tut_profile::SystemModel;
use tut_sim::{SimConfig, Simulation};
use tut_trace::perf::{NoProf, Prof};
use tut_trace::{Clock, NoopSink, TraceSink};

use crate::analyze::analyze_log;
use crate::error::ProfilingError;
use crate::groups::parse_model_xml;
use crate::report::ProfilingReport;

/// Runs the complete design-and-profiling pipeline on a system model:
///
/// 1. serialise the model to XML and parse the process-group information
///    back out of the text (stage 1 of §4.4),
/// 2. simulate the system with `tut-sim`, producing the simulation log,
/// 3. combine and analyse (stage 3 of §4.4).
///
/// The model crosses the honest XML text boundary exactly like the
/// paper's TCL tooling; the simulation log is analysed in memory (its
/// text rendering is a lossless round-trip, so the result is identical
/// to re-parsing the log-file).
///
/// # Errors
///
/// Returns [`ProfilingError`] when any stage fails.
pub fn profile_system(
    system: &SystemModel,
    config: SimConfig,
) -> Result<ProfilingReport, ProfilingError> {
    profile_system_with(system, config, &mut NoopSink)
}

/// [`profile_system`] with tracing: each pipeline stage (serialise,
/// parse groups, build, simulate, analyse) becomes a host-clock span on
/// the `tool/profiling` track, and the simulation itself runs traced
/// (see [`Simulation::run_with`]).
///
/// # Errors
///
/// Returns [`ProfilingError`] when any stage fails.
pub fn profile_system_with<T: TraceSink>(
    system: &SystemModel,
    config: SimConfig,
    tracer: &mut T,
) -> Result<ProfilingReport, ProfilingError> {
    profile_system_with_faults(system, config, &mut NoFaults, tracer)
}

/// [`profile_system_with`] under a deterministic fault model: the
/// simulation stage runs via [`Simulation::run_with_faults`], so injected
/// corruption/drops flow through the log-file into the report's fault
/// tallies and per-group protocol counters.
///
/// With an inactive model (e.g. [`NoFaults`]) the report is identical to
/// [`profile_system`].
///
/// # Errors
///
/// Returns [`ProfilingError`] when any stage fails, including a
/// [`tut_sim::SimError::WatchdogExpired`] surfaced from an armed
/// watchdog.
pub fn profile_system_with_faults<F: FaultModel, T: TraceSink>(
    system: &SystemModel,
    config: SimConfig,
    faults: &mut F,
    tracer: &mut T,
) -> Result<ProfilingReport, ProfilingError> {
    profile_system_prof(system, config, faults, tracer, NoProf)
}

/// [`profile_system_with_faults`] with the simulation stage on the
/// conservative parallel kernel ([`Simulation::run_parallel_with_faults`]):
/// the run is partitioned into logical processes along the platform
/// mapping and advanced on up to `threads` workers (0 = all cores). The
/// merged log — and therefore the whole report — is bit-identical to the
/// serial pipeline at any thread count, so callers may pick `threads`
/// purely on host-budget grounds.
///
/// The parallel kernel runs untraced (workers cannot share a
/// [`TraceSink`]); use the serial entry points when a trace is needed.
///
/// # Errors
///
/// Same contract as [`profile_system_with_faults`].
pub fn profile_system_parallel<F: FaultModel + Clone + Send>(
    system: &SystemModel,
    config: SimConfig,
    threads: usize,
    faults: &F,
) -> Result<ProfilingReport, ProfilingError> {
    let xml = system.to_xml();
    let groups = parse_model_xml(&xml)?;
    let report = Simulation::from_system(system, config)
        .and_then(|sim| sim.run_parallel_with_faults(threads, faults))
        .map_err(|e| ProfilingError::Simulation(e.to_string()))?;
    Ok(analyze_log(&groups, &report.log))
}

/// [`profile_system_with_faults`] plus host self-profiling: each pipeline
/// phase (XML serialisation, group parsing, simulation setup, the
/// simulation itself, log analysis) becomes a frame under
/// `pipeline.profile`, and the simulation runs via
/// [`Simulation::run_with_faults_prof`] so host time is attributed per
/// process and per event kind. Drain with [`tut_trace::perf::drain`].
///
/// Self-profiling is observation only: the report (and the simulation
/// log inside it) is byte-identical to an unprofiled run.
///
/// # Errors
///
/// Same contract as [`profile_system_with_faults`].
pub fn profile_system_prof<F: FaultModel, T: TraceSink, P: Prof>(
    system: &SystemModel,
    config: SimConfig,
    faults: &mut F,
    tracer: &mut T,
    prof: P,
) -> Result<ProfilingReport, ProfilingError> {
    let _pipeline_span = prof.enter_named("pipeline.profile");
    let track = tracer.track("tool/profiling", Clock::Host);
    let mut stage_start = tracer.host_now_ns();
    let mut stage = |tracer: &mut T, name: &str| {
        let now = tracer.host_now_ns();
        tracer.span(track, name, stage_start, now.saturating_sub(stage_start));
        stage_start = now;
    };

    let xml = {
        let _s = prof.enter_named("pipeline.serialise_xml");
        system.to_xml()
    };
    stage(tracer, "serialise_xml");
    let groups = {
        let _s = prof.enter_named("pipeline.parse_groups");
        parse_model_xml(&xml)?
    };
    stage(tracer, "parse_groups");

    let simulation = {
        let _s = prof.enter_named("pipeline.sim_setup");
        Simulation::from_system(system, config)
            .map_err(|e| ProfilingError::Simulation(e.to_string()))?
    };
    stage(tracer, "build_simulation");
    let report = simulation
        .run_with_faults_prof(faults, tracer, prof)
        .map_err(|e| ProfilingError::Simulation(e.to_string()))?;
    stage(tracer, "simulate");

    // Analyse the in-memory log directly: rendering to text and parsing
    // it back is a lossless round-trip (covered by tests), so the
    // double conversion the text boundary used to cost is skipped here.
    // `analyze` stays available for externally produced log-files.
    let result = {
        let _s = prof.enter_named("pipeline.analyze");
        Ok(analyze_log(&groups, &report.log))
    };
    stage(tracer, "analyze");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_profile::application::ProcessType;
    use tut_uml::action::{CostClass, Expr, Statement};
    use tut_uml::statemachine::{StateMachine, Trigger};

    /// A single self-driving process in one group: it computes on a
    /// timer tick a few times.
    fn ticking_system() -> SystemModel {
        let mut s = SystemModel::new("Tick");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let comp = s.model.add_class("Ticker");
        s.apply(comp, |t| t.application_component).unwrap();
        let mut sm = StateMachine::new("B");
        let run = sm.add_state_with_entry(
            "Run",
            vec![Statement::SetTimer {
                name: "tick".into(),
                duration: Expr::int(1000),
            }],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("tick".into()),
            None,
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(100),
                },
                Statement::SetTimer {
                    name: "tick".into(),
                    duration: Expr::int(1000),
                },
            ],
        );
        s.model.add_state_machine(comp, sm);
        let part = s.model.add_part(top, "ticker", comp);
        s.apply(part, |t| t.application_process).unwrap();
        let g = s.add_process_group("group1", false, ProcessType::General);
        s.assign_to_group(part, g);
        s
    }

    #[test]
    fn end_to_end_pipeline_produces_table4() {
        let system = ticking_system();
        let config = SimConfig::with_horizon_ns(50_000);
        let report = profile_system(&system, config).unwrap();
        // The single (unmapped-platform) group runs on the environment?
        // No: grouped processes without a platform mapping still execute
        // on the environment element, but they are *grouped*, so their
        // cycles are zero only if on the env PE. The group label must be
        // present either way.
        assert!(report.group("group1").is_some());
        assert!(report.horizon_ns > 0);
    }

    #[test]
    fn report_attributes_cycles_when_mapped() {
        use tut_profile::platform::ComponentKind;
        let mut system = ticking_system();
        let platform = system.model.add_class("Plat");
        system.apply(platform, |t| t.platform).unwrap();
        let nios = system.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu = system.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let group = system.model.find_class("group1").unwrap();
        system.map_group(group, cpu, false);

        let report = profile_system(&system, SimConfig::with_horizon_ns(50_000)).unwrap();
        let g1 = report.group("group1").unwrap();
        assert!(g1.cycles > 0, "mapped group must accumulate cycles");
        assert!((g1.proportion - 1.0).abs() < 1e-9, "only group running");
    }
}
