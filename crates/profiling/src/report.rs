//! The profiling report: Table 4 of the paper plus per-process metrics.

use std::fmt::Write as _;

/// One row of Table 4(a): execution time of one process group.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupExec {
    /// Group label.
    pub group: String,
    /// Total execution cycles charged to the group's processes.
    pub cycles: u64,
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// The group's share of all cycles, in `[0, 1]`.
    pub proportion: f64,
}

/// Table 4(b): the matrix of signal counts between groups.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignalMatrix {
    /// Row/column labels (sender = row, receiver = column).
    pub labels: Vec<String>,
    /// `counts[sender][receiver]`.
    pub counts: Vec<Vec<u64>>,
}

impl SignalMatrix {
    /// Total signals in the matrix.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Signals crossing group boundaries (off-diagonal sum) — the
    /// quantity the paper's grouping minimises.
    pub fn inter_group(&self) -> u64 {
        let mut sum = 0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &count) in row.iter().enumerate() {
                if i != j {
                    sum += count;
                }
            }
        }
        sum
    }

    /// The count from one label to another, if both exist.
    pub fn between(&self, from: &str, to: &str) -> Option<u64> {
        let i = self.labels.iter().position(|l| l == from)?;
        let j = self.labels.iter().position(|l| l == to)?;
        Some(self.counts[i][j])
    }
}

/// One per-process transfer row ("other metrics, such as transfers
/// between individual application processes, are also available", §4.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessTransfer {
    /// Sending process instance.
    pub sender: String,
    /// Receiving process instance.
    pub receiver: String,
    /// Signal type.
    pub signal: String,
    /// Number of signals.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// One per-group protocol counter total, accumulated from the log's
/// `CNT` records (see `tut_uml::action::Statement::Count`): ARQ frame
/// tallies, retries, give-ups and any other model-defined counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupCounter {
    /// Group label the counting process belongs to.
    pub group: String,
    /// Counter name (e.g. `arq.retries`).
    pub counter: String,
    /// Signed total over the run.
    pub total: i64,
}

/// The full profiling report.
#[derive(Clone, PartialEq, Debug)]
pub struct ProfilingReport {
    /// Last timestamp in the log (ns).
    pub horizon_ns: u64,
    /// Total cycles across all groups.
    pub total_cycles: u64,
    /// Table 4(a) rows, in group order (Environment last).
    pub group_exec: Vec<GroupExec>,
    /// Table 4(b).
    pub signal_matrix: SignalMatrix,
    /// Per-(sender, receiver, signal) transfer counts.
    pub process_transfers: Vec<ProcessTransfer>,
    /// Per-process cycle totals.
    pub process_cycles: Vec<(String, u64)>,
    /// Signals discarded with no enabled transition.
    pub drops: u64,
    /// Signals sent with no connected receiver.
    pub losses: u64,
    /// Mean end-to-end signal latency (ns).
    pub mean_signal_latency_ns: f64,
    /// Fault events from the log (`FAULT` records by kind).
    pub faults: tut_sim::FaultTally,
    /// Per-group protocol counter totals (`CNT` records), sorted by
    /// group then counter name.
    pub group_counters: Vec<GroupCounter>,
}

impl ProfilingReport {
    /// The Table 4(a) row for one group.
    pub fn group(&self, name: &str) -> Option<&GroupExec> {
        self.group_exec.iter().find(|g| g.group == name)
    }

    /// The group with the largest cycle share.
    pub fn dominant_group(&self) -> Option<&GroupExec> {
        self.group_exec
            .iter()
            .max_by(|a, b| a.cycles.cmp(&b.cycles))
    }

    /// Total of one named counter for one group (0 when absent).
    pub fn group_counter(&self, group: &str, counter: &str) -> i64 {
        self.group_counters
            .iter()
            .filter(|c| c.group == group && c.counter == counter)
            .map(|c| c.total)
            .sum()
    }

    /// Total of one named counter across all groups.
    pub fn counter_total(&self, counter: &str) -> i64 {
        self.group_counters
            .iter()
            .filter(|c| c.counter == counter)
            .map(|c| c.total)
            .sum()
    }
}

fn pad(text: &str, width: usize) -> String {
    let mut s = text.to_owned();
    while s.chars().count() < width {
        s.push(' ');
    }
    s
}

/// Renders the report in the paper's Table 4 layout.
pub fn render_table4(report: &ProfilingReport) -> String {
    let mut out = String::new();
    out.push_str("Table 4. A profiling report based on the simulations.\n");
    out.push_str("(a)\n");
    out.push_str(&format!(
        "{} | {} | {}\n",
        pad("Process group", 14),
        pad("Total execution time", 22),
        "Proportion"
    ));
    out.push_str(&format!(
        "{}-+-{}-+-{}\n",
        "-".repeat(14),
        "-".repeat(22),
        "-".repeat(10)
    ));
    for row in &report.group_exec {
        out.push_str(&format!(
            "{} | {} | {:>6.1} %\n",
            pad(&row.group, 14),
            pad(&format!("{} cycles", row.cycles), 22),
            row.proportion * 100.0
        ));
    }
    out.push('\n');
    out.push_str("(b) Number of signals between groups\n");
    let matrix = &report.signal_matrix;
    let width = matrix
        .labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = write!(out, "{} |", pad("Sender/Receiver", 16));
    for label in &matrix.labels {
        let _ = write!(out, " {}", pad(label, width));
    }
    out.push('\n');
    let _ = write!(out, "{}-+", "-".repeat(16));
    for _ in &matrix.labels {
        let _ = write!(out, "-{}", "-".repeat(width));
    }
    out.push('\n');
    for (i, label) in matrix.labels.iter().enumerate() {
        let _ = write!(out, "{} |", pad(label, 16));
        for j in 0..matrix.labels.len() {
            let _ = write!(out, " {}", pad(&matrix.counts[i][j].to_string(), width));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&format!(
        "total: {} cycles over {} ns; {} signals ({} inter-group); {} drops, {} lost; mean signal latency {:.0} ns\n",
        report.total_cycles,
        report.horizon_ns,
        matrix.total(),
        matrix.inter_group(),
        report.drops,
        report.losses,
        report.mean_signal_latency_ns
    ));
    if report.faults.injected() > 0 || report.faults.unroutable > 0 {
        out.push_str(&format!(
            "faults: {} corrupted, {} dropped, {} unroutable\n",
            report.faults.corrupted, report.faults.dropped, report.faults.unroutable
        ));
    }
    out
}

/// Renders the per-group protocol counter table (empty string when the
/// model counted nothing).
pub fn render_counters(report: &ProfilingReport) -> String {
    if report.group_counters.is_empty() {
        return String::new();
    }
    let mut out = String::from("Protocol counters per process group\n");
    out.push_str(&format!(
        "{} | {} | {}\n",
        pad("Group", 16),
        pad("Counter", 16),
        "Total"
    ));
    for c in &report.group_counters {
        out.push_str(&format!(
            "{} | {} | {}\n",
            pad(&c.group, 16),
            pad(&c.counter, 16),
            c.total
        ));
    }
    out
}

/// Renders the per-process transfer table (the paper's "other metrics").
pub fn render_transfers(report: &ProfilingReport) -> String {
    let mut out = String::from("Transfers between individual application processes\n");
    out.push_str(&format!(
        "{} | {} | {} | {} | {}\n",
        pad("Sender", 16),
        pad("Receiver", 16),
        pad("Signal", 16),
        pad("Count", 8),
        "Bytes"
    ));
    for t in &report.process_transfers {
        out.push_str(&format!(
            "{} | {} | {} | {} | {}\n",
            pad(&t.sender, 16),
            pad(&t.receiver, 16),
            pad(&t.signal, 16),
            pad(&t.count.to_string(), 8),
            t.bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfilingReport {
        ProfilingReport {
            horizon_ns: 1_000_000,
            total_cycles: 1000,
            group_exec: vec![
                GroupExec {
                    group: "Group1".into(),
                    cycles: 921,
                    busy_ns: 92100,
                    proportion: 0.921,
                },
                GroupExec {
                    group: "Environment".into(),
                    cycles: 0,
                    busy_ns: 0,
                    proportion: 0.0,
                },
            ],
            signal_matrix: SignalMatrix {
                labels: vec!["Group1".into(), "Environment".into()],
                counts: vec![vec![2, 3], vec![5, 0]],
            },
            process_transfers: vec![ProcessTransfer {
                sender: "rca".into(),
                receiver: "mng".into(),
                signal: "Data".into(),
                count: 7,
                bytes: 700,
            }],
            process_cycles: vec![("rca".into(), 921)],
            drops: 1,
            losses: 2,
            mean_signal_latency_ns: 250.0,
            faults: tut_sim::FaultTally::default(),
            group_counters: vec![
                GroupCounter {
                    group: "Group1".into(),
                    counter: "arq.retries".into(),
                    total: 4,
                },
                GroupCounter {
                    group: "Group1".into(),
                    counter: "arq.tx".into(),
                    total: 9,
                },
            ],
        }
    }

    #[test]
    fn matrix_helpers() {
        let r = sample();
        assert_eq!(r.signal_matrix.total(), 10);
        assert_eq!(r.signal_matrix.inter_group(), 8);
        assert_eq!(r.signal_matrix.between("Group1", "Environment"), Some(3));
        assert_eq!(r.signal_matrix.between("Nope", "Environment"), None);
    }

    #[test]
    fn dominant_group() {
        let r = sample();
        assert_eq!(r.dominant_group().unwrap().group, "Group1");
        assert_eq!(r.group("Environment").unwrap().cycles, 0);
    }

    #[test]
    fn table4_rendering_matches_paper_layout() {
        let text = render_table4(&sample());
        assert!(text.contains("(a)"));
        assert!(text.contains("Process group"));
        assert!(text.contains("921 cycles"));
        assert!(text.contains("92.1 %"));
        assert!(text.contains("(b) Number of signals between groups"));
        assert!(text.contains("Sender/Receiver"));
        assert!(text.contains("Environment"));
    }

    #[test]
    fn transfers_rendering() {
        let text = render_transfers(&sample());
        assert!(text.contains("rca"));
        assert!(text.contains("700"));
    }

    #[test]
    fn counter_lookups_and_rendering() {
        let r = sample();
        assert_eq!(r.group_counter("Group1", "arq.retries"), 4);
        assert_eq!(r.group_counter("Group1", "nope"), 0);
        assert_eq!(r.counter_total("arq.tx"), 9);
        let text = render_counters(&r);
        assert!(text.contains("arq.retries"));
        assert!(text.contains("arq.tx"));

        let mut empty = sample();
        empty.group_counters.clear();
        assert_eq!(render_counters(&empty), "");
    }

    #[test]
    fn faults_appear_in_table4_only_when_present() {
        assert!(!render_table4(&sample()).contains("faults:"));
        let mut lossy = sample();
        lossy.faults.dropped = 5;
        lossy.faults.corrupted = 2;
        let text = render_table4(&lossy);
        assert!(text.contains("faults: 2 corrupted, 5 dropped, 0 unroutable"));
    }
}
