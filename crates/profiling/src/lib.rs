//! The TUT-Profile profiling tool (§4.4 of the paper).
//!
//! The paper's tool "contains three main stages that are implemented as
//! TCL scripts":
//!
//! 1. "the XML presentation of the UML 2.0 model is parsed to gather
//!    process group information" — [`groups::parse_model_xml`];
//! 2. the generated code is instrumented to write the simulation
//!    log-file — done by `tut-sim` (Rust path) / `tut-codegen` (C path);
//! 3. "the profiling data in the simulation log-file and the process
//!    group information are combined and analyzed. The results are
//!    gathered to a profiling report" — [`analyze::analyze`] producing a
//!    [`report::ProfilingReport`].
//!
//! The report reproduces **Table 4** of the paper: (a) execution time per
//! process group with proportions, and (b) the matrix of signal counts
//! between groups, plus the per-process transfer metrics the paper
//! mentions as "also available". [`report::render_table4`] prints it in
//! the paper's layout.
//!
//! Both tool boundaries are honest: stage 1 parses the *XML text* of the
//! model (not in-memory structs) and stage 3 parses the *log-file text*.
//!
//! # Example
//!
//! See `examples/tutmac_flow.rs` at the repository root for the complete
//! Figure 2 pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod error;
pub mod groups;
pub mod pipeline;
pub mod report;
pub mod suggest;

pub use analyze::analyze;
pub use error::ProfilingError;
pub use groups::{GroupEntry, ProcessGroupInfo};
pub use pipeline::{
    profile_system, profile_system_parallel, profile_system_prof, profile_system_with,
    profile_system_with_faults,
};
pub use report::{render_counters, render_table4, ProfilingReport};
