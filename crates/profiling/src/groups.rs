//! Stage 1: parse the model XML and gather process-group information.

use std::collections::BTreeMap;

use tut_profile::SystemModel;
use tut_uml::instances::InstanceTree;

use crate::error::ProfilingError;

/// The reserved group label for processes outside every group (traffic
/// sources, channel models): the `Environment` row of Table 4.
pub const ENVIRONMENT: &str = "Environment";

/// One process group with its member process instances.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupEntry {
    /// Group name (e.g. `group1`).
    pub name: String,
    /// Dotted instance names of member processes (e.g. `ui.msduRec`).
    pub processes: Vec<String>,
}

/// The process-group information extracted from the model XML.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcessGroupInfo {
    /// Groups in model order, with the synthetic [`ENVIRONMENT`] group
    /// appended when ungrouped processes exist.
    pub groups: Vec<GroupEntry>,
    group_of: BTreeMap<String, String>,
}

impl ProcessGroupInfo {
    /// The group a process instance belongs to ([`ENVIRONMENT`] when
    /// ungrouped or unknown).
    pub fn group_of(&self, process: &str) -> &str {
        self.group_of
            .get(process)
            .map(String::as_str)
            .unwrap_or(ENVIRONMENT)
    }

    /// Group labels in report order (declared groups first, then
    /// `Environment`).
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.groups.iter().map(|g| g.name.clone()).collect();
        if !labels.iter().any(|l| l == ENVIRONMENT) {
            labels.push(ENVIRONMENT.to_owned());
        }
        labels
    }

    /// Total number of grouped processes.
    pub fn process_count(&self) -> usize {
        self.group_of.len()
    }

    /// Crate-internal mutable access to the membership map (used by
    /// tests and the exploration tools when re-grouping virtually).
    #[cfg(test)]
    pub(crate) fn group_of_mut(&mut self) -> &mut BTreeMap<String, String> {
        &mut self.group_of
    }

    /// Builds a group info directly from `(process, group)` pairs — the
    /// in-memory path used when exploring alternative groupings without a
    /// model rewrite.
    pub fn from_assignments<I, S>(assignments: I) -> ProcessGroupInfo
    where
        I: IntoIterator<Item = (S, S)>,
        S: Into<String>,
    {
        let mut info = ProcessGroupInfo::default();
        for (process, group) in assignments {
            let process = process.into();
            let group = group.into();
            if let Some(entry) = info.groups.iter_mut().find(|g| g.name == group) {
                entry.processes.push(process.clone());
            } else {
                info.groups.push(GroupEntry {
                    name: group.clone(),
                    processes: vec![process.clone()],
                });
            }
            info.group_of.insert(process, group);
        }
        info
    }
}

/// Parses the XML form of a system model (produced by
/// [`SystemModel::to_xml`]) and gathers the process-group information: for
/// every `«ProcessGroup»`, the dotted instance names of its member
/// processes, resolved through the application's composite structure.
///
/// # Errors
///
/// Returns [`ProfilingError::Model`] when the XML is malformed or does not
/// contain a TUT-Profile application.
pub fn parse_model_xml(xml: &str) -> Result<ProcessGroupInfo, ProfilingError> {
    let system = SystemModel::from_xml(xml).map_err(|e| ProfilingError::Model(e.to_string()))?;
    gather_groups(&system)
}

/// Gathers process-group information from an in-memory system (the
/// XML-free path used by tests and the exploration tools).
///
/// # Errors
///
/// Returns [`ProfilingError::Model`] when the model has no application
/// top or its composition is cyclic.
pub fn gather_groups(system: &SystemModel) -> Result<ProcessGroupInfo, ProfilingError> {
    let app = system.application();
    let top = app
        .top()
        .ok_or_else(|| ProfilingError::Model("no \u{ab}Application\u{bb} class".into()))?;
    let tree = InstanceTree::build(&system.model, top)
        .map_err(|e| ProfilingError::Model(e.to_string()))?;

    // Part id -> all dotted instance names containing it as the last hop.
    let mut names_of_part: BTreeMap<tut_uml::ids::PropertyId, Vec<String>> = BTreeMap::new();
    for &instance in &tree.active_instances(&system.model) {
        let node = tree.node(instance);
        if let Some(&part) = node.path.last() {
            names_of_part
                .entry(part)
                .or_default()
                .push(tree.display_name(&system.model, instance));
        }
    }

    let mut info = ProcessGroupInfo::default();
    for group in app.groups() {
        let mut processes = Vec::new();
        for part in group.members {
            for name in names_of_part.get(&part).cloned().unwrap_or_default() {
                info.group_of.insert(name.clone(), group.name.clone());
                processes.push(name);
            }
        }
        info.groups.push(GroupEntry {
            name: group.name,
            processes,
        });
    }
    // Ungrouped processes form the environment.
    let mut environment = Vec::new();
    for &instance in &tree.active_instances(&system.model) {
        let name = tree.display_name(&system.model, instance);
        if !info.group_of.contains_key(&name) {
            info.group_of.insert(name.clone(), ENVIRONMENT.to_owned());
            environment.push(name);
        }
    }
    if !environment.is_empty() {
        info.groups.push(GroupEntry {
            name: ENVIRONMENT.to_owned(),
            processes: environment,
        });
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_profile::application::ProcessType;
    use tut_uml::statemachine::{StateMachine, Trigger};

    fn sample() -> SystemModel {
        let mut s = SystemModel::new("G");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let sig = s.model.add_signal("S");
        let comp = s.model.add_class("Worker");
        s.apply(comp, |t| t.application_component).unwrap();
        let port = s.model.add_port(comp, "in");
        s.model.port_mut(port).add_provided(sig);
        let mut sm = StateMachine::new("B");
        let st = sm.add_state("S0");
        sm.set_initial(st);
        sm.add_transition(st, st, Trigger::Signal(sig), None, vec![]);
        s.model.add_state_machine(comp, sm);

        let a = s.model.add_part(top, "a", comp);
        let b = s.model.add_part(top, "b", comp);
        let c = s.model.add_part(top, "envproc", comp);
        for part in [a, b, c] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        let g2 = s.add_process_group("group2", false, ProcessType::General);
        s.assign_to_group(a, g1);
        s.assign_to_group(b, g2);
        // c stays ungrouped -> Environment.
        s
    }

    #[test]
    fn gather_resolves_membership_and_environment() {
        let info = gather_groups(&sample()).unwrap();
        assert_eq!(info.group_of("a"), "group1");
        assert_eq!(info.group_of("b"), "group2");
        assert_eq!(info.group_of("envproc"), ENVIRONMENT);
        assert_eq!(info.group_of("unknown"), ENVIRONMENT);
        assert_eq!(info.labels(), vec!["group1", "group2", ENVIRONMENT]);
        assert_eq!(info.process_count(), 3);
    }

    #[test]
    fn xml_path_matches_in_memory_path() {
        let system = sample();
        let via_xml = parse_model_xml(&system.to_xml()).unwrap();
        let direct = gather_groups(&system).unwrap();
        assert_eq!(via_xml, direct);
    }

    #[test]
    fn malformed_xml_rejected() {
        assert!(parse_model_xml("<not-a-model/>").is_err());
        assert!(parse_model_xml("garbage").is_err());
    }

    #[test]
    fn nested_processes_get_dotted_names() {
        let mut s = sample();
        // Wrap another process inside a structural component.
        let shell = s.model.add_class("Shell");
        let comp = s.model.find_class("Worker").unwrap();
        let inner = s.model.add_part(shell, "inner", comp);
        s.apply(inner, |t| t.application_process).unwrap();
        let top = s.model.find_class("Top").unwrap();
        s.model.add_part(top, "shell", shell);
        let g1 = s.model.find_class("group1").unwrap();
        s.assign_to_group(inner, g1);

        let info = gather_groups(&s).unwrap();
        assert_eq!(info.group_of("shell.inner"), "group1");
    }
}
