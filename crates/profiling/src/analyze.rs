//! Stage 3: combine the simulation log-file with the process-group
//! information and analyse.

use std::collections::BTreeMap;

use tut_sim::{RecordRef, SimLog};

use crate::error::ProfilingError;
use crate::groups::ProcessGroupInfo;
use crate::report::{GroupCounter, GroupExec, ProcessTransfer, ProfilingReport, SignalMatrix};

/// Combines the parsed log-file with the process-group information into a
/// [`ProfilingReport`] — the paper's Table 4 plus the per-process transfer
/// metrics.
///
/// # Errors
///
/// Returns [`ProfilingError::Log`] when the log text is malformed.
pub fn analyze(
    groups: &ProcessGroupInfo,
    log_text: &str,
) -> Result<ProfilingReport, ProfilingError> {
    let log = SimLog::parse(log_text).map_err(ProfilingError::Log)?;
    Ok(analyze_log(groups, &log))
}

/// Like [`analyze`], starting from an already parsed log.
pub fn analyze_log(groups: &ProcessGroupInfo, log: &SimLog) -> ProfilingReport {
    let labels = groups.labels();
    let index_of = |label: &str| -> usize {
        labels
            .iter()
            .position(|l| l == label)
            .expect("labels() covers every group_of() result")
    };

    let mut group_cycles: Vec<u64> = vec![0; labels.len()];
    let mut group_busy_ns: Vec<u64> = vec![0; labels.len()];
    let mut matrix = vec![vec![0u64; labels.len()]; labels.len()];
    let mut transfers: BTreeMap<(String, String, String), (u64, u64)> = BTreeMap::new();
    let mut process_cycles: BTreeMap<String, u64> = BTreeMap::new();
    let mut horizon_ns = 0;
    let mut drops = 0;
    let mut losses = 0;
    let mut latency_total_ns = 0u64;
    let mut latency_count = 0u64;
    let mut faults = tut_sim::FaultTally::default();
    let mut counters: BTreeMap<(String, String), i64> = BTreeMap::new();

    for record in log.iter() {
        horizon_ns = horizon_ns.max(record.time_ns());
        match record {
            RecordRef::Exec {
                process,
                cycles,
                duration_ns,
                ..
            } => {
                let g = index_of(groups.group_of(process));
                group_cycles[g] += cycles;
                group_busy_ns[g] += duration_ns;
                *process_cycles.entry(process.to_owned()).or_default() += cycles;
            }
            RecordRef::Sig {
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
                ..
            } => {
                let from = index_of(groups.group_of(sender));
                let to = index_of(groups.group_of(receiver));
                matrix[from][to] += 1;
                let entry = transfers
                    .entry((sender.to_owned(), receiver.to_owned(), signal.to_owned()))
                    .or_default();
                entry.0 += 1;
                entry.1 += bytes;
                latency_total_ns += latency_ns;
                latency_count += 1;
            }
            RecordRef::Drop { .. } => drops += 1,
            RecordRef::Lost { .. } => losses += 1,
            RecordRef::Fault { kind, .. } => match kind {
                "corrupt" => faults.corrupted += 1,
                "drop" => faults.dropped += 1,
                "unroutable" => faults.unroutable += 1,
                _ => {}
            },
            RecordRef::Count {
                process,
                counter,
                amount,
                ..
            } => {
                let group = groups.group_of(process).to_owned();
                *counters.entry((group, counter.to_owned())).or_default() += amount;
            }
            RecordRef::User { .. } => {}
        }
    }

    let total_cycles: u64 = group_cycles.iter().sum();
    let group_exec = labels
        .iter()
        .zip(&group_cycles)
        .zip(&group_busy_ns)
        .map(|((label, &cycles), &busy_ns)| GroupExec {
            group: label.clone(),
            cycles,
            busy_ns,
            proportion: if total_cycles == 0 {
                0.0
            } else {
                cycles as f64 / total_cycles as f64
            },
        })
        .collect();

    let process_transfers = transfers
        .into_iter()
        .map(
            |((sender, receiver, signal), (count, bytes))| ProcessTransfer {
                sender,
                receiver,
                signal,
                count,
                bytes,
            },
        )
        .collect();

    ProfilingReport {
        horizon_ns,
        total_cycles,
        group_exec,
        signal_matrix: SignalMatrix {
            labels,
            counts: matrix,
        },
        process_transfers,
        process_cycles: process_cycles.into_iter().collect(),
        drops,
        losses,
        mean_signal_latency_ns: if latency_count == 0 {
            0.0
        } else {
            latency_total_ns as f64 / latency_count as f64
        },
        faults,
        group_counters: counters
            .into_iter()
            .map(|((group, counter), total)| GroupCounter {
                group,
                counter,
                total,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{GroupEntry, ENVIRONMENT};

    fn group_info() -> ProcessGroupInfo {
        let mut info = ProcessGroupInfo::default();
        info.groups.push(GroupEntry {
            name: "group1".into(),
            processes: vec!["rca".into()],
        });
        info.groups.push(GroupEntry {
            name: "group2".into(),
            processes: vec!["mng".into()],
        });
        // Rebuild the private map through the public path: easiest is to
        // reconstruct via analyze-time group_of fallbacks, so insert via
        // serde-free trick: the struct is in the same crate, fields are
        // accessible to tests through a helper below.
        info
    }

    // The `group_of` map is private; tests populate it through the same
    // crate with this helper.
    fn with_members(mut info: ProcessGroupInfo) -> ProcessGroupInfo {
        for group in info.groups.clone() {
            for process in &group.processes {
                insert_group_of(&mut info, process, &group.name);
            }
        }
        info
    }

    fn insert_group_of(info: &mut ProcessGroupInfo, process: &str, group: &str) {
        // Direct field access: same crate.
        use std::collections::BTreeMap;
        let map: &mut BTreeMap<String, String> = {
            // SAFETY-free reflection is unavailable; expose via a small
            // crate-internal method instead.
            info.group_of_mut()
        };
        map.insert(process.to_owned(), group.to_owned());
    }

    fn sample_log() -> String {
        [
            "EXEC 0 rca 900 18000 Idle Idle start",
            "EXEC 10 mng 100 2000 Idle Idle start",
            "EXEC 20 env 0 0 Idle Idle start",
            "SIG 30 rca mng Data 16 120",
            "SIG 40 mng rca Ack 8 80",
            "SIG 50 env rca Frame 64 1000",
            "DROP 60 mng Beacon",
            "LOST 70 rca pPhy TxFrame",
            "FAULT 80 rca drop TxFrame",
            "FAULT 90 rca corrupt TxFrame",
            "CNT 95 rca arq.retries 2",
            "CNT 96 rca arq.retries 1",
            "CNT 97 mng arq.tx 5",
        ]
        .join("\n")
    }

    #[test]
    fn table4a_proportions() {
        let info = with_members(group_info());
        let report = analyze(&info, &sample_log()).unwrap();
        assert_eq!(report.total_cycles, 1000);
        let g1 = &report.group_exec[0];
        assert_eq!(g1.group, "group1");
        assert_eq!(g1.cycles, 900);
        assert!((g1.proportion - 0.9).abs() < 1e-12);
        // Environment executes 0 cycles (paper Table 4a).
        let env = report
            .group_exec
            .iter()
            .find(|g| g.group == ENVIRONMENT)
            .unwrap();
        assert_eq!(env.cycles, 0);
    }

    #[test]
    fn table4b_matrix() {
        let info = with_members(group_info());
        let report = analyze(&info, &sample_log()).unwrap();
        let m = &report.signal_matrix;
        let g1 = m.labels.iter().position(|l| l == "group1").unwrap();
        let g2 = m.labels.iter().position(|l| l == "group2").unwrap();
        let env = m.labels.iter().position(|l| l == ENVIRONMENT).unwrap();
        assert_eq!(m.counts[g1][g2], 1);
        assert_eq!(m.counts[g2][g1], 1);
        assert_eq!(m.counts[env][g1], 1);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn per_process_metrics() {
        let info = with_members(group_info());
        let report = analyze(&info, &sample_log()).unwrap();
        assert_eq!(report.process_transfers.len(), 3);
        let rca_to_mng = report
            .process_transfers
            .iter()
            .find(|t| t.sender == "rca" && t.receiver == "mng")
            .unwrap();
        assert_eq!(rca_to_mng.count, 1);
        assert_eq!(rca_to_mng.bytes, 16);
        assert_eq!(report.drops, 1);
        assert_eq!(report.losses, 1);
        assert!((report.mean_signal_latency_ns - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fault_records_and_counters_are_grouped() {
        let info = with_members(group_info());
        let report = analyze(&info, &sample_log()).unwrap();
        assert_eq!(report.faults.dropped, 1);
        assert_eq!(report.faults.corrupted, 1);
        assert_eq!(report.faults.unroutable, 0);
        // rca is in group1, mng in group2.
        assert_eq!(report.group_counter("group1", "arq.retries"), 3);
        assert_eq!(report.group_counter("group2", "arq.tx"), 5);
        assert_eq!(report.counter_total("arq.retries"), 3);
    }

    #[test]
    fn malformed_log_rejected() {
        let info = with_members(group_info());
        assert!(analyze(&info, "EXEC bogus").is_err());
    }

    #[test]
    fn empty_log_produces_zero_report() {
        let info = with_members(group_info());
        let report = analyze(&info, "# empty\n").unwrap();
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.signal_matrix.total(), 0);
        assert_eq!(report.group_exec[0].proportion, 0.0);
    }
}
