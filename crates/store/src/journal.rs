//! The append-only, checksummed record journal.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header:  magic "TUTSTOR1" (8) | version u32 (4) | job_hash u64 (8)
//! record:  len u32 (4) | crc32(payload) u32 (4) | payload (len)
//! ```
//!
//! Durability contract:
//!
//! * **append** buffers a frame into the OS file; **commit** flushes and
//!   `fsync`s, so a batch of appends costs one disk sync (group commit).
//! * **recovery** ([`open`]) scans records front to back and stops at the
//!   first invalid frame — a torn length field, a frame running past EOF,
//!   or a CRC mismatch — then *truncates the file to the last valid
//!   record* and reopens for append. A crash mid-write therefore loses at
//!   most the uncommitted tail, never the journal.
//! * a bad header (wrong magic/version, short file) is [`StoreError::Corrupt`]:
//!   the job layer treats it as a stale journal and restarts from scratch
//!   with a diagnostic instead of panicking.
//!
//! Kill-injection sites (`store.append`, `store.torn`, `store.commit` —
//! see [`crate::kill`]) bracket every durability boundary so the
//! recovery property tests can crash at each one.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::kill;

/// Journal file magic.
pub const MAGIC: [u8; 8] = *b"TUTSTOR1";
/// Journal format version.
pub const VERSION: u32 = 1;
/// Header bytes: magic + version + job hash.
pub const HEADER_LEN: u64 = 8 + 4 + 8;
/// Upper bound on one record payload; a length field above this is
/// treated as tail corruption.
pub const MAX_RECORD_LEN: u32 = 1 << 24;

/// Errors of the store layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The operation that failed (`"open"`, `"append"`, ...).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not a usable journal (bad magic, unknown version, or
    /// shorter than a header). Recoverable by restarting the job fresh.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// A replayed record payload failed to decode against the current
    /// codec — the journal is internally valid but semantically stale.
    Decode {
        /// What failed to decode.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, op, source } => {
                write!(f, "journal {op} failed on `{}`: {source}", path.display())
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "`{}` is not a usable journal: {reason}", path.display())
            }
            StoreError::Decode { reason } => write!(f, "stale record payload: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// An open journal positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Valid on-disk bytes (header + committed/buffered whole frames).
    len: u64,
    /// Whole records written (recovered + appended).
    records: u64,
    /// Appends since the last commit.
    dirty: u64,
}

/// What [`open`] recovered from an existing journal.
#[derive(Debug)]
pub struct Recovery {
    /// The journal, truncated to its last valid record and ready to
    /// append.
    pub journal: Journal,
    /// The job hash the header carries (the caller checks it against the
    /// hash of the work it is about to do).
    pub job_hash: u64,
    /// Every valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Torn-tail bytes dropped by recovery (0 for a clean journal).
    pub truncated_bytes: u64,
}

fn io_err(path: &Path, op: &'static str, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

impl Journal {
    /// Creates (or truncates to empty) a journal for `job_hash` and
    /// makes the header durable.
    pub fn create(path: &Path, job_hash: u64) -> Result<Journal, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&job_hash.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| io_err(path, "write header", e))?;
        file.sync_all()
            .map_err(|e| io_err(path, "sync header", e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            len: HEADER_LEN,
            records: 0,
            dirty: 0,
        })
    }

    /// Opens an existing journal, recovering a torn tail by truncating to
    /// the last valid record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure (including a missing
    /// file) and [`StoreError::Corrupt`] when the header is not a
    /// version-1 journal.
    pub fn open(path: &Path) -> Result<Recovery, StoreError> {
        let data = std::fs::read(path).map_err(|e| io_err(path, "open", e))?;
        let corrupt = |reason: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        if data.len() < HEADER_LEN as usize {
            return Err(corrupt(format!(
                "{} bytes is shorter than a {HEADER_LEN}-byte header",
                data.len()
            )));
        }
        if data[..8] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt(format!(
                "format version {version}, this build reads {VERSION}"
            )));
        }
        let job_hash = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));

        let mut records = Vec::new();
        let mut offset = HEADER_LEN as usize;
        while data.len() - offset >= 8 {
            let len = u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN || offset + 8 + len as usize > data.len() {
                break; // torn or corrupt length: stop at the last valid record
            }
            let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
            let payload = &data[offset + 8..offset + 8 + len as usize];
            if crc32(payload) != crc {
                break; // corrupt payload: everything from here on is dropped
            }
            records.push(payload.to_vec());
            offset += 8 + len as usize;
        }
        let truncated_bytes = (data.len() - offset) as u64;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "reopen", e))?;
        if truncated_bytes > 0 {
            file.set_len(offset as u64)
                .map_err(|e| io_err(path, "truncate tail", e))?;
            file.sync_all()
                .map_err(|e| io_err(path, "sync truncation", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(path, "seek", e))?;
        Ok(Recovery {
            journal: Journal {
                file,
                path: path.to_path_buf(),
                len: offset as u64,
                records: records.len() as u64,
                dirty: 0,
            },
            job_hash,
            records,
            truncated_bytes,
        })
    }

    /// Appends one record frame (buffered; durable only after
    /// [`commit`](Journal::commit)).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        assert!(
            payload.len() <= MAX_RECORD_LEN as usize,
            "record payload above MAX_RECORD_LEN"
        );
        kill::kill_point("store.append");
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // Torn-write injection: leave half a frame durable, then die —
        // exactly what a power cut mid-`write(2)` can leave behind.
        kill::kill_point_with("store.torn", || {
            let half = frame.len() / 2;
            let _ = self.file.write_all(&frame[..half]);
            let _ = self.file.sync_all();
        });
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.dirty += 1;
        Ok(())
    }

    /// Makes every buffered append durable with one `fsync` (the group
    /// commit boundary).
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err(&self.path, "fsync", e))?;
        self.dirty = 0;
        kill::kill_point("store.commit");
        Ok(())
    }

    /// Whole records in the journal (recovered + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Valid journal bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tut-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp_path("roundtrip.journal");
        let mut journal = Journal::create(&path, 0xFEED).expect("create");
        journal.append(b"alpha").expect("append");
        journal.append(b"beta").expect("append");
        journal.commit().expect("commit");
        assert_eq!(journal.records(), 2);
        drop(journal);

        let recovered = Journal::open(&path).expect("open");
        assert_eq!(recovered.job_hash, 0xFEED);
        assert_eq!(recovered.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(recovered.truncated_bytes, 0);

        // Appends continue after recovery.
        let mut journal = recovered.journal;
        journal.append(b"gamma").expect("append");
        journal.commit().expect("commit");
        let recovered = Journal::open(&path).expect("open");
        assert_eq!(recovered.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let path = temp_path("torn.journal");
        let mut journal = Journal::create(&path, 1).expect("create");
        journal.append(b"whole record").expect("append");
        journal.commit().expect("commit");
        let valid_len = journal.len_bytes();
        drop(journal);

        // Simulate a crash mid-write: half a frame after the good record.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&20u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 7]); // partial crc + payload
        std::fs::write(&path, &bytes).expect("write torn");

        let recovered = Journal::open(&path).expect("recovery must succeed");
        assert_eq!(recovered.records, vec![b"whole record".to_vec()]);
        assert_eq!(recovered.truncated_bytes, 11);
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            valid_len,
            "file physically truncated to the last valid record"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_corruption_drops_the_tail_not_the_journal() {
        let path = temp_path("bitflip.journal");
        let mut journal = Journal::create(&path, 2).expect("create");
        for i in 0..5u8 {
            journal.append(&[i; 16]).expect("append");
        }
        journal.commit().expect("commit");
        drop(journal);

        // Flip one payload bit inside record 2.
        let mut bytes = std::fs::read(&path).expect("read");
        let record_2_payload = HEADER_LEN as usize + 2 * (8 + 16) + 8 + 3;
        bytes[record_2_payload] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write corrupted");

        let recovered = Journal::open(&path).expect("recovery must succeed");
        assert_eq!(
            recovered.records,
            vec![vec![0u8; 16], vec![1u8; 16]],
            "records before the corruption survive; the rest is dropped"
        );
        assert!(recovered.truncated_bytes > 0);

        // The journal is usable again: refill the dropped records.
        let mut journal = recovered.journal;
        for i in 2..5u8 {
            journal.append(&[i; 16]).expect("append");
        }
        journal.commit().expect("commit");
        let recovered = Journal::open(&path).expect("open");
        assert_eq!(recovered.records.len(), 5);
        assert_eq!(recovered.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_headers_are_corrupt_not_panics() {
        let path = temp_path("header.journal");
        std::fs::write(&path, b"short").expect("write");
        assert!(matches!(
            Journal::open(&path),
            Err(StoreError::Corrupt { .. })
        ));

        std::fs::write(&path, b"NOTSTORExxxxyyyyyyyy").expect("write");
        assert!(matches!(
            Journal::open(&path),
            Err(StoreError::Corrupt { .. })
        ));

        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&99u32.to_le_bytes());
        future.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &future).expect("write");
        let err = Journal::open(&path).expect_err("future version");
        assert!(err.to_string().contains("version 99"), "{err}");

        let missing = temp_path("does-not-exist.journal");
        assert!(matches!(
            Journal::open(&missing),
            Err(StoreError::Io { op: "open", .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
