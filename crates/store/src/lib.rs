//! Durable, crash-recoverable results storage for long-running campaign
//! jobs (`explore`, `fault-sweep`).
//!
//! The paper's Figure-2 flow is iterative: architecture exploration and
//! reliability sweeps re-run the mapping/simulation loop over large
//! candidate spaces. A killed ten-hour campaign must *resume*, not
//! restart — this crate is the durability layer that makes that true,
//! built std-only like the rest of the workspace:
//!
//! * [`journal`] — an append-only, file-backed record journal:
//!   length-prefixed records, per-record CRC32, a header carrying magic /
//!   version / job hash, fsync'd commits, and torn-tail recovery that
//!   truncates to the last valid record instead of refusing to open.
//! * [`job`] — the job layer: content-addressed open (a stale journal
//!   whose job hash no longer matches degrades into a `tut-diag` warning
//!   and a fresh start, never a panic) and the in-order writer loop that
//!   workers feed through a channel, giving byte-identical journals at
//!   any thread count.
//! * [`hash`] — FNV-1a job hashing: a job is content-addressed by a
//!   stable hash of everything result-relevant (model, configuration,
//!   sweep parameters, seeds, codec version).
//! * [`kill`] — the in-tree kill-injection harness: `kill_point(site)`
//!   markers at every durability boundary, armed by tests (panic with a
//!   [`kill::StorePanic`] payload) or via the `TUT_STORE_KILL`
//!   environment variable (abort, approximating `kill -9`), driving the
//!   crash-at-every-boundary recovery property tests.
//! * [`crc`] — the CRC32 (IEEE 802.3) the journal frames carry.
//! * [`atomic`] — crash-safe whole-file replacement (write a temp file in
//!   the same directory, fsync, rename) for non-append artefacts such as
//!   `BENCH_sim.json`.
//!
//! See `DESIGN.md` §12 for the record format and the recovery rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod crc;
pub mod hash;
pub mod job;
pub mod journal;
pub mod kill;

pub use atomic::write_atomic;
pub use crc::crc32;
pub use hash::JobHasher;
pub use job::{open_job, writer_loop, JobOpen, W_STALE_JOB, W_TORN_TAIL};
pub use journal::{Journal, Recovery, StoreError};
pub use kill::{KillMode, StorePanic};
