//! Stable job hashing: a campaign job is content-addressed by an FNV-1a
//! 64-bit hash over everything result-relevant — the model text, the
//! simulation configuration, the sweep/exploration parameters, the
//! seeds, and the record-codec version. Two invocations with the same
//! inputs resolve to the same journal; any input change makes the old
//! journal *stale* (restarted from scratch with a diagnostic) instead of
//! silently resuming into wrong results.
//!
//! FNV-1a is used (not `DefaultHasher`) because the hash must be stable
//! across processes, Rust versions, and platforms — it is persisted in
//! the journal header.

/// Incremental FNV-1a 64-bit hasher with length-prefixed field framing.
#[derive(Clone, Debug)]
pub struct JobHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl JobHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> JobHasher {
        JobHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write(&value.to_le_bytes())
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, value: i64) -> &mut Self {
        self.write(&value.to_le_bytes())
    }

    /// Feeds an `f64` by bit pattern, so `-0.0` and `0.0` (or two NaNs
    /// with different payloads) hash differently — the journal cares
    /// about byte identity, not numeric equality.
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write(&value.to_bits().to_le_bytes())
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, value: &str) -> &mut Self {
        self.write_u64(value.len() as u64).write(value.as_bytes())
    }

    /// The 64-bit job hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for JobHasher {
    fn default() -> Self {
        JobHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(JobHasher::new().finish(), FNV_OFFSET);
        assert_eq!(JobHasher::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            JobHasher::new().write(b"foobar").finish(),
            0x85944171f73967e8,
        );
    }

    #[test]
    fn framing_disambiguates_field_boundaries() {
        let ab_c = JobHasher::new().write_str("ab").write_str("c").finish();
        let a_bc = JobHasher::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn floats_hash_by_bits() {
        let pos = JobHasher::new().write_f64(0.0).finish();
        let neg = JobHasher::new().write_f64(-0.0).finish();
        assert_ne!(pos, neg);
    }
}
