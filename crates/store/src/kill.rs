//! Kill injection: simulated crashes at the store's durability
//! boundaries, so recovery is *proven* by tests rather than claimed.
//!
//! The journal calls [`kill_point`] (or [`kill_point_with`]) at each
//! named site; with nothing armed the check is one relaxed atomic load.
//! Tests arm a site in-process ([`arm`], firing a [`StorePanic`] panic
//! they catch with `std::panic::catch_unwind`), and binaries honour the
//! `TUT_STORE_KILL=site:N[:abort|:panic]` environment variable
//! ([`init_from_env`]) so a shell — e.g. the `scripts/verify.sh` resume
//! smoke — can kill a real subprocess at an exact checkpoint. Abort mode
//! dies without unwinding or flushing, the closest in-process stand-in
//! for `kill -9`.
//!
//! Sites the journal exposes:
//!
//! | site | boundary |
//! |---|---|
//! | `store.append` | before any byte of a record frame is written |
//! | `store.torn`   | after *half* a record frame reached the file (a torn write) |
//! | `store.commit` | after a group commit was fsync'd durable |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How an armed kill site dies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KillMode {
    /// `panic_any(StorePanic)` — unwind, catchable in-process, used by
    /// the crash-at-every-boundary property tests.
    Panic,
    /// `std::process::abort()` — no unwinding, no buffers flushed; the
    /// subprocess equivalent of a power cut.
    Abort,
}

/// The panic payload a fired [`KillMode::Panic`] site throws; tests
/// downcast it to tell an injected crash from a genuine bug.
#[derive(Clone, Debug)]
pub struct StorePanic {
    /// The site that fired.
    pub site: String,
}

struct Armed {
    site: String,
    /// Fires on the hit that decrements this to zero.
    remaining: u64,
    mode: KillMode,
}

/// Fast-path gate: false means no site is armed and every kill point is
/// a single atomic load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

/// Arms `site` to fire on its `nth` hit (1 = the next one). Re-arming
/// replaces any previous site.
pub fn arm(site: &str, nth: u64, mode: KillMode) {
    let mut guard = ARMED.lock().expect("kill registry poisoned");
    *guard = Some(Armed {
        site: site.to_owned(),
        remaining: nth.max(1),
        mode,
    });
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarms everything (tests call this after catching a [`StorePanic`]).
pub fn disarm() {
    let mut guard = ARMED.lock().expect("kill registry poisoned");
    *guard = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Parses `TUT_STORE_KILL=site:N[:abort|:panic]` once and arms the named
/// site (default mode: abort). Binaries call this at startup; malformed
/// values are ignored rather than fatal.
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let Ok(spec) = std::env::var("TUT_STORE_KILL") else {
            return;
        };
        let mut parts = spec.split(':');
        let Some(site) = parts.next().filter(|s| !s.is_empty()) else {
            return;
        };
        let Some(nth) = parts.next().and_then(|n| n.parse::<u64>().ok()) else {
            return;
        };
        let mode = match parts.next() {
            Some("panic") => KillMode::Panic,
            _ => KillMode::Abort,
        };
        arm(site, nth, mode);
    });
}

/// A named crash site: counts one hit of `site` and dies if this hit is
/// the armed one. No-op (one atomic load) when nothing is armed.
pub fn kill_point(site: &str) {
    kill_point_with(site, || {});
}

/// [`kill_point`] that runs `before_crash` after deciding to die but
/// before dying — the journal uses this to leave a deliberately torn
/// frame on disk, simulating a crash mid-`write`.
pub fn kill_point_with(site: &str, before_crash: impl FnOnce()) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let mode = {
        let mut guard = ARMED.lock().expect("kill registry poisoned");
        let Some(armed) = guard.as_mut() else { return };
        if armed.site != site {
            return;
        }
        armed.remaining -= 1;
        if armed.remaining > 0 {
            return;
        }
        let mode = armed.mode;
        *guard = None;
        ACTIVE.store(false, Ordering::SeqCst);
        mode
    };
    before_crash();
    eprintln!("[tut-store] injected kill at `{site}` ({mode:?})");
    match mode {
        KillMode::Abort => std::process::abort(),
        KillMode::Panic => std::panic::panic_any(StorePanic {
            site: site.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so keep every scenario in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn arming_counts_hits_and_fires_a_catchable_panic() {
        disarm();
        kill_point("store.commit"); // disarmed: no-op

        arm("store.commit", 3, KillMode::Panic);
        kill_point("store.append"); // wrong site: not counted
        kill_point("store.commit");
        kill_point("store.commit");
        let caught = std::panic::catch_unwind(|| kill_point("store.commit"))
            .expect_err("third hit must fire");
        let payload = caught
            .downcast::<StorePanic>()
            .expect("payload is StorePanic");
        assert_eq!(payload.site, "store.commit");

        // Firing disarms: the next hit is free.
        kill_point("store.commit");

        // The pre-crash hook runs exactly on the firing hit.
        let mut ran = 0;
        arm("store.torn", 2, KillMode::Panic);
        kill_point_with("store.torn", || ran += 1);
        assert_eq!(ran, 0, "non-firing hit must not run the hook");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kill_point_with("store.torn", || ran += 1)
        }))
        .expect_err("second hit fires");
        assert!(err.downcast::<StorePanic>().is_ok());
        assert_eq!(ran, 1, "firing hit runs the hook before dying");
        disarm();
    }
}
