//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! per-record checksum of the journal frames. Table-driven, with the
//! table built at compile time so the hot path is one lookup per byte.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (initial value `0xFFFF_FFFF`, final XOR) — the
/// standard zlib/PNG/Ethernet checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_vector() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"tut-store");
        let mut flipped = b"tut-store".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped), "single bit flip must change the CRC");
    }
}
