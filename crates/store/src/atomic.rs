//! Crash-safe whole-file replacement for non-append artefacts.
//!
//! A plain `std::fs::write` over an existing file can leave a truncated
//! or interleaved mess if the process dies mid-write. [`write_atomic`]
//! instead writes a temporary file *in the same directory* (so the
//! rename cannot cross filesystems), fsyncs it, and renames it over the
//! destination — POSIX rename is atomic, so readers only ever observe
//! the old bytes or the new bytes, never a tear. The directory is
//! fsync'd afterwards on a best-effort basis so the rename itself is
//! durable.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `bytes` via a same-directory
/// temporary file and rename.
///
/// # Errors
///
/// Any I/O failure from creating, writing, syncing, or renaming the
/// temporary file; on failure the destination is untouched and the
/// temporary file is removed on a best-effort basis.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            // Make the rename durable; failure to sync the directory is
            // not worth failing the write over (some filesystems refuse).
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_contents_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("tut-store-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("artefact.json");

        write_atomic(&path, b"{\"v\":1}").expect("first write");
        assert_eq!(std::fs::read(&path).expect("read"), b"{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").expect("replace");
        assert_eq!(std::fs::read(&path).expect("read"), b"{\"v\":2}");

        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
