//! The job layer: content-addressed journal open and the in-order
//! writer loop that makes journals byte-identical at any thread count.
//!
//! [`open_job`] resolves a journal path + job hash to either a resumed
//! journal (replaying every completed record) or a fresh one. The
//! degradation rules never panic:
//!
//! * no journal on disk, or `resume == false` → fresh start;
//! * journal matches the job hash → resume, with a [`W_TORN_TAIL`]
//!   warning when a torn tail had to be truncated;
//! * hash mismatch or corrupt header → the journal is *stale*: restart
//!   from scratch with a [`W_STALE_JOB`] warning.
//!
//! [`writer_loop`] is the single-writer half of the checkpoint pipeline:
//! parallel workers send `(index, payload)` pairs over an `mpsc` channel
//! and the loop writes them to the journal *strictly in index order*
//! (buffering out-of-order arrivals), group-committing each drained
//! batch with one fsync. Because records land in index order, the
//! completed set on disk is always a prefix of the work list — which is
//! what makes a resumed run bit-identical to an uninterrupted one no
//! matter how many threads raced on the original attempt.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::mpsc::Receiver;

use tut_diag::Diagnostic;

use crate::journal::{Journal, Recovery, StoreError};

/// Diagnostic code: a journal exists but belongs to a different job
/// (hash mismatch) or is not readable as a journal at all — the job
/// restarts from scratch.
pub const W_STALE_JOB: &str = "W0501";

/// Diagnostic code: a torn tail (partial record frame) was truncated
/// during recovery; completed records are unaffected.
pub const W_TORN_TAIL: &str = "W0502";

/// The result of [`open_job`]: a journal ready for appending, plus what
/// was replayed from it.
#[derive(Debug)]
pub struct JobOpen {
    /// The journal, positioned for append.
    pub journal: Journal,
    /// Replayed record payloads (empty on a fresh start), in append
    /// order — always a prefix of the job's work list.
    pub records: Vec<Vec<u8>>,
    /// True when `records` came from an existing journal rather than a
    /// fresh file.
    pub resumed: bool,
    /// Recovery findings (stale restart, torn-tail truncation), for the
    /// caller to render through its diagnostic sink.
    pub warnings: Vec<Diagnostic>,
}

/// Opens the journal for a job content-addressed by `job_hash`.
///
/// With `resume == false` any existing journal is overwritten. With
/// `resume == true` a matching journal is replayed; a stale or corrupt
/// one degrades to a fresh start with a [`W_STALE_JOB`] warning.
///
/// # Errors
///
/// Only genuine filesystem failures ([`StoreError::Io`]) are errors;
/// every corruption shape is handled by degradation.
pub fn open_job(path: &Path, job_hash: u64, resume: bool) -> Result<JobOpen, StoreError> {
    let fresh = |warnings: Vec<Diagnostic>| -> Result<JobOpen, StoreError> {
        Ok(JobOpen {
            journal: Journal::create(path, job_hash)?,
            records: Vec::new(),
            resumed: false,
            warnings,
        })
    };
    if !resume || !path.exists() {
        return fresh(Vec::new());
    }
    match Journal::open(path) {
        Ok(Recovery {
            journal,
            job_hash: found,
            records,
            truncated_bytes,
        }) => {
            if found != job_hash {
                return fresh(vec![Diagnostic::warning(
                    W_STALE_JOB,
                    "journal belongs to a different job; restarting from scratch",
                )
                .with_element(path.display().to_string())
                .with_note(format!(
                    "journal job hash {found:#018x}, this job hashes to {job_hash:#018x}"
                ))
                .with_help(
                    "the model, configuration, or seeds changed since the journal was written",
                )]);
            }
            let mut warnings = Vec::new();
            if truncated_bytes > 0 {
                warnings.push(
                    Diagnostic::warning(
                        W_TORN_TAIL,
                        "journal had a torn tail; truncated to the last valid record",
                    )
                    .with_element(path.display().to_string())
                    .with_note(format!(
                        "dropped {truncated_bytes} trailing byte(s) after {} whole record(s)",
                        records.len()
                    )),
                );
            }
            Ok(JobOpen {
                journal,
                records,
                resumed: true,
                warnings,
            })
        }
        Err(StoreError::Corrupt { reason, .. }) => fresh(vec![Diagnostic::warning(
            W_STALE_JOB,
            "journal is corrupt; restarting from scratch",
        )
        .with_element(path.display().to_string())
        .with_note(reason)]),
        Err(other) => Err(other),
    }
}

/// Drains `(index, payload)` checkpoints from `rx` into `journal`,
/// writing strictly in index order starting at `start_index` and
/// group-committing each drained batch with one fsync.
///
/// Out-of-order arrivals are buffered until their predecessors land, so
/// the journal's record sequence — and therefore its bytes — do not
/// depend on worker scheduling. Returns the next expected index (i.e.
/// `start_index` + records written) once every sender hung up.
///
/// # Errors
///
/// Propagates the first journal append/commit failure. Duplicate or
/// below-`start_index` indices are ignored (a resumed worker re-sending
/// a finished checkpoint is harmless).
pub fn writer_loop(
    journal: &mut Journal,
    start_index: u64,
    rx: &Receiver<(u64, Vec<u8>)>,
) -> Result<u64, StoreError> {
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut next = start_index;
    while let Ok((index, payload)) = rx.recv() {
        if index >= next {
            pending.insert(index, payload);
        }
        // Drain whatever else is already queued so the whole batch
        // shares one commit.
        while let Ok((index, payload)) = rx.try_recv() {
            if index >= next {
                pending.insert(index, payload);
            }
        }
        let mut wrote = false;
        while let Some(payload) = pending.remove(&next) {
            journal.append(&payload)?;
            next += 1;
            wrote = true;
        }
        if wrote {
            journal.commit()?;
        }
    }
    // Senders are gone; anything still pending is out of order relative
    // to a gap that will never fill (a worker died mid-item). Leaving it
    // unwritten keeps the on-disk prefix property.
    Ok(next)
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::mpsc;

    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tut-store-job-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn fresh_resume_and_stale_degradation() {
        let path = temp_path("job.journal");
        std::fs::remove_file(&path).ok();

        // No journal: fresh, no warnings, even with resume requested.
        let open = open_job(&path, 7, true).expect("open");
        assert!(!open.resumed);
        assert!(open.records.is_empty() && open.warnings.is_empty());
        let mut journal = open.journal;
        journal.append(b"one").expect("append");
        journal.commit().expect("commit");
        drop(journal);

        // Same hash + resume: replayed.
        let open = open_job(&path, 7, true).expect("open");
        assert!(open.resumed);
        assert_eq!(open.records, vec![b"one".to_vec()]);

        // Same hash, resume declined: truncated fresh.
        let open = open_job(&path, 7, false).expect("open");
        assert!(!open.resumed && open.records.is_empty());
        drop(open);

        // Rebuild a record, then change the job hash: stale restart.
        let open = open_job(&path, 7, true).expect("open");
        let mut journal = open.journal;
        journal.append(b"one").expect("append");
        journal.commit().expect("commit");
        drop(journal);
        let open = open_job(&path, 8, true).expect("open");
        assert!(!open.resumed && open.records.is_empty());
        assert_eq!(open.warnings.len(), 1);
        assert_eq!(open.warnings[0].code, W_STALE_JOB);

        // Corrupt header: stale restart, not an error.
        std::fs::write(&path, b"garbage").expect("write");
        let open = open_job(&path, 8, true).expect("open");
        assert!(!open.resumed);
        assert_eq!(open.warnings[0].code, W_STALE_JOB);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_resume_warns_with_w0502() {
        let path = temp_path("torn-job.journal");
        std::fs::remove_file(&path).ok();
        let open = open_job(&path, 3, false).expect("open");
        let mut journal = open.journal;
        journal.append(b"kept").expect("append");
        journal.commit().expect("commit");
        drop(journal);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]); // partial frame
        std::fs::write(&path, &bytes).expect("write");

        let open = open_job(&path, 3, true).expect("open");
        assert!(open.resumed);
        assert_eq!(open.records, vec![b"kept".to_vec()]);
        assert_eq!(open.warnings.len(), 1);
        assert_eq!(open.warnings[0].code, W_TORN_TAIL);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_loop_orders_out_of_order_checkpoints() {
        let path = temp_path("writer.journal");
        std::fs::remove_file(&path).ok();
        let open = open_job(&path, 11, false).expect("open");
        let mut journal = open.journal;

        let (tx, rx) = mpsc::channel::<(u64, Vec<u8>)>();
        // Deliberately scrambled worker completion order, plus a
        // duplicate of an already-started index.
        for index in [2u64, 0, 3, 1, 0, 4] {
            tx.send((index, vec![index as u8; 4])).expect("send");
        }
        drop(tx);
        let next = writer_loop(&mut journal, 0, &rx).expect("writer loop");
        assert_eq!(next, 5);
        drop(journal);

        let open = open_job(&path, 11, true).expect("open");
        let expected: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
        assert_eq!(open.records, expected, "records land in index order");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_loop_holds_back_records_after_a_gap() {
        let path = temp_path("gap.journal");
        std::fs::remove_file(&path).ok();
        let open = open_job(&path, 12, false).expect("open");
        let mut journal = open.journal;
        let (tx, rx) = mpsc::channel::<(u64, Vec<u8>)>();
        // Index 1 never arrives (its worker "died").
        tx.send((0, b"zero".to_vec())).expect("send");
        tx.send((2, b"two".to_vec())).expect("send");
        drop(tx);
        let next = writer_loop(&mut journal, 0, &rx).expect("writer loop");
        assert_eq!(next, 1, "only the contiguous prefix is durable");
        drop(journal);
        let open = open_job(&path, 12, true).expect("open");
        assert_eq!(open.records, vec![b"zero".to_vec()]);
        std::fs::remove_file(&path).ok();
    }
}
