//! The paper's case study: the **TUTMAC** WLAN MAC protocol on the
//! **TUTWLAN** terminal platform (§4 of the paper).
//!
//! [`build_tutmac_system`] constructs the complete [`SystemModel`]:
//!
//! * **Application** (Figures 4–5): the `Tutmac_Protocol` top-level class
//!   with the functional components `Management`, `RadioManagement`, and
//!   `RadioChannelAccess` and the structural components `UserInterface`
//!   (containing the `msduRec` / `msduDel` processes) and
//!   `DataProcessing` (containing `frag`, `defrag`, and `crc`), all wired
//!   with ports and connectors including delegation through the
//!   structural-component boundaries.
//! * **Behaviour**: each functional component is an asynchronous EFSM —
//!   MSDU fragmentation with a byte-queue backlog, CRC-32 generation and
//!   checking, stop-and-wait ARQ with ack timeout and bounded
//!   retransmission, periodic beaconing, and link-quality estimation.
//! * **Environment**: `user` (traffic source/sink) and `channel` (radio
//!   channel with deterministic loss and remote-terminal traffic) are
//!   modelled as ungrouped processes — they appear as the paper's
//!   `Environment` row with zero execution cycles. (The paper keeps the
//!   environment outside the UML model in TAU; we put it inside the
//!   top-level structure, which changes nothing observable.)
//! * **Grouping** (Figure 6): `group1` = {rca, mng, rmng}, `group2` =
//!   {ui.msduRec, ui.msduDel}, `group3` = {dp.frag, dp.defrag},
//!   `group4` = {dp.crc} (hardware type).
//! * **Platform** (Figure 7): three Nios-class processors and a CRC-32
//!   accelerator on two HIBI segments joined by a bridge segment.
//! * **Mapping** (Figure 8): group1 and group3 → processor1, group2 →
//!   processor2, group4 → accelerator1; processor3 is the spare the
//!   exploration tools may use.
//!
//! # Example
//!
//! ```
//! use tutmac::{build_tutmac_system, TutmacConfig};
//!
//! let system = build_tutmac_system(&TutmacConfig::default())?;
//! assert!(system.validate_errors().is_empty());
//! # Ok::<(), tutmac::BuildTutmacError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod config;
pub mod model;
pub mod platform_model;
pub mod signals;

pub use config::TutmacConfig;
pub use model::{build_tutmac_system, BuildTutmacError, TutmacHandles};
pub use tut_profile::SystemModel;
