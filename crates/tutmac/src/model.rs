//! Assembly of the TUTMAC application model (Figures 4–6) and the full
//! system (application + platform + mapping).

use tut_profile::application::ProcessType;
use tut_profile::SystemModel;
use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, PropertyId};
use tut_uml::model::ConnectorEnd;

use crate::behavior;
use crate::config::TutmacConfig;
use crate::platform_model;
use crate::signals::Signals;

/// Errors while building the case study.
#[derive(Clone, PartialEq, Debug)]
pub struct BuildTutmacError(pub String);

impl std::fmt::Display for BuildTutmacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build the tutmac system: {}", self.0)
    }
}

impl std::error::Error for BuildTutmacError {}

impl From<tut_profile_core::ProfileError> for BuildTutmacError {
    fn from(err: tut_profile_core::ProfileError) -> Self {
        BuildTutmacError(err.to_string())
    }
}

/// Handles into the built system, used by tests, benches, and the
/// exploration tools.
#[derive(Clone, PartialEq, Debug)]
pub struct TutmacHandles {
    /// The signal alphabet.
    pub signals: Signals,
    /// The `Tutmac_Protocol` top-level class.
    pub protocol: ClassId,
    /// The process parts: (dotted display name, part id).
    pub processes: Vec<(String, PropertyId)>,
    /// The four process groups of Figure 6.
    pub groups: [ClassId; 4],
    /// Platform instances: processor1..3 and accelerator1 (Figure 7).
    pub processors: [PropertyId; 3],
    /// The CRC accelerator instance.
    pub accelerator: PropertyId,
}

/// Builds the complete TUTMAC/TUTWLAN system: application, behaviours,
/// grouping, platform, and mapping. See the crate-level docs for the map
/// to the paper's figures.
///
/// # Errors
///
/// Returns [`BuildTutmacError`] if any profile application fails (which
/// would indicate a bug in this builder).
pub fn build_tutmac_system(config: &TutmacConfig) -> Result<SystemModel, BuildTutmacError> {
    Ok(build_with_handles(config)?.0)
}

/// Like [`build_tutmac_system`], also returning the element handles.
///
/// # Errors
///
/// As [`build_tutmac_system`].
pub fn build_with_handles(
    config: &TutmacConfig,
) -> Result<(SystemModel, TutmacHandles), BuildTutmacError> {
    let mut s = SystemModel::new("TUTMAC");
    let pkg = s.model.add_package("Tutmac");
    let signals = Signals::declare(&mut s.model);

    // ---- Classes (Figure 4) --------------------------------------------
    let protocol = s.model.add_class_in(Some(pkg), "Tutmac_Protocol");
    s.apply_with(
        protocol,
        |t| t.application,
        [
            ("Priority", TagValue::Int(1)),
            ("CodeMemory", TagValue::Int(96 * 1024)),
            ("DataMemory", TagValue::Int(64 * 1024)),
            ("RealTimeType", TagValue::Enum("soft".into())),
        ],
    )?;

    // Structural components (no behaviour, composite structure only).
    let user_interface = s.model.add_class_in(Some(pkg), "UserInterface");
    let data_processing = s.model.add_class_in(Some(pkg), "DataProcessing");

    // Functional components.
    let functional = |s: &mut SystemModel,
                      name: &str,
                      code: i64,
                      data: i64|
     -> Result<ClassId, BuildTutmacError> {
        let class = s.model.add_class_in(Some(pkg), name);
        s.apply_with(
            class,
            |t| t.application_component,
            [
                ("CodeMemory", TagValue::Int(code)),
                ("DataMemory", TagValue::Int(data)),
                ("RealTimeType", TagValue::Enum("soft".into())),
            ],
        )?;
        Ok(class)
    };
    let management = functional(&mut s, "Management", 12 * 1024, 4 * 1024)?;
    let radio_management = functional(&mut s, "RadioManagement", 10 * 1024, 4 * 1024)?;
    let radio_channel_access = functional(&mut s, "RadioChannelAccess", 24 * 1024, 8 * 1024)?;
    let msdu_rec_class = functional(&mut s, "MsduReception", 6 * 1024, 8 * 1024)?;
    let msdu_del_class = functional(&mut s, "MsduDelivery", 6 * 1024, 8 * 1024)?;
    let frag_class = functional(&mut s, "Fragmentation", 8 * 1024, 16 * 1024)?;
    let defrag_class = functional(&mut s, "Defragmentation", 8 * 1024, 16 * 1024)?;
    let crc_class = functional(&mut s, "CrcProcessing", 2 * 1024, 1024)?;
    let user_class = functional(&mut s, "UserEnvironment", 0, 0)?;
    let channel_class = functional(&mut s, "RadioChannel", 0, 0)?;

    // ---- Ports ----------------------------------------------------------
    // msduRec
    let rec_user = s.model.add_port(msdu_rec_class, "pUser");
    let rec_dp = s.model.add_port(msdu_rec_class, "pDp");
    s.model.port_mut(rec_user).add_provided(signals.msdu_req);
    s.model.port_mut(rec_dp).add_required(signals.msdu);
    // msduDel
    let del_dp = s.model.add_port(msdu_del_class, "pDp");
    let del_user = s.model.add_port(msdu_del_class, "pUser");
    s.model.port_mut(del_dp).add_provided(signals.msdu_out);
    s.model.port_mut(del_user).add_required(signals.msdu_ind);
    // frag
    let frag_in = s.model.add_port(frag_class, "pIn");
    let frag_crc = s.model.add_port(frag_class, "pCrc");
    s.model.port_mut(frag_in).add_provided(signals.msdu);
    s.model.port_mut(frag_in).add_provided(signals.pdu_done);
    s.model.port_mut(frag_crc).add_required(signals.tx_pdu);
    // defrag
    let defrag_in = s.model.add_port(defrag_class, "pIn");
    let defrag_out = s.model.add_port(defrag_class, "pOut");
    s.model.port_mut(defrag_in).add_provided(signals.rx_pdu);
    s.model.port_mut(defrag_out).add_required(signals.msdu_out);
    // crc
    let crc_in = s.model.add_port(crc_class, "pIn");
    let crc_out = s.model.add_port(crc_class, "pOut");
    s.model.port_mut(crc_in).add_provided(signals.tx_pdu);
    s.model.port_mut(crc_in).add_provided(signals.rx_frame);
    s.model.port_mut(crc_out).add_required(signals.tx_frame);
    s.model.port_mut(crc_out).add_required(signals.rx_pdu);
    // mng
    let mng_rca = s.model.add_port(management, "pRca");
    s.model.port_mut(mng_rca).add_required(signals.beacon_req);
    // rmng
    let rmng_phy = s.model.add_port(radio_management, "pPhy");
    s.model.port_mut(rmng_phy).add_provided(signals.quality_ind);
    // rca
    let rca_dp = s.model.add_port(radio_channel_access, "pDp");
    let rca_mng = s.model.add_port(radio_channel_access, "pMng");
    let rca_phy = s.model.add_port(radio_channel_access, "pPhy");
    s.model.port_mut(rca_dp).add_provided(signals.tx_frame);
    s.model.port_mut(rca_dp).add_required(signals.rx_frame);
    s.model.port_mut(rca_dp).add_required(signals.pdu_done);
    s.model.port_mut(rca_mng).add_provided(signals.beacon_req);
    s.model.port_mut(rca_phy).add_required(signals.air_frame);
    s.model.port_mut(rca_phy).add_provided(signals.air_rx);
    s.model.port_mut(rca_phy).add_provided(signals.ack);
    // user (environment)
    let user_ui = s.model.add_port(user_class, "pUi");
    s.model.port_mut(user_ui).add_required(signals.msdu_req);
    s.model.port_mut(user_ui).add_provided(signals.msdu_ind);
    // channel (environment)
    let chan_rca = s.model.add_port(channel_class, "pRca");
    let chan_rmng = s.model.add_port(channel_class, "pRmng");
    s.model.port_mut(chan_rca).add_provided(signals.air_frame);
    s.model.port_mut(chan_rca).add_required(signals.air_rx);
    s.model.port_mut(chan_rca).add_required(signals.ack);
    s.model
        .port_mut(chan_rmng)
        .add_required(signals.quality_ind);

    // Boundary ports of the structural components.
    let ui_user = s.model.add_port(user_interface, "pUser");
    let ui_dp = s.model.add_port(user_interface, "pDp");
    s.model.port_mut(ui_user).add_provided(signals.msdu_req);
    s.model.port_mut(ui_user).add_required(signals.msdu_ind);
    s.model.port_mut(ui_dp).add_required(signals.msdu);
    s.model.port_mut(ui_dp).add_provided(signals.msdu_out);

    let dp_ui = s.model.add_port(data_processing, "pUi");
    let dp_rca = s.model.add_port(data_processing, "pRca");
    s.model.port_mut(dp_ui).add_provided(signals.msdu);
    s.model.port_mut(dp_ui).add_required(signals.msdu_out);
    s.model.port_mut(dp_rca).add_required(signals.tx_frame);
    s.model.port_mut(dp_rca).add_provided(signals.rx_frame);
    s.model.port_mut(dp_rca).add_provided(signals.pdu_done);

    // ---- Behaviours ------------------------------------------------------
    s.model
        .add_state_machine(msdu_rec_class, behavior::msdu_rec(config, &signals));
    s.model
        .add_state_machine(msdu_del_class, behavior::msdu_del(config, &signals));
    s.model
        .add_state_machine(frag_class, behavior::frag(config, &signals));
    s.model
        .add_state_machine(defrag_class, behavior::defrag(config, &signals));
    s.model
        .add_state_machine(crc_class, behavior::crc(config, &signals));
    s.model
        .add_state_machine(radio_channel_access, behavior::rca(config, &signals));
    s.model
        .add_state_machine(management, behavior::mng(config, &signals));
    s.model
        .add_state_machine(radio_management, behavior::rmng(config, &signals));
    s.model
        .add_state_machine(user_class, behavior::user(config, &signals));
    s.model
        .add_state_machine(channel_class, behavior::channel(config, &signals));

    // ---- Composite structure (Figure 5) ----------------------------------
    // Parts inside the structural components.
    let msdu_rec_part = s.model.add_part(user_interface, "msduRec", msdu_rec_class);
    let msdu_del_part = s.model.add_part(user_interface, "msduDel", msdu_del_class);
    let frag_part = s.model.add_part(data_processing, "frag", frag_class);
    let defrag_part = s.model.add_part(data_processing, "defrag", defrag_class);
    let crc_part = s.model.add_part(data_processing, "crc", crc_class);

    // Parts of the top-level protocol class.
    let ui_part = s.model.add_part(protocol, "ui", user_interface);
    let dp_part = s.model.add_part(protocol, "dp", data_processing);
    let mng_part = s.model.add_part(protocol, "mng", management);
    let rmng_part = s.model.add_part(protocol, "rmng", radio_management);
    let rca_part = s.model.add_part(protocol, "rca", radio_channel_access);
    let user_part = s.model.add_part(protocol, "user", user_class);
    let channel_part = s.model.add_part(protocol, "channel", channel_class);

    // Stereotype the process instances (Figure 5: «ApplicationProcess»).
    let process = |s: &mut SystemModel,
                   part: PropertyId,
                   priority: i64,
                   kind: &str|
     -> Result<(), BuildTutmacError> {
        s.apply_with(
            part,
            |t| t.application_process,
            [
                ("Priority", TagValue::Int(priority)),
                ("ProcessType", TagValue::Enum(kind.into())),
            ],
        )?;
        Ok(())
    };
    process(&mut s, mng_part, 2, "general")?;
    process(&mut s, rmng_part, 1, "dsp")?;
    process(&mut s, rca_part, 3, "general")?;
    process(&mut s, msdu_rec_part, 1, "general")?;
    process(&mut s, msdu_del_part, 1, "general")?;
    process(&mut s, frag_part, 2, "general")?;
    process(&mut s, defrag_part, 1, "general")?;
    process(&mut s, crc_part, 1, "hardware")?;
    // user / channel stay unstereotyped-by-group: they are environment
    // processes, but are still «ApplicationProcess» parts.
    process(&mut s, user_part, 0, "general")?;
    process(&mut s, channel_part, 0, "general")?;

    // Delegation connectors inside UserInterface.
    let conn = |s: &mut SystemModel, owner, name: &str, a, b| {
        s.model.add_connector(owner, name, a, b);
    };
    conn(
        &mut s,
        user_interface,
        "uToRec",
        ConnectorEnd {
            part: None,
            port: ui_user,
        },
        ConnectorEnd {
            part: Some(msdu_rec_part),
            port: rec_user,
        },
    );
    conn(
        &mut s,
        user_interface,
        "delToU",
        ConnectorEnd {
            part: None,
            port: ui_user,
        },
        ConnectorEnd {
            part: Some(msdu_del_part),
            port: del_user,
        },
    );
    conn(
        &mut s,
        user_interface,
        "recToDp",
        ConnectorEnd {
            part: None,
            port: ui_dp,
        },
        ConnectorEnd {
            part: Some(msdu_rec_part),
            port: rec_dp,
        },
    );
    conn(
        &mut s,
        user_interface,
        "dpToDel",
        ConnectorEnd {
            part: None,
            port: ui_dp,
        },
        ConnectorEnd {
            part: Some(msdu_del_part),
            port: del_dp,
        },
    );

    // Delegation connectors inside DataProcessing.
    conn(
        &mut s,
        data_processing,
        "uiToFrag",
        ConnectorEnd {
            part: None,
            port: dp_ui,
        },
        ConnectorEnd {
            part: Some(frag_part),
            port: frag_in,
        },
    );
    conn(
        &mut s,
        data_processing,
        "defragToUi",
        ConnectorEnd {
            part: None,
            port: dp_ui,
        },
        ConnectorEnd {
            part: Some(defrag_part),
            port: defrag_out,
        },
    );
    conn(
        &mut s,
        data_processing,
        "rcaToFrag",
        ConnectorEnd {
            part: None,
            port: dp_rca,
        },
        ConnectorEnd {
            part: Some(frag_part),
            port: frag_in,
        },
    );
    conn(
        &mut s,
        data_processing,
        "rcaToCrc",
        ConnectorEnd {
            part: None,
            port: dp_rca,
        },
        ConnectorEnd {
            part: Some(crc_part),
            port: crc_in,
        },
    );
    conn(
        &mut s,
        data_processing,
        "crcToRca",
        ConnectorEnd {
            part: None,
            port: dp_rca,
        },
        ConnectorEnd {
            part: Some(crc_part),
            port: crc_out,
        },
    );
    // Assembly connectors inside DataProcessing.
    conn(
        &mut s,
        data_processing,
        "fragToCrc",
        ConnectorEnd {
            part: Some(frag_part),
            port: frag_crc,
        },
        ConnectorEnd {
            part: Some(crc_part),
            port: crc_in,
        },
    );
    conn(
        &mut s,
        data_processing,
        "crcToDefrag",
        ConnectorEnd {
            part: Some(crc_part),
            port: crc_out,
        },
        ConnectorEnd {
            part: Some(defrag_part),
            port: defrag_in,
        },
    );

    // Top-level connectors (Figure 5).
    conn(
        &mut s,
        protocol,
        "userToUi",
        ConnectorEnd {
            part: Some(user_part),
            port: user_ui,
        },
        ConnectorEnd {
            part: Some(ui_part),
            port: ui_user,
        },
    );
    conn(
        &mut s,
        protocol,
        "uiToDp",
        ConnectorEnd {
            part: Some(ui_part),
            port: ui_dp,
        },
        ConnectorEnd {
            part: Some(dp_part),
            port: dp_ui,
        },
    );
    conn(
        &mut s,
        protocol,
        "dpToRca",
        ConnectorEnd {
            part: Some(dp_part),
            port: dp_rca,
        },
        ConnectorEnd {
            part: Some(rca_part),
            port: rca_dp,
        },
    );
    conn(
        &mut s,
        protocol,
        "mngToRca",
        ConnectorEnd {
            part: Some(mng_part),
            port: mng_rca,
        },
        ConnectorEnd {
            part: Some(rca_part),
            port: rca_mng,
        },
    );
    conn(
        &mut s,
        protocol,
        "rcaToPhy",
        ConnectorEnd {
            part: Some(rca_part),
            port: rca_phy,
        },
        ConnectorEnd {
            part: Some(channel_part),
            port: chan_rca,
        },
    );
    conn(
        &mut s,
        protocol,
        "chanToRmng",
        ConnectorEnd {
            part: Some(channel_part),
            port: chan_rmng,
        },
        ConnectorEnd {
            part: Some(rmng_part),
            port: rmng_phy,
        },
    );

    // ---- Process grouping (Figure 6) --------------------------------------
    let group1 = s.add_process_group("group1", false, ProcessType::General);
    let group2 = s.add_process_group("group2", false, ProcessType::General);
    let group3 = s.add_process_group("group3", false, ProcessType::General);
    let group4 = s.add_process_group("group4", true, ProcessType::Hardware);
    s.assign_to_group(rca_part, group1);
    s.assign_to_group(mng_part, group1);
    s.assign_to_group(rmng_part, group1);
    s.assign_to_group(msdu_rec_part, group2);
    s.assign_to_group(msdu_del_part, group2);
    s.assign_to_group(frag_part, group3);
    s.assign_to_group(defrag_part, group3);
    s.assign_to_group(crc_part, group4);
    // user/channel stay ungrouped: the Environment.

    // ---- Platform (Figure 7) + mapping (Figure 8) -------------------------
    let platform = platform_model::build_tutwlan_platform(&mut s)?;
    s.map_group(group1, platform.processors[0], false);
    s.map_group(group3, platform.processors[0], false);
    s.map_group(group2, platform.processors[1], false);
    s.map_group(group4, platform.accelerator, true);

    let handles = TutmacHandles {
        signals,
        protocol,
        processes: vec![
            ("ui.msduRec".into(), msdu_rec_part),
            ("ui.msduDel".into(), msdu_del_part),
            ("dp.frag".into(), frag_part),
            ("dp.defrag".into(), defrag_part),
            ("dp.crc".into(), crc_part),
            ("mng".into(), mng_part),
            ("rmng".into(), rmng_part),
            ("rca".into(), rca_part),
            ("user".into(), user_part),
            ("channel".into(), channel_part),
        ],
        groups: [group1, group2, group3, group4],
        processors: platform.processors,
        accelerator: platform.accelerator,
    };
    Ok((s, handles))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_builds_and_validates() {
        let system = build_tutmac_system(&TutmacConfig::default()).unwrap();
        let errors = system.validate_errors();
        assert!(errors.is_empty(), "validation errors: {errors:#?}");
    }

    #[test]
    fn figure6_grouping_is_reproduced() {
        let (system, handles) = build_with_handles(&TutmacConfig::default()).unwrap();
        let app = system.application();
        let find = |name: &str| {
            handles
                .processes
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert_eq!(app.group_of(find("rca")), Some(handles.groups[0]));
        assert_eq!(app.group_of(find("mng")), Some(handles.groups[0]));
        assert_eq!(app.group_of(find("rmng")), Some(handles.groups[0]));
        assert_eq!(app.group_of(find("ui.msduRec")), Some(handles.groups[1]));
        assert_eq!(app.group_of(find("dp.frag")), Some(handles.groups[2]));
        assert_eq!(app.group_of(find("dp.crc")), Some(handles.groups[3]));
        assert_eq!(app.group_of(find("user")), None, "environment");
        assert_eq!(app.group_of(find("channel")), None, "environment");
    }

    #[test]
    fn figure8_mapping_is_reproduced() {
        let (system, handles) = build_with_handles(&TutmacConfig::default()).unwrap();
        let mapping = system.mapping();
        assert_eq!(
            mapping.instance_of(handles.groups[0]),
            Some(handles.processors[0])
        );
        assert_eq!(
            mapping.instance_of(handles.groups[2]),
            Some(handles.processors[0]),
            "group1 and group3 share processor1 (Figure 8)"
        );
        assert_eq!(
            mapping.instance_of(handles.groups[1]),
            Some(handles.processors[1])
        );
        assert_eq!(
            mapping.instance_of(handles.groups[3]),
            Some(handles.accelerator)
        );
        // processor3 is the unmapped spare.
        assert!(mapping.groups_on(handles.processors[2]).is_empty());
    }

    #[test]
    fn routing_resolves_the_tx_path() {
        use tut_uml::instances::{InstanceTree, RoutingTable};
        let (system, handles) = build_with_handles(&TutmacConfig::default()).unwrap();
        let tree = InstanceTree::build(&system.model, handles.protocol).unwrap();
        let table = RoutingTable::build(&system.model, &tree);

        // user -> msduRec
        let user_class = system.model.find_class("UserEnvironment").unwrap();
        let user_port = system.model.find_port(user_class, "pUi").unwrap();
        let user_index = tree
            .nodes()
            .iter()
            .position(|n| n.class == user_class)
            .unwrap();
        let receivers = table.receivers(user_index, user_port, handles.signals.msdu_req);
        assert_eq!(receivers.len(), 1);
        assert_eq!(
            tree.display_name(&system.model, receivers[0].instance),
            "ui.msduRec"
        );

        // msduRec -> frag crosses two structural boundaries.
        let rec_class = system.model.find_class("MsduReception").unwrap();
        let rec_port = system.model.find_port(rec_class, "pDp").unwrap();
        let rec_index = tree
            .nodes()
            .iter()
            .position(|n| n.class == rec_class)
            .unwrap();
        let receivers = table.receivers(rec_index, rec_port, handles.signals.msdu);
        assert_eq!(receivers.len(), 1);
        assert_eq!(
            tree.display_name(&system.model, receivers[0].instance),
            "dp.frag"
        );

        // crc -> rca (outbound through the dp boundary).
        let crc_class = system.model.find_class("CrcProcessing").unwrap();
        let crc_port = system.model.find_port(crc_class, "pOut").unwrap();
        let crc_index = tree
            .nodes()
            .iter()
            .position(|n| n.class == crc_class)
            .unwrap();
        let receivers = table.receivers(crc_index, crc_port, handles.signals.tx_frame);
        assert_eq!(receivers.len(), 1);
        assert_eq!(
            tree.display_name(&system.model, receivers[0].instance),
            "rca"
        );
        // crc -> defrag stays inside dp.
        let receivers = table.receivers(crc_index, crc_port, handles.signals.rx_pdu);
        assert_eq!(receivers.len(), 1);
        assert_eq!(
            tree.display_name(&system.model, receivers[0].instance),
            "dp.defrag"
        );
    }

    #[test]
    fn xml_round_trip_of_the_full_case_study() {
        let system = build_tutmac_system(&TutmacConfig::default()).unwrap();
        let xml = system.to_xml();
        let parsed = SystemModel::from_xml(&xml).unwrap();
        assert_eq!(parsed.model, system.model);
        assert_eq!(parsed.apps, system.apps);
    }
}
