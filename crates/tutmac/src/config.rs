//! Case-study parameters: traffic shape, protocol constants, and the
//! workload-calibration knobs.

/// All tunables of the TUTMAC case study. The defaults are calibrated so
/// the profiling report reproduces the *shape* of the paper's Table 4(a):
/// group1 ≫ group2 > group3 ≫ group4, with group1 around 90 % of all
/// cycles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TutmacConfig {
    /// Period between user MSDUs (ns).
    pub msdu_period_ns: i64,
    /// User MSDU payload size (bytes).
    pub msdu_bytes: i64,
    /// Maximum fragment payload (bytes).
    pub fragment_bytes: i64,
    /// Period between remote-terminal frames arriving from the radio (ns).
    pub rx_period_ns: i64,
    /// Remote frame payload size (bytes).
    pub rx_frame_bytes: i64,
    /// Beacon period (ns).
    pub beacon_period_ns: i64,
    /// Beacon frame size (bytes).
    pub beacon_bytes: i64,
    /// Link-quality estimation period of RadioManagement (ns).
    pub rmng_period_ns: i64,
    /// Every `loss_modulus`-th transmitted frame is lost on the channel
    /// (0 disables loss). Deterministic, so runs are reproducible.
    pub loss_modulus: i64,
    /// Acknowledgement timeout of the stop-and-wait ARQ (ns); also the
    /// starting value of the exponential backoff.
    pub ack_timeout_ns: i64,
    /// Cap of the exponential ARQ backoff: each retransmission doubles
    /// the ack timeout up to this ceiling (ns).
    pub max_backoff_ns: i64,
    /// Maximum retransmissions per fragment.
    pub max_retries: i64,

    // ---- workload calibration (cost units per event) -------------------
    /// RadioChannelAccess: control work per transmitted frame (channel
    /// access, framing, timing).
    pub rca_tx_control: i64,
    /// RadioChannelAccess: bit-level work per transmitted frame
    /// (scrambling).
    pub rca_tx_bit: i64,
    /// RadioChannelAccess: control work per received frame.
    pub rca_rx_control: i64,
    /// RadioChannelAccess: control work per acknowledgement.
    pub rca_ack_control: i64,
    /// RadioChannelAccess: control work per beacon transmission.
    pub rca_beacon_control: i64,
    /// Management: control work to assemble one beacon.
    pub mng_beacon_control: i64,
    /// RadioManagement: DSP work per link-quality estimate.
    pub rmng_dsp: i64,
    /// UserInterface processes: control work per MSDU.
    pub ui_control: i64,
    /// DataProcessing `frag`/`defrag`: memory work per fragment handled.
    pub dp_mem: i64,
    /// CRC engine: one `bit` unit per this many payload bytes (models the
    /// accelerator's words-per-cycle throughput).
    pub crc_bytes_per_unit: i64,
}

impl Default for TutmacConfig {
    fn default() -> Self {
        TutmacConfig {
            msdu_period_ns: 1_000_000,
            msdu_bytes: 1500,
            fragment_bytes: 256,
            rx_period_ns: 1_500_000,
            rx_frame_bytes: 256,
            beacon_period_ns: 2_000_000,
            beacon_bytes: 64,
            rmng_period_ns: 4_000_000,
            loss_modulus: 8,
            ack_timeout_ns: 200_000,
            max_backoff_ns: 800_000,
            max_retries: 4,
            rca_tx_control: 6800,
            rca_tx_bit: 60,
            rca_rx_control: 2600,
            rca_ack_control: 120,
            rca_beacon_control: 400,
            mng_beacon_control: 600,
            rmng_dsp: 500,
            ui_control: 900,
            dp_mem: 16,
            crc_bytes_per_unit: 64,
        }
    }
}

impl TutmacConfig {
    /// Number of fragments one MSDU splits into.
    pub fn fragments_per_msdu(&self) -> i64 {
        (self.msdu_bytes + self.fragment_bytes - 1) / self.fragment_bytes
    }

    /// A light-load variant (fewer, smaller MSDUs) for quick tests.
    pub fn light_load() -> TutmacConfig {
        TutmacConfig {
            msdu_period_ns: 4_000_000,
            msdu_bytes: 500,
            rx_period_ns: 6_000_000,
            ..TutmacConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fragment_count() {
        let c = TutmacConfig::default();
        assert_eq!(c.fragments_per_msdu(), 6);
    }

    #[test]
    fn backoff_cap_exceeds_initial_timeout() {
        let c = TutmacConfig::default();
        assert!(c.max_backoff_ns >= c.ack_timeout_ns);
    }

    #[test]
    fn light_load_is_lighter() {
        let light = TutmacConfig::light_load();
        let normal = TutmacConfig::default();
        assert!(light.msdu_period_ns > normal.msdu_period_ns);
        assert!(light.msdu_bytes < normal.msdu_bytes);
    }
}
