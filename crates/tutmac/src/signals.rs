//! The signal alphabet of the TUTMAC protocol.

use tut_uml::value::DataType;
use tut_uml::{Model, SignalId};

/// Handles to every signal type used by the case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signals {
    /// User → `msduRec`: a data unit to transmit (`payload`).
    pub msdu_req: SignalId,
    /// `msduDel` → user: a received data unit (`payload`).
    pub msdu_ind: SignalId,
    /// `msduRec` → `frag`: accepted MSDU (`payload`).
    pub msdu: SignalId,
    /// `frag` → `crc`: one fragment to protect (`payload`, `seq`).
    pub tx_pdu: SignalId,
    /// `crc` → `rca`: protected frame (`frame`, `seq`).
    pub tx_frame: SignalId,
    /// `rca` → `frag`: the current fragment completed (acked or given
    /// up); send the next one (`seq`).
    pub pdu_done: SignalId,
    /// `rca` → `crc`: received frame to check (`frame`).
    pub rx_frame: SignalId,
    /// `crc` → `defrag`: verified payload (`payload`).
    pub rx_pdu: SignalId,
    /// `defrag` → `msduDel`: reassembled data unit (`payload`).
    pub msdu_out: SignalId,
    /// `mng` → `rca`: beacon to broadcast (`frame`).
    pub beacon_req: SignalId,
    /// `rca` → channel: frame on the air (`frame`, `seq`).
    pub air_frame: SignalId,
    /// channel → `rca`: frame from the air (`frame`).
    pub air_rx: SignalId,
    /// channel → `rca`: acknowledgement (`seq`).
    pub ack: SignalId,
    /// channel → `rmng`: link-quality indication (`rssi`).
    pub quality_ind: SignalId,
}

impl Signals {
    /// Declares every signal in `model`.
    pub fn declare(model: &mut Model) -> Signals {
        fn bytes_signal(model: &mut Model, name: &str, param: &str) -> SignalId {
            let id = model.add_signal(name);
            model.signal_mut(id).add_param(param, DataType::Bytes);
            id
        }
        let msdu_req = bytes_signal(model, "MsduReq", "payload");
        let msdu_ind = bytes_signal(model, "MsduInd", "payload");
        let msdu = bytes_signal(model, "Msdu", "payload");

        let tx_pdu = model.add_signal("TxPdu");
        model
            .signal_mut(tx_pdu)
            .add_param("payload", DataType::Bytes);
        model.signal_mut(tx_pdu).add_param("seq", DataType::Int);

        let tx_frame = model.add_signal("TxFrame");
        model
            .signal_mut(tx_frame)
            .add_param("frame", DataType::Bytes);
        model.signal_mut(tx_frame).add_param("seq", DataType::Int);

        let pdu_done = model.add_signal("PduDone");
        model.signal_mut(pdu_done).add_param("seq", DataType::Int);

        let rx_frame = bytes_signal(model, "RxFrame", "frame");
        let rx_pdu = bytes_signal(model, "RxPdu", "payload");
        let msdu_out = bytes_signal(model, "MsduOut", "payload");
        let beacon_req = bytes_signal(model, "BeaconReq", "frame");

        let air_frame = model.add_signal("AirFrame");
        model
            .signal_mut(air_frame)
            .add_param("frame", DataType::Bytes);
        model.signal_mut(air_frame).add_param("seq", DataType::Int);

        let air_rx = bytes_signal(model, "AirRx", "frame");

        let ack = model.add_signal("Ack");
        model.signal_mut(ack).add_param("seq", DataType::Int);

        let quality_ind = model.add_signal("QualityInd");
        model
            .signal_mut(quality_ind)
            .add_param("rssi", DataType::Int);

        Signals {
            msdu_req,
            msdu_ind,
            msdu,
            tx_pdu,
            tx_frame,
            pdu_done,
            rx_frame,
            rx_pdu,
            msdu_out,
            beacon_req,
            air_frame,
            air_rx,
            ack,
            quality_ind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_all_signals_with_params() {
        let mut m = Model::new("S");
        let signals = Signals::declare(&mut m);
        assert_eq!(m.signal(signals.msdu_req).name(), "MsduReq");
        assert_eq!(m.signal(signals.tx_pdu).params().len(), 2);
        assert_eq!(m.signal(signals.ack).params()[0].name, "seq");
        assert_eq!(m.signals().count(), 14);
    }
}
