//! The EFSM behaviours of every TUTMAC functional component (§4.1: the
//! behaviour "is described using statechart diagrams combined with the
//! UML 2.0 textual notation", modelled "as asynchronous communicating
//! Extended Finite State Machines").

use tut_uml::action::{BinOp, Builtin, CostClass, Expr, Statement, UnaryOp};
use tut_uml::statemachine::{StateMachine, Trigger};
use tut_uml::value::{DataType, Value};

use crate::config::TutmacConfig;
use crate::signals::Signals;

fn not(e: Expr) -> Expr {
    Expr::Unary(UnaryOp::Not, Box::new(e))
}

fn len(e: Expr) -> Expr {
    Expr::call(Builtin::Len, vec![e])
}

fn slice(buf: Expr, from: Expr, to: Expr) -> Expr {
    Expr::call(Builtin::Slice, vec![buf, from, to])
}

fn fill(byte: i64, count: Expr) -> Expr {
    Expr::call(Builtin::Fill, vec![Expr::int(byte), count])
}

fn crc32(e: Expr) -> Expr {
    Expr::call(Builtin::Crc32, vec![e])
}

fn pack(value: Expr, width: i64) -> Expr {
    Expr::call(Builtin::PackInt, vec![value, Expr::int(width)])
}

fn unpack(e: Expr) -> Expr {
    Expr::call(Builtin::UnpackInt, vec![e])
}

fn assign(var: &str, expr: Expr) -> Statement {
    Statement::Assign {
        var: var.into(),
        expr,
    }
}

fn compute(class: CostClass, amount: Expr) -> Statement {
    Statement::Compute { class, amount }
}

fn send(port: &str, signal: tut_uml::SignalId, args: Vec<Expr>) -> Statement {
    Statement::Send {
        port: port.into(),
        signal,
        args,
    }
}

fn set_timer(name: &str, duration: i64) -> Statement {
    Statement::SetTimer {
        name: name.into(),
        duration: Expr::int(duration),
    }
}

fn set_timer_expr(name: &str, duration: Expr) -> Statement {
    Statement::SetTimer {
        name: name.into(),
        duration,
    }
}

fn count(counter: &str, amount: i64) -> Statement {
    Statement::Count {
        counter: counter.into(),
        amount: Expr::int(amount),
    }
}

/// `msduRec` (UserInterface): accepts user MSDUs and hands them to
/// fragmentation.
pub fn msdu_rec(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("MsduRecBehavior");
    sm.add_variable("accepted", DataType::Int, Value::Int(0));
    let run = sm.add_state("Run");
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.msdu_req),
        None,
        vec![
            compute(CostClass::Control, Expr::int(config.ui_control)),
            compute(
                CostClass::Mem,
                len(Expr::param("payload")).bin(BinOp::Div, Expr::int(16)),
            ),
            assign(
                "accepted",
                Expr::var("accepted").bin(BinOp::Add, Expr::int(1)),
            ),
            send("pDp", signals.msdu, vec![Expr::param("payload")]),
        ],
    );
    sm
}

/// `msduDel` (UserInterface): delivers reassembled MSDUs to the user.
pub fn msdu_del(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("MsduDelBehavior");
    sm.add_variable("delivered", DataType::Int, Value::Int(0));
    let run = sm.add_state("Run");
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.msdu_out),
        None,
        vec![
            compute(CostClass::Control, Expr::int(config.ui_control)),
            assign(
                "delivered",
                Expr::var("delivered").bin(BinOp::Add, Expr::int(1)),
            ),
            send("pUser", signals.msdu_ind, vec![Expr::param("payload")]),
        ],
    );
    sm
}

/// The statement list that slices the next fragment off `current` and
/// sends it to the CRC engine.
fn emit_fragment(config: &TutmacConfig, signals: &Signals) -> Vec<Statement> {
    vec![
        assign(
            "piece",
            slice(
                Expr::var("current"),
                Expr::int(0),
                Expr::call(
                    Builtin::Min,
                    vec![Expr::int(config.fragment_bytes), len(Expr::var("current"))],
                ),
            ),
        ),
        assign(
            "current",
            slice(
                Expr::var("current"),
                Expr::int(config.fragment_bytes),
                len(Expr::var("current")),
            ),
        ),
        compute(CostClass::Mem, Expr::int(config.dp_mem)),
        send(
            "pCrc",
            signals.tx_pdu,
            vec![Expr::var("piece"), Expr::var("seq")],
        ),
        assign("seq", Expr::var("seq").bin(BinOp::Add, Expr::int(1))),
    ]
}

/// `frag` (DataProcessing): splits MSDUs into fragments with a
/// stop-and-wait handshake towards the channel access (one fragment in
/// flight; further MSDUs queue in a length-prefixed byte backlog).
pub fn frag(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("FragBehavior");
    sm.add_variable("backlog", DataType::Bytes, Value::Bytes(vec![]));
    sm.add_variable("current", DataType::Bytes, Value::Bytes(vec![]));
    sm.add_variable("piece", DataType::Bytes, Value::Bytes(vec![]));
    sm.add_variable("seq", DataType::Int, Value::Int(0));
    sm.add_variable("busy", DataType::Bool, Value::Bool(false));
    let run = sm.add_state("Run");
    sm.set_initial(run);

    // New MSDU while idle: start fragmenting immediately.
    let mut actions = vec![
        assign("busy", Expr::bool(true)),
        assign("current", Expr::param("payload")),
    ];
    actions.extend(emit_fragment(config, signals));
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.msdu),
        Some(not(Expr::var("busy"))),
        actions,
    );

    // New MSDU while busy: append to the backlog (2-byte length prefix).
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.msdu),
        Some(Expr::var("busy")),
        vec![
            compute(CostClass::Mem, Expr::int(config.dp_mem)),
            assign(
                "backlog",
                Expr::var("backlog")
                    .bin(BinOp::Add, pack(len(Expr::param("payload")), 2))
                    .bin(BinOp::Add, Expr::param("payload")),
            ),
        ],
    );

    // Fragment completed: continue the current MSDU, pop the backlog, or
    // go idle.
    let continue_current = emit_fragment(config, signals);
    let mut pop_backlog = vec![
        assign(
            "current",
            slice(
                Expr::var("backlog"),
                Expr::int(2),
                Expr::int(2).bin(
                    BinOp::Add,
                    unpack(slice(Expr::var("backlog"), Expr::int(0), Expr::int(2))),
                ),
            ),
        ),
        assign(
            "backlog",
            slice(
                Expr::var("backlog"),
                Expr::int(2).bin(
                    BinOp::Add,
                    unpack(slice(Expr::var("backlog"), Expr::int(0), Expr::int(2))),
                ),
                len(Expr::var("backlog")),
            ),
        ),
    ];
    // `current` was just set from the backlog; emit_fragment slices it.
    pop_backlog.extend(emit_fragment(config, signals));
    let done_actions = vec![Statement::If {
        cond: len(Expr::var("current")).bin(BinOp::Gt, Expr::int(0)),
        then_branch: continue_current,
        else_branch: vec![Statement::If {
            cond: len(Expr::var("backlog")).bin(BinOp::Gt, Expr::int(0)),
            then_branch: pop_backlog,
            else_branch: vec![assign("busy", Expr::bool(false))],
        }],
    }];
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.pdu_done),
        None,
        done_actions,
    );
    sm
}

/// `defrag` (DataProcessing): reassembles received payloads (remote
/// frames arrive unfragmented, so this is a verify-and-forward stage with
/// memory work).
pub fn defrag(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("DefragBehavior");
    sm.add_variable("received", DataType::Int, Value::Int(0));
    let run = sm.add_state("Run");
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.rx_pdu),
        None,
        vec![
            compute(CostClass::Mem, Expr::int(config.dp_mem)),
            assign(
                "received",
                Expr::var("received").bin(BinOp::Add, Expr::int(1)),
            ),
            send("pOut", signals.msdu_out, vec![Expr::param("payload")]),
        ],
    );
    sm
}

/// `crc` (DataProcessing): generates CRC-32 on the transmit path and
/// checks it on the receive path — the process the paper maps to the
/// hardware accelerator (`group4` → `accelerator1`).
pub fn crc(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let per_unit = config.crc_bytes_per_unit.max(1);
    let mut sm = StateMachine::new("CrcBehavior");
    sm.add_variable("data", DataType::Bytes, Value::Bytes(vec![]));
    sm.add_variable("errors", DataType::Int, Value::Int(0));
    let run = sm.add_state("Run");
    sm.set_initial(run);

    // Transmit: append the CRC.
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.tx_pdu),
        None,
        vec![
            compute(
                CostClass::Bit,
                len(Expr::param("payload"))
                    .bin(BinOp::Div, Expr::int(per_unit))
                    .bin(BinOp::Add, Expr::int(1)),
            ),
            send(
                "pOut",
                signals.tx_frame,
                vec![
                    Expr::param("payload").bin(BinOp::Add, pack(crc32(Expr::param("payload")), 4)),
                    Expr::param("seq"),
                ],
            ),
        ],
    );

    // Receive: strip and verify.
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.rx_frame),
        None,
        vec![
            assign(
                "data",
                slice(
                    Expr::param("frame"),
                    Expr::int(0),
                    len(Expr::param("frame")).bin(BinOp::Sub, Expr::int(4)),
                ),
            ),
            compute(
                CostClass::Bit,
                len(Expr::param("frame"))
                    .bin(BinOp::Div, Expr::int(per_unit))
                    .bin(BinOp::Add, Expr::int(1)),
            ),
            Statement::If {
                cond: crc32(Expr::var("data")).bin(
                    BinOp::Eq,
                    unpack(slice(
                        Expr::param("frame"),
                        len(Expr::param("frame")).bin(BinOp::Sub, Expr::int(4)),
                        len(Expr::param("frame")),
                    )),
                ),
                then_branch: vec![send("pOut", signals.rx_pdu, vec![Expr::var("data")])],
                else_branch: vec![
                    assign("errors", Expr::var("errors").bin(BinOp::Add, Expr::int(1))),
                    Statement::Log {
                        message: "crc error, frame discarded ({} total)".into(),
                        args: vec![Expr::var("errors")],
                    },
                ],
            },
        ],
    );
    sm
}

/// `rca` (RadioChannelAccess): channel access with stop-and-wait ARQ and
/// exponential backoff — the dominant workload of Table 4(a).
///
/// Every frame attempt is tallied through `count` statements
/// (`arq.tx`/`arq.acked`/`arq.retries`/`arq.gave_up`), so the profiling
/// report's per-group counters expose the protocol's reliability figures.
pub fn rca(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("RcaBehavior");
    sm.add_variable("buf", DataType::Bytes, Value::Bytes(vec![]));
    sm.add_variable("cur_seq", DataType::Int, Value::Int(-1));
    sm.add_variable("retries", DataType::Int, Value::Int(0));
    sm.add_variable(
        "backoff",
        DataType::Int,
        Value::Int(config.ack_timeout_ns.max(1)),
    );
    let idle = sm.add_state("Idle");
    let wait_ack = sm.add_state("WaitAck");
    sm.set_initial(idle);

    let tx_work = |config: &TutmacConfig| {
        vec![
            compute(CostClass::Control, Expr::int(config.rca_tx_control)),
            compute(CostClass::Bit, Expr::int(config.rca_tx_bit)),
        ]
    };

    // Idle + TxFrame: transmit and wait for the ack.
    let mut actions = vec![
        assign("buf", Expr::param("frame")),
        assign("cur_seq", Expr::param("seq")),
        assign("retries", Expr::int(0)),
        assign("backoff", Expr::int(config.ack_timeout_ns.max(1))),
        count("arq.tx", 1),
    ];
    actions.extend(tx_work(config));
    actions.push(send(
        "pPhy",
        signals.air_frame,
        vec![Expr::var("buf"), Expr::var("cur_seq")],
    ));
    actions.push(set_timer_expr("ackT", Expr::var("backoff")));
    sm.add_transition(
        idle,
        wait_ack,
        Trigger::Signal(signals.tx_frame),
        None,
        actions,
    );

    // WaitAck + matching Ack: done, request the next fragment.
    sm.add_transition(
        wait_ack,
        idle,
        Trigger::Signal(signals.ack),
        Some(Expr::param("seq").bin(BinOp::Eq, Expr::var("cur_seq"))),
        vec![
            Statement::CancelTimer {
                name: "ackT".into(),
            },
            count("arq.acked", 1),
            compute(CostClass::Control, Expr::int(config.rca_ack_control)),
            send("pDp", signals.pdu_done, vec![Expr::var("cur_seq")]),
        ],
    );

    // WaitAck + timeout, retries left: retransmit with doubled backoff
    // (capped at max_backoff_ns).
    let mut retry = vec![
        assign(
            "retries",
            Expr::var("retries").bin(BinOp::Add, Expr::int(1)),
        ),
        assign(
            "backoff",
            Expr::call(
                Builtin::Min,
                vec![
                    Expr::var("backoff").bin(BinOp::Mul, Expr::int(2)),
                    Expr::int(config.max_backoff_ns.max(1)),
                ],
            ),
        ),
        count("arq.retries", 1),
    ];
    retry.extend(tx_work(config));
    retry.push(send(
        "pPhy",
        signals.air_frame,
        vec![Expr::var("buf"), Expr::var("cur_seq")],
    ));
    retry.push(set_timer_expr("ackT", Expr::var("backoff")));
    sm.add_transition(
        wait_ack,
        wait_ack,
        Trigger::Timer("ackT".into()),
        Some(Expr::var("retries").bin(BinOp::Lt, Expr::int(config.max_retries))),
        retry,
    );

    // WaitAck + timeout, out of retries: give up.
    sm.add_transition(
        wait_ack,
        idle,
        Trigger::Timer("ackT".into()),
        Some(Expr::var("retries").bin(BinOp::Ge, Expr::int(config.max_retries))),
        vec![
            count("arq.gave_up", 1),
            Statement::Log {
                message: "fragment {} dropped after retries".into(),
                args: vec![Expr::var("cur_seq")],
            },
            send("pDp", signals.pdu_done, vec![Expr::var("cur_seq")]),
        ],
    );

    // Beacons are broadcast without acknowledgement, in either state.
    for state in [idle, wait_ack] {
        sm.add_transition(
            state,
            state,
            Trigger::Signal(signals.beacon_req),
            None,
            vec![
                compute(CostClass::Control, Expr::int(config.rca_beacon_control)),
                send(
                    "pPhy",
                    signals.air_frame,
                    vec![Expr::param("frame"), Expr::int(-1)],
                ),
            ],
        );
        // Received frames are processed in either state.
        sm.add_transition(
            state,
            state,
            Trigger::Signal(signals.air_rx),
            None,
            vec![
                compute(CostClass::Control, Expr::int(config.rca_rx_control)),
                send("pDp", signals.rx_frame, vec![Expr::param("frame")]),
            ],
        );
    }
    sm
}

/// `mng` (Management): periodic beacon generation.
pub fn mng(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("MngBehavior");
    sm.add_variable("beacons", DataType::Int, Value::Int(0));
    let run = sm.add_state_with_entry("Run", vec![set_timer("beaconT", config.beacon_period_ns)]);
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("beaconT".into()),
        None,
        vec![
            compute(CostClass::Control, Expr::int(config.mng_beacon_control)),
            assign(
                "beacons",
                Expr::var("beacons").bin(BinOp::Add, Expr::int(1)),
            ),
            send(
                "pRca",
                signals.beacon_req,
                vec![fill(0x10, Expr::int(config.beacon_bytes))],
            ),
            set_timer("beaconT", config.beacon_period_ns),
        ],
    );
    sm
}

/// `rmng` (RadioManagement): periodic link-quality estimation plus
/// processing of channel-quality indications.
pub fn rmng(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("RmngBehavior");
    sm.add_variable("rssi", DataType::Int, Value::Int(0));
    let run = sm.add_state_with_entry("Run", vec![set_timer("measT", config.rmng_period_ns)]);
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("measT".into()),
        None,
        vec![
            compute(CostClass::Dsp, Expr::int(config.rmng_dsp)),
            set_timer("measT", config.rmng_period_ns),
        ],
    );
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.quality_ind),
        None,
        vec![
            assign("rssi", Expr::param("rssi")),
            compute(CostClass::Dsp, Expr::int(config.rmng_dsp / 2)),
        ],
    );
    sm
}

/// `user` (environment): the traffic source and sink.
pub fn user(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("UserBehavior");
    sm.add_variable("sent", DataType::Int, Value::Int(0));
    sm.add_variable("delivered", DataType::Int, Value::Int(0));
    let run = sm.add_state_with_entry("Run", vec![set_timer("txT", config.msdu_period_ns)]);
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("txT".into()),
        None,
        vec![
            assign("sent", Expr::var("sent").bin(BinOp::Add, Expr::int(1))),
            send(
                "pUi",
                signals.msdu_req,
                vec![fill(0x42, Expr::int(config.msdu_bytes))],
            ),
            set_timer("txT", config.msdu_period_ns),
        ],
    );
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.msdu_ind),
        None,
        vec![assign(
            "delivered",
            Expr::var("delivered").bin(BinOp::Add, Expr::int(1)),
        )],
    );
    sm
}

/// `channel` (environment): the radio channel — acknowledges data frames
/// (deterministically losing every `loss_modulus`-th one), generates
/// remote-terminal traffic, corrupting every fifth frame's CRC, and emits
/// link-quality indications.
pub fn channel(config: &TutmacConfig, signals: &Signals) -> StateMachine {
    let mut sm = StateMachine::new("ChannelBehavior");
    sm.add_variable("count", DataType::Int, Value::Int(0));
    sm.add_variable("rxn", DataType::Int, Value::Int(0));
    sm.add_variable("data", DataType::Bytes, Value::Bytes(vec![]));
    let run = sm.add_state_with_entry(
        "Run",
        vec![
            set_timer("rxT", config.rx_period_ns),
            set_timer("qualT", config.rmng_period_ns),
        ],
    );
    sm.set_initial(run);

    // Acknowledge data frames (seq >= 0); beacons pass unacked. The
    // receiving terminal verifies the frame check sequence first: a frame
    // corrupted in flight fails the FCS and its acknowledgement is
    // withheld, which is what drives the sender's ARQ retransmissions.
    let fcs_ok = crc32(slice(
        Expr::param("frame"),
        Expr::int(0),
        len(Expr::param("frame")).bin(BinOp::Sub, Expr::int(4)),
    ))
    .bin(
        BinOp::Eq,
        unpack(slice(
            Expr::param("frame"),
            len(Expr::param("frame")).bin(BinOp::Sub, Expr::int(4)),
            len(Expr::param("frame")),
        )),
    );
    let ack_logic = Statement::If {
        cond: Expr::param("seq").bin(BinOp::Ge, Expr::int(0)),
        then_branch: vec![Statement::If {
            cond: fcs_ok,
            then_branch: vec![
                assign("count", Expr::var("count").bin(BinOp::Add, Expr::int(1))),
                if config.loss_modulus > 0 {
                    Statement::If {
                        cond: Expr::var("count")
                            .bin(BinOp::Mod, Expr::int(config.loss_modulus))
                            .bin(BinOp::Ne, Expr::int(0)),
                        then_branch: vec![send("pRca", signals.ack, vec![Expr::param("seq")])],
                        else_branch: vec![Statement::Log {
                            message: "channel lost frame {}".into(),
                            args: vec![Expr::param("seq")],
                        }],
                    }
                } else {
                    send("pRca", signals.ack, vec![Expr::param("seq")])
                },
            ],
            else_branch: vec![
                count("chan.bad_fcs", 1),
                Statement::Log {
                    message: "channel: bad FCS, ack withheld for frame {}".into(),
                    args: vec![Expr::param("seq")],
                },
            ],
        }],
        else_branch: vec![],
    };
    sm.add_transition(
        run,
        run,
        Trigger::Signal(signals.air_frame),
        None,
        vec![ack_logic],
    );

    // Remote traffic: a CRC-protected frame every rx period; every fifth
    // frame arrives corrupted.
    sm.add_transition(
        run,
        run,
        Trigger::Timer("rxT".into()),
        None,
        vec![
            assign("rxn", Expr::var("rxn").bin(BinOp::Add, Expr::int(1))),
            assign("data", fill(0x55, Expr::int(config.rx_frame_bytes))),
            Statement::If {
                cond: Expr::var("rxn")
                    .bin(BinOp::Mod, Expr::int(5))
                    .bin(BinOp::Eq, Expr::int(0)),
                then_branch: vec![send(
                    "pRca",
                    signals.air_rx,
                    vec![Expr::var("data").bin(
                        BinOp::Add,
                        pack(crc32(Expr::var("data")).bin(BinOp::Add, Expr::int(1)), 4),
                    )],
                )],
                else_branch: vec![send(
                    "pRca",
                    signals.air_rx,
                    vec![Expr::var("data").bin(BinOp::Add, pack(crc32(Expr::var("data")), 4))],
                )],
            },
            set_timer("rxT", config.rx_period_ns),
        ],
    );

    // Link quality indications for RadioManagement.
    sm.add_transition(
        run,
        run,
        Trigger::Timer("qualT".into()),
        None,
        vec![
            send("pRmng", signals.quality_ind, vec![Expr::int(42)]),
            set_timer("qualT", config.rmng_period_ns),
        ],
    );
    sm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::Model;

    fn all_machines() -> Vec<StateMachine> {
        let mut m = Model::new("T");
        let signals = Signals::declare(&mut m);
        let config = TutmacConfig::default();
        vec![
            msdu_rec(&config, &signals),
            msdu_del(&config, &signals),
            frag(&config, &signals),
            defrag(&config, &signals),
            crc(&config, &signals),
            rca(&config, &signals),
            mng(&config, &signals),
            rmng(&config, &signals),
            user(&config, &signals),
            channel(&config, &signals),
        ]
    }

    #[test]
    fn every_machine_is_well_formed() {
        for sm in all_machines() {
            assert!(sm.check().is_ok(), "machine {} failed check", sm.name());
        }
    }

    #[test]
    fn rca_has_two_states_and_arq_transitions() {
        let mut m = Model::new("T");
        let signals = Signals::declare(&mut m);
        let sm = rca(&TutmacConfig::default(), &signals);
        assert_eq!(sm.state_count(), 2);
        // Two timer transitions (retry + give up).
        let timer_transitions = sm
            .transitions()
            .filter(|(_, t)| matches!(t.trigger(), Trigger::Timer(_)))
            .count();
        assert_eq!(timer_transitions, 2);
    }

    #[test]
    fn frag_handles_busy_and_idle_msdus() {
        let mut m = Model::new("T");
        let signals = Signals::declare(&mut m);
        let sm = frag(&TutmacConfig::default(), &signals);
        let msdu_transitions = sm
            .transitions()
            .filter(|(_, t)| t.trigger() == &Trigger::Signal(signals.msdu))
            .count();
        assert_eq!(msdu_transitions, 2, "idle and busy variants");
    }

    #[test]
    fn machines_use_expected_timers() {
        let mut m = Model::new("T");
        let signals = Signals::declare(&mut m);
        let config = TutmacConfig::default();
        let mng_machine = mng(&config, &signals);
        assert!(mng_machine
            .transitions()
            .any(|(_, t)| t.trigger() == &Trigger::Timer("beaconT".into())));
        let channel_machine = channel(&config, &signals);
        assert!(channel_machine
            .transitions()
            .any(|(_, t)| t.trigger() == &Trigger::Timer("rxT".into())));
    }
}
