//! The TUTWLAN terminal platform (Figure 7): three processors and a
//! CRC-32 accelerator on a hierarchical HIBI bus.

use tut_profile::platform::ComponentKind;
use tut_profile::SystemModel;
use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, PortId, PropertyId};
use tut_uml::model::ConnectorEnd;

use crate::model::BuildTutmacError;

/// Handles to the built platform.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TutwlanPlatform {
    /// The `«Platform»` top-level class.
    pub platform: ClassId,
    /// `processor1..processor3`.
    pub processors: [PropertyId; 3],
    /// `accelerator1`.
    pub accelerator: PropertyId,
    /// `hibisegment1`, `hibisegment2`, and the bridge segment.
    pub segments: [PropertyId; 3],
}

/// Builds the Figure 7 platform into `system`:
///
/// * `processor1`, `processor2` on `hibisegment1`,
/// * `processor3` and `accelerator1` (CRC-32) on `hibisegment2`,
/// * both segments joined through a `bridge` segment,
/// * each attachment through a `«HIBIWrapper»` with a unique address.
///
/// # Errors
///
/// Returns [`BuildTutmacError`] if a profile application fails.
pub fn build_tutwlan_platform(
    system: &mut SystemModel,
) -> Result<TutwlanPlatform, BuildTutmacError> {
    let platform = system.model.add_class("Tutwlan_Platform");
    system.apply(platform, |t| t.platform)?;

    // Component library entries (Table 3 parameters).
    let nios = system.add_platform_component("NiosCpu", ComponentKind::General, 50, 2.0, 0.50);
    let crc_acc = system.add_platform_component(
        "CrcAccelerator",
        ComponentKind::HwAccelerator,
        100,
        0.2,
        0.05,
    );
    let nios_port = system.model.add_port(nios, "hibi");
    let acc_port = system.model.add_port(crc_acc, "hibi");

    // HIBI segment classes: the data segments and the bridge segment.
    let seg_class = system.model.add_class("HibiSegment");
    system.apply_with(
        seg_class,
        |t| t.hibi_segment,
        [
            ("DataWidth", TagValue::Int(32)),
            ("Frequency", TagValue::Int(100)),
            ("Arbitration", TagValue::Enum("priority".into())),
        ],
    )?;
    let bridge_class = system.model.add_class("HibiBridgeSegment");
    system.apply_with(
        bridge_class,
        |t| t.hibi_segment,
        [
            ("DataWidth", TagValue::Int(32)),
            ("Frequency", TagValue::Int(100)),
            ("Arbitration", TagValue::Enum("priority".into())),
        ],
    )?;
    let seg_port = system.model.add_port(seg_class, "agents");
    let bridge_port = system.model.add_port(bridge_class, "agents");

    // Segment instances.
    let seg1 = system.model.add_part(platform, "hibisegment1", seg_class);
    let seg2 = system.model.add_part(platform, "hibisegment2", seg_class);
    let bridge = system.model.add_part(platform, "bridge", bridge_class);

    // Processing-element instances (Figure 7).
    let p1 = system.add_platform_instance(platform, "processor1", nios, 1, 3);
    let p2 = system.add_platform_instance(platform, "processor2", nios, 2, 2);
    let p3 = system.add_platform_instance(platform, "processor3", nios, 3, 1);
    let acc = system.add_platform_instance(platform, "accelerator1", crc_acc, 4, 0);
    // Processors carry 256 KiB of local memory (the Stratix board backs
    // the soft cores with on-board SRAM); the accelerator keeps its 4 KiB
    // of FIFOs.
    for pe in [p1, p2, p3] {
        system
            .set_tag(
                pe,
                |t| t.platform_component_instance,
                "IntMemory",
                256 * 1024i64,
            )
            .expect("fresh instance accepts the tag");
    }
    system
        .set_tag(
            acc,
            |t| t.platform_component_instance,
            "IntMemory",
            4 * 1024i64,
        )
        .expect("fresh instance accepts the tag");

    // One wrapper class per attachment, with HIBI parameters (§4.2: "the
    // specialized information contains sizes of buffers, bus arbitration,
    // and addressing").
    let attach = |system: &mut SystemModel,
                  pe: PropertyId,
                  pe_port: PortId,
                  segment: PropertyId,
                  segment_port: PortId,
                  name: &str,
                  address: i64|
     -> Result<(), BuildTutmacError> {
        let wrapper_class = system.model.add_class(format!("HibiWrapper_{name}"));
        system.apply_with(
            wrapper_class,
            |t| t.hibi_wrapper,
            [
                ("Address", TagValue::Int(address)),
                ("BufferSize", TagValue::Int(16)),
                ("MaxTime", TagValue::Int(16)),
            ],
        )?;
        let wrapper_pe = system.model.add_port(wrapper_class, "pe");
        let wrapper_bus = system.model.add_port(wrapper_class, "bus");
        let wrapper = system.model.add_part(platform, name, wrapper_class);
        system.model.add_connector(
            platform,
            format!("{name}_pe"),
            ConnectorEnd {
                part: Some(wrapper),
                port: wrapper_pe,
            },
            ConnectorEnd {
                part: Some(pe),
                port: pe_port,
            },
        );
        system.model.add_connector(
            platform,
            format!("{name}_bus"),
            ConnectorEnd {
                part: Some(wrapper),
                port: wrapper_bus,
            },
            ConnectorEnd {
                part: Some(segment),
                port: segment_port,
            },
        );
        Ok(())
    };
    attach(system, p1, nios_port, seg1, seg_port, "wrapper1", 0x10)?;
    attach(system, p2, nios_port, seg1, seg_port, "wrapper2", 0x20)?;
    attach(system, p3, nios_port, seg2, seg_port, "wrapper3", 0x30)?;
    attach(system, acc, acc_port, seg2, seg_port, "wrapper4", 0x40)?;

    // Hierarchical bus: both data segments connect to the bridge segment.
    system.model.add_connector(
        platform,
        "seg1_bridge",
        ConnectorEnd {
            part: Some(seg1),
            port: seg_port,
        },
        ConnectorEnd {
            part: Some(bridge),
            port: bridge_port,
        },
    );
    system.model.add_connector(
        platform,
        "seg2_bridge",
        ConnectorEnd {
            part: Some(seg2),
            port: seg_port,
        },
        ConnectorEnd {
            part: Some(bridge),
            port: bridge_port,
        },
    );

    Ok(TutwlanPlatform {
        platform,
        processors: [p1, p2, p3],
        accelerator: acc,
        segments: [seg1, seg2, bridge],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_matches_figure7() {
        let mut system = SystemModel::new("P");
        let platform = build_tutwlan_platform(&mut system).unwrap();
        let view = system.platform();
        assert_eq!(view.instances().len(), 4);
        assert_eq!(view.segments().len(), 3);
        assert_eq!(view.attachments().len(), 4);
        assert_eq!(view.bridges().len(), 2);
        assert_eq!(
            view.segment_of(platform.processors[0]),
            Some(platform.segments[0])
        );
        assert_eq!(
            view.segment_of(platform.processors[1]),
            Some(platform.segments[0])
        );
        assert_eq!(
            view.segment_of(platform.processors[2]),
            Some(platform.segments[1])
        );
        assert_eq!(
            view.segment_of(platform.accelerator),
            Some(platform.segments[1])
        );
    }

    #[test]
    fn accelerator_is_a_hw_component() {
        let mut system = SystemModel::new("P");
        let platform = build_tutwlan_platform(&mut system).unwrap();
        let info = system.platform().instance(platform.accelerator).unwrap();
        assert_eq!(info.kind, ComponentKind::HwAccelerator);
        assert_eq!(info.frequency, 100);
    }

    #[test]
    fn wrapper_addresses_unique() {
        let mut system = SystemModel::new("P");
        build_tutwlan_platform(&mut system).unwrap();
        let wrappers = system.platform().wrappers();
        let mut addresses: Vec<_> = wrappers.iter().filter_map(|w| w.address).collect();
        addresses.sort();
        addresses.dedup();
        assert_eq!(addresses.len(), 4);
    }
}
