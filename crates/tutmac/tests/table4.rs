//! End-to-end reproduction of the paper's Table 4: build TUTMAC, run the
//! full design & profiling flow, and check the report's *shape* against
//! the paper (group1 dominates ≫ group2 > group3 ≫ group4; the
//! environment executes zero cycles).

use tut_profiling::{profile_system, render_table4};
use tut_sim::SimConfig;
use tutmac::{build_tutmac_system, TutmacConfig};

#[test]
fn table4_shape_matches_the_paper() {
    let system = build_tutmac_system(&TutmacConfig::default()).expect("build");
    assert!(system.validate_errors().is_empty());

    let report = profile_system(&system, SimConfig::with_horizon_ns(20_000_000)).expect("profile");
    let table = render_table4(&report);
    println!("{table}");

    let proportion = |name: &str| report.group(name).map(|g| g.proportion).unwrap_or(0.0);
    let g1 = proportion("group1");
    let g2 = proportion("group2");
    let g3 = proportion("group3");
    let g4 = proportion("group4");
    let env = proportion("Environment");

    // Paper: 92.1 / 5.2 / 2.5 / 0.2 / 0.0 %. We require the shape, with
    // generous bands. Pricing accelerator mem work at the documented
    // 4 cycles/unit (it was mistakenly 1) lifts group4 — CRC forwards
    // whole frames, which is mem work — to just under group3, so the
    // band for the smallest group is 4%.
    assert!(g1 > 0.80, "group1 must dominate: {g1:.3}\n{table}");
    assert!(
        g2 > g3,
        "group2 ({g2:.3}) should exceed group3 ({g3:.3})\n{table}"
    );
    assert!(
        g3 > g4,
        "group3 ({g3:.3}) should exceed group4 ({g4:.3})\n{table}"
    );
    assert!(
        g4 < 0.04,
        "group4 on the accelerator must stay the smallest: {g4:.4}\n{table}"
    );
    assert!(
        env == 0.0,
        "environment must execute zero cycles: {env}\n{table}"
    );

    // Communication structure (Table 4b): groups do exchange signals, and
    // the environment row is populated (user traffic + channel).
    let matrix = &report.signal_matrix;
    assert!(
        matrix.between("group3", "group4").unwrap_or(0) > 0,
        "frag -> crc"
    );
    assert!(
        matrix.between("group4", "group1").unwrap_or(0) > 0,
        "crc -> rca"
    );
    assert!(
        matrix.between("Environment", "group1").unwrap_or(0) > 0,
        "channel acks/frames -> rca"
    );

    // The protocol actually works: data is delivered end to end.
    assert!(
        matrix.between("group2", "Environment").unwrap_or(0) > 0,
        "msduDel -> user deliveries:\n{table}"
    );
}

#[test]
fn deterministic_table4() {
    let system = build_tutmac_system(&TutmacConfig::default()).expect("build");
    let a = profile_system(&system, SimConfig::with_horizon_ns(5_000_000)).expect("profile a");
    let b = profile_system(&system, SimConfig::with_horizon_ns(5_000_000)).expect("profile b");
    assert_eq!(a, b);
}
