//! Property-based tests on the HIBI transfer model's invariants.

use proptest::prelude::*;
use tut_hibi::topology::{BridgeConfig, NetworkBuilder, SegmentConfig, WrapperConfig};

fn two_segment_network() -> (tut_hibi::Network, tut_hibi::AgentId, tut_hibi::AgentId, tut_hibi::AgentId) {
    let mut b = NetworkBuilder::new();
    let s0 = b.add_segment("s0", SegmentConfig::default());
    let s1 = b.add_segment("s1", SegmentConfig::default());
    let a0 = b.add_agent(s0, WrapperConfig::new(0x10));
    let a1 = b.add_agent(s0, WrapperConfig::new(0x20));
    let a2 = b.add_agent(s1, WrapperConfig::new(0x30));
    b.add_bridge(s0, s1, BridgeConfig::default());
    (b.build().expect("network"), a0, a1, a2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Completion never precedes submission, and more bytes never finish
    /// earlier on an otherwise idle network.
    #[test]
    fn latency_is_monotonic_in_bytes(bytes in 1u64..8192, extra in 1u64..4096, now in 0u64..1_000_000) {
        let (mut n, a0, a1, _) = two_segment_network();
        let small = n.transfer(a0, a1, bytes, now);
        prop_assert!(small.completion_ns >= now);
        n.reset();
        let big = n.transfer(a0, a1, bytes + extra, now);
        prop_assert!(
            big.completion_ns >= small.completion_ns,
            "{} bytes at {} vs {} bytes at {}",
            bytes, small.completion_ns, bytes + extra, big.completion_ns
        );
    }

    /// Crossing the bridge is never faster than staying on one segment.
    #[test]
    fn remote_is_never_faster_than_local(bytes in 1u64..4096, now in 0u64..1_000_000) {
        let (mut n, a0, a1, a2) = two_segment_network();
        let local = n.transfer(a0, a1, bytes, now);
        n.reset();
        let remote = n.transfer(a0, a2, bytes, now);
        prop_assert!(remote.completion_ns >= local.completion_ns);
        prop_assert_eq!(remote.segments_traversed, 2);
    }

    /// Back-to-back transfers on the same segment serialise: the second
    /// completes no earlier than the first.
    #[test]
    fn contention_serialises(bytes_a in 1u64..4096, bytes_b in 1u64..4096, now in 0u64..1_000_000) {
        let (mut n, a0, a1, _) = two_segment_network();
        let first = n.transfer(a0, a1, bytes_a, now);
        let second = n.transfer(a1, a0, bytes_b, now);
        prop_assert!(second.completion_ns >= first.completion_ns);
        prop_assert!(second.queued_ns > 0 || bytes_a == 0);
    }

    /// The unloaded estimate equals the first transfer on a fresh network
    /// and never exceeds a contended one.
    #[test]
    fn unloaded_estimate_is_a_lower_bound(bytes in 1u64..4096, load in 1u64..4096) {
        let (mut n, a0, a1, a2) = two_segment_network();
        let estimate = n.unloaded_latency_ns(a0, a2, bytes);
        let fresh = n.transfer(a0, a2, bytes, 0);
        prop_assert_eq!(estimate, fresh.completion_ns);
        n.reset();
        // Pre-load the first segment, then measure again.
        n.transfer(a1, a0, load, 0);
        let contended = n.transfer(a0, a2, bytes, 0);
        prop_assert!(contended.completion_ns >= estimate);
    }

    /// Byte accounting: segment stats sum exactly the bytes offered.
    #[test]
    fn stats_account_all_bytes(transfers in proptest::collection::vec((1u64..2048, 0u64..100_000), 1..16)) {
        let (mut n, a0, a1, _) = two_segment_network();
        let mut total = 0;
        for (bytes, at) in &transfers {
            n.transfer(a0, a1, *bytes, *at);
            total += bytes;
        }
        let seg = n.segment_of(a0);
        prop_assert_eq!(n.segment_stats(seg).bytes, total);
    }
}
