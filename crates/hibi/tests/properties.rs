//! Randomised tests on the HIBI transfer model's invariants, driven by
//! a seeded in-tree generator (deterministic, no external dependencies).

use tut_hibi::topology::{BridgeConfig, NetworkBuilder, SegmentConfig, WrapperConfig};
use tut_trace::SplitMix64;

const CASES: u64 = 128;

fn two_segment_network() -> (
    tut_hibi::Network,
    tut_hibi::AgentId,
    tut_hibi::AgentId,
    tut_hibi::AgentId,
) {
    let mut b = NetworkBuilder::new();
    let s0 = b.add_segment("s0", SegmentConfig::default());
    let s1 = b.add_segment("s1", SegmentConfig::default());
    let a0 = b.add_agent(s0, WrapperConfig::new(0x10));
    let a1 = b.add_agent(s0, WrapperConfig::new(0x20));
    let a2 = b.add_agent(s1, WrapperConfig::new(0x30));
    b.add_bridge(s0, s1, BridgeConfig::default());
    (b.build().expect("network"), a0, a1, a2)
}

/// `lo + rng() % (hi - lo)` — a value in `lo..hi`.
fn in_range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

/// Completion never precedes submission, and more bytes never finish
/// earlier on an otherwise idle network.
#[test]
fn latency_is_monotonic_in_bytes() {
    let mut rng = SplitMix64::new(0x11B1_0001);
    for _ in 0..CASES {
        let bytes = in_range(&mut rng, 1, 8192);
        let extra = in_range(&mut rng, 1, 4096);
        let now = in_range(&mut rng, 0, 1_000_000);
        let (mut n, a0, a1, _) = two_segment_network();
        let small = n.transfer(a0, a1, bytes, now);
        assert!(small.completion_ns >= now);
        n.reset();
        let big = n.transfer(a0, a1, bytes + extra, now);
        assert!(
            big.completion_ns >= small.completion_ns,
            "{} bytes at {} vs {} bytes at {}",
            bytes,
            small.completion_ns,
            bytes + extra,
            big.completion_ns
        );
    }
}

/// Crossing the bridge is never faster than staying on one segment.
#[test]
fn remote_is_never_faster_than_local() {
    let mut rng = SplitMix64::new(0x11B1_0002);
    for _ in 0..CASES {
        let bytes = in_range(&mut rng, 1, 4096);
        let now = in_range(&mut rng, 0, 1_000_000);
        let (mut n, a0, a1, a2) = two_segment_network();
        let local = n.transfer(a0, a1, bytes, now);
        n.reset();
        let remote = n.transfer(a0, a2, bytes, now);
        assert!(remote.completion_ns >= local.completion_ns);
        assert_eq!(remote.segments_traversed, 2);
    }
}

/// Back-to-back transfers on the same segment serialise: the second
/// completes no earlier than the first.
#[test]
fn contention_serialises() {
    let mut rng = SplitMix64::new(0x11B1_0003);
    for _ in 0..CASES {
        let bytes_a = in_range(&mut rng, 1, 4096);
        let bytes_b = in_range(&mut rng, 1, 4096);
        let now = in_range(&mut rng, 0, 1_000_000);
        let (mut n, a0, a1, _) = two_segment_network();
        let first = n.transfer(a0, a1, bytes_a, now);
        let second = n.transfer(a1, a0, bytes_b, now);
        assert!(second.completion_ns >= first.completion_ns);
        assert!(second.queued_ns > 0 || bytes_a == 0);
    }
}

/// The unloaded estimate equals the first transfer on a fresh network
/// and never exceeds a contended one.
#[test]
fn unloaded_estimate_is_a_lower_bound() {
    let mut rng = SplitMix64::new(0x11B1_0004);
    for _ in 0..CASES {
        let bytes = in_range(&mut rng, 1, 4096);
        let load = in_range(&mut rng, 1, 4096);
        let (mut n, a0, a1, a2) = two_segment_network();
        let estimate = n.unloaded_latency_ns(a0, a2, bytes);
        let fresh = n.transfer(a0, a2, bytes, 0);
        assert_eq!(estimate, fresh.completion_ns);
        n.reset();
        // Pre-load the first segment, then measure again.
        n.transfer(a1, a0, load, 0);
        let contended = n.transfer(a0, a2, bytes, 0);
        assert!(contended.completion_ns >= estimate);
    }
}

/// Byte accounting: segment stats sum exactly the bytes offered.
#[test]
fn stats_account_all_bytes() {
    let mut rng = SplitMix64::new(0x11B1_0005);
    for _ in 0..CASES {
        let count = in_range(&mut rng, 1, 16);
        let (mut n, a0, a1, _) = two_segment_network();
        let mut total = 0;
        for _ in 0..count {
            let bytes = in_range(&mut rng, 1, 2048);
            let at = in_range(&mut rng, 0, 100_000);
            n.transfer(a0, a1, bytes, at);
            total += bytes;
        }
        let seg = n.segment_of(a0);
        assert_eq!(n.segment_stats(seg).bytes, total);
    }
}
