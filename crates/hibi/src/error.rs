//! Error type for the HIBI simulator.

use std::fmt;

/// Errors produced while building or driving a HIBI network.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum HibiError {
    /// Two wrappers declared the same bus address.
    DuplicateAddress {
        /// The clashing address.
        address: u64,
    },
    /// The segment graph is disconnected: no route between two agents.
    NoRoute {
        /// Source agent address.
        from: u64,
        /// Destination agent address.
        to: u64,
    },
    /// A configuration value is out of range.
    BadConfig(String),
}

impl fmt::Display for HibiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HibiError::DuplicateAddress { address } => {
                write!(f, "duplicate wrapper address {address:#x}")
            }
            HibiError::NoRoute { from, to } => {
                write!(f, "no route from agent {from:#x} to agent {to:#x}")
            }
            HibiError::BadConfig(msg) => write!(f, "bad hibi configuration: {msg}"),
        }
    }
}

impl std::error::Error for HibiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HibiError::DuplicateAddress { address: 0x20 };
        assert!(e.to_string().contains("0x20"));
        let e = HibiError::NoRoute { from: 1, to: 2 };
        assert!(e.to_string().contains("no route"));
    }
}
