//! Per-segment transfer statistics.

/// Counters accumulated per segment during transfer scheduling; read them
/// back with [`crate::Network::segment_stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SegmentStats {
    /// Number of (burst) reservations granted.
    pub reservations: u64,
    /// Total payload bytes moved across the segment.
    pub bytes: u64,
    /// Total nanoseconds the segment was occupied by data beats.
    pub busy_ns: u64,
    /// Total nanoseconds transfers waited for the segment to become free
    /// (queueing delay).
    pub wait_ns: u64,
    /// Total nanoseconds spent on arbitration overhead (and TDMA slot
    /// alignment).
    pub arbitration_ns: u64,
}

impl SegmentStats {
    /// Utilisation of the segment over `horizon_ns` of simulated time, in
    /// `[0, 1]`.
    pub fn utilisation(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / horizon_ns as f64
    }

    /// Mean queueing delay per reservation in nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.reservations == 0 {
            return 0.0;
        }
        self.wait_ns as f64 / self.reservations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_and_wait() {
        let stats = SegmentStats {
            reservations: 4,
            bytes: 1024,
            busy_ns: 500,
            wait_ns: 100,
            arbitration_ns: 20,
        };
        assert!((stats.utilisation(1000) - 0.5).abs() < 1e-12);
        assert!((stats.mean_wait_ns() - 25.0).abs() < 1e-12);
        assert_eq!(SegmentStats::default().mean_wait_ns(), 0.0);
        assert_eq!(SegmentStats::default().utilisation(0), 0.0);
    }
}
