//! Network topology: segments, wrappers (agents), and bridges.

use std::collections::VecDeque;
use std::fmt;

use crate::error::HibiError;
use crate::stats::SegmentStats;

/// Identifies a segment in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentId(pub(crate) u32);

impl SegmentId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Identifies an agent (a wrapper attaching one processing element) in a
/// [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AgentId(pub(crate) u32);

impl AgentId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// Arbitration schemes of a segment (the `Arbitration` tagged value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Arbitration {
    /// Fixed priority: the lowest wrapper address wins (paper default).
    #[default]
    Priority,
    /// Round-robin among requesting agents.
    RoundRobin,
    /// Time-division multiple access with a fixed slot schedule.
    Tdma,
}

impl Arbitration {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Arbitration::Priority => "priority",
            Arbitration::RoundRobin => "round-robin",
            Arbitration::Tdma => "tdma",
        }
    }
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one bus segment (Table 3, `«CommunicationSegment»` /
/// `«HIBISegment»`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentConfig {
    /// Data width in bits; one word of this width moves per bus cycle.
    pub data_width_bits: u32,
    /// Clock frequency in MHz.
    pub frequency_mhz: u32,
    /// Arbitration scheme.
    pub arbitration: Arbitration,
    /// TDMA slot count (only meaningful with [`Arbitration::Tdma`]; 0
    /// falls back to the agent count at build time).
    pub tdma_slots: u32,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            data_width_bits: 32,
            frequency_mhz: 50,
            arbitration: Arbitration::Priority,
            tdma_slots: 0,
        }
    }
}

impl SegmentConfig {
    /// Nanoseconds per bus cycle.
    pub fn cycle_ns(&self) -> u64 {
        (1000 / self.frequency_mhz.max(1)).max(1) as u64
    }

    /// Bytes carried per bus cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        u64::from(self.data_width_bits / 8).max(1)
    }
}

/// Configuration of one wrapper (Table 3, `«CommunicationWrapper»` /
/// `«HIBIWrapper»`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WrapperConfig {
    /// Bus address of the wrapper; must be network-unique.
    pub address: u64,
    /// Buffer size in words (bounds a burst the wrapper can absorb without
    /// back-pressure).
    pub buffer_size: u32,
    /// Maximum consecutive cycles the wrapper may hold the segment before
    /// re-arbitrating (burst split).
    pub max_time: u32,
}

impl WrapperConfig {
    /// A wrapper with the given address and the paper-ish defaults
    /// (8-word buffers, 16-cycle reservation limit).
    pub fn new(address: u64) -> WrapperConfig {
        WrapperConfig {
            address,
            buffer_size: 8,
            max_time: 16,
        }
    }

    /// Sets the buffer size, builder-style.
    pub fn buffer(mut self, words: u32) -> WrapperConfig {
        self.buffer_size = words;
        self
    }

    /// Sets the reservation limit, builder-style.
    pub fn max_time(mut self, cycles: u32) -> WrapperConfig {
        self.max_time = cycles;
        self
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Segment {
    pub(crate) name: String,
    pub(crate) config: SegmentConfig,
    pub(crate) agents: Vec<AgentId>,
    /// Earliest time the segment is free for a new reservation.
    pub(crate) free_at_ns: u64,
    /// Round-robin pointer (index into `agents`).
    pub(crate) rr_next: usize,
    pub(crate) stats: SegmentStats,
}

#[derive(Clone, Debug)]
pub(crate) struct Agent {
    pub(crate) segment: SegmentId,
    pub(crate) config: WrapperConfig,
}

/// A bridge joining two segments (store-and-forward, one word buffered).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BridgeConfig {
    /// Store-and-forward latency in nanoseconds added per crossing.
    pub latency_ns: u64,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig { latency_ns: 40 }
    }
}

/// Builder for a [`Network`].
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    segments: Vec<Segment>,
    agents: Vec<Agent>,
    bridges: Vec<(SegmentId, SegmentId, BridgeConfig)>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Adds a segment.
    pub fn add_segment(&mut self, name: impl Into<String>, config: SegmentConfig) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment {
            name: name.into(),
            config,
            agents: Vec::new(),
            free_at_ns: 0,
            rr_next: 0,
            stats: SegmentStats::default(),
        });
        id
    }

    /// Attaches an agent (wrapper) to a segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment` was not created by this builder.
    pub fn add_agent(&mut self, segment: SegmentId, config: WrapperConfig) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.segments[segment.index()].agents.push(id);
        self.agents.push(Agent { segment, config });
        id
    }

    /// Joins two segments with a bridge.
    pub fn add_bridge(&mut self, a: SegmentId, b: SegmentId, config: BridgeConfig) {
        self.bridges.push((a, b, config));
    }

    /// Finalises the network.
    ///
    /// # Errors
    ///
    /// * [`HibiError::DuplicateAddress`] if two wrappers share an address.
    /// * [`HibiError::BadConfig`] for zero-width segments or zero
    ///   `max_time` wrappers.
    pub fn build(self) -> Result<Network, HibiError> {
        let mut seen = std::collections::HashSet::new();
        for agent in &self.agents {
            if !seen.insert(agent.config.address) {
                return Err(HibiError::DuplicateAddress {
                    address: agent.config.address,
                });
            }
            if agent.config.max_time == 0 {
                return Err(HibiError::BadConfig(
                    "wrapper max_time must be at least 1 cycle".into(),
                ));
            }
        }
        for segment in &self.segments {
            if segment.config.data_width_bits < 8 {
                return Err(HibiError::BadConfig(format!(
                    "segment `{}` data width must be at least 8 bits",
                    segment.name
                )));
            }
            if segment.config.frequency_mhz == 0 {
                return Err(HibiError::BadConfig(format!(
                    "segment `{}` frequency must be non-zero",
                    segment.name
                )));
            }
        }
        // Precompute segment-level routing (BFS over the bridge graph).
        let n = self.segments.len();
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b, cfg) in &self.bridges {
            adjacency[a.index()].push((b, cfg));
            adjacency[b.index()].push((a, cfg));
        }
        let mut next_hop = vec![vec![None; n]; n];
        let mut hop_latency = vec![vec![0u64; n]; n];
        for start in 0..n {
            // BFS from `start`; record the first hop towards every target.
            let mut visited = vec![false; n];
            let mut queue = VecDeque::from([start]);
            visited[start] = true;
            let mut parent: Vec<Option<(usize, u64)>> = vec![None; n];
            while let Some(seg) = queue.pop_front() {
                for &(peer, cfg) in &adjacency[seg] {
                    if !visited[peer.index()] {
                        visited[peer.index()] = true;
                        parent[peer.index()] = Some((seg, cfg.latency_ns));
                        queue.push_back(peer.index());
                    }
                }
            }
            for target in 0..n {
                if target == start || !visited[target] {
                    continue;
                }
                // Walk back from target to start to find the first hop.
                let mut current = target;
                let mut hops = Vec::new();
                while current != start {
                    let (prev, latency) = parent[current].expect("visited node has parent");
                    hops.push((current, latency));
                    current = prev;
                }
                let &(first, latency) = hops.last().expect("target != start");
                next_hop[start][target] = Some(SegmentId(first as u32));
                hop_latency[start][target] = latency;
            }
        }
        Ok(Network {
            segments: self.segments,
            agents: self.agents,
            next_hop,
            hop_latency,
            unroutable: 0,
        })
    }
}

/// A built HIBI network; drive it with
/// [`Network::transfer`](crate::transfer) and read statistics back with
/// [`Network::segment_stats`].
#[derive(Clone, Debug)]
pub struct Network {
    pub(crate) segments: Vec<Segment>,
    pub(crate) agents: Vec<Agent>,
    /// `next_hop[a][b]` = first segment after `a` on the route to `b`.
    pub(crate) next_hop: Vec<Vec<Option<SegmentId>>>,
    pub(crate) hop_latency: Vec<Vec<u64>>,
    /// Transfers that found no route and fell back to local delivery.
    pub(crate) unroutable: u64,
}

impl Network {
    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The segment an agent is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `agent` does not belong to this network.
    pub fn segment_of(&self, agent: AgentId) -> SegmentId {
        self.agents[agent.index()].segment
    }

    /// The bus address of an agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` does not belong to this network.
    pub fn address_of(&self, agent: AgentId) -> u64 {
        self.agents[agent.index()].config.address
    }

    /// Finds an agent by bus address.
    pub fn agent_by_address(&self, address: u64) -> Option<AgentId> {
        self.agents
            .iter()
            .position(|a| a.config.address == address)
            .map(|i| AgentId(i as u32))
    }

    /// The ordered list of segments a transfer from `from` to `to`
    /// traverses (both endpoints' segments included).
    ///
    /// # Errors
    ///
    /// Returns [`HibiError::NoRoute`] when the segments are disconnected.
    pub fn route(&self, from: AgentId, to: AgentId) -> Result<Vec<SegmentId>, HibiError> {
        let start = self.segment_of(from);
        let goal = self.segment_of(to);
        let mut route = vec![start];
        let mut current = start;
        while current != goal {
            match self.next_hop[current.index()][goal.index()] {
                Some(next) => {
                    route.push(next);
                    current = next;
                    if route.len() > self.segments.len() {
                        return Err(HibiError::NoRoute {
                            from: self.address_of(from),
                            to: self.address_of(to),
                        });
                    }
                }
                None => {
                    return Err(HibiError::NoRoute {
                        from: self.address_of(from),
                        to: self.address_of(to),
                    })
                }
            }
        }
        Ok(route)
    }

    /// Statistics gathered by the transfers on one segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment` does not belong to this network.
    pub fn segment_stats(&self, segment: SegmentId) -> &SegmentStats {
        &self.segments[segment.index()].stats
    }

    /// The segment's display name.
    ///
    /// # Panics
    ///
    /// Panics if `segment` does not belong to this network.
    pub fn segment_name(&self, segment: SegmentId) -> &str {
        &self.segments[segment.index()].name
    }

    /// Number of transfers that found no route between their endpoints
    /// and fell back to free local delivery. A non-zero count means the
    /// platform model is broken (disconnected segments) and every
    /// affected transfer was costed as if it were local.
    pub fn unroutable_transfers(&self) -> u64 {
        self.unroutable
    }

    /// Resets the reservation clock and statistics (fresh simulation run).
    pub fn reset(&mut self) {
        for segment in &mut self.segments {
            segment.free_at_ns = 0;
            segment.rr_next = 0;
            segment.stats = SegmentStats::default();
        }
        self.unroutable = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_segment_network() -> (Network, AgentId, AgentId, AgentId) {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_segment("s0", SegmentConfig::default());
        let s1 = b.add_segment("s1", SegmentConfig::default());
        let a0 = b.add_agent(s0, WrapperConfig::new(0x10));
        let a1 = b.add_agent(s0, WrapperConfig::new(0x20));
        let a2 = b.add_agent(s1, WrapperConfig::new(0x30));
        b.add_bridge(s0, s1, BridgeConfig::default());
        (b.build().unwrap(), a0, a1, a2)
    }

    #[test]
    fn build_validates_addresses() {
        let mut b = NetworkBuilder::new();
        let s = b.add_segment("s", SegmentConfig::default());
        b.add_agent(s, WrapperConfig::new(1));
        b.add_agent(s, WrapperConfig::new(1));
        assert!(matches!(
            b.build(),
            Err(HibiError::DuplicateAddress { address: 1 })
        ));
    }

    #[test]
    fn build_validates_config() {
        let mut b = NetworkBuilder::new();
        let s = b.add_segment(
            "s",
            SegmentConfig {
                data_width_bits: 4,
                ..SegmentConfig::default()
            },
        );
        b.add_agent(s, WrapperConfig::new(1));
        assert!(matches!(b.build(), Err(HibiError::BadConfig(_))));

        let mut b = NetworkBuilder::new();
        let s = b.add_segment("s", SegmentConfig::default());
        b.add_agent(s, WrapperConfig::new(1).max_time(0));
        assert!(matches!(b.build(), Err(HibiError::BadConfig(_))));
    }

    #[test]
    fn routes_within_and_across_segments() {
        let (network, a0, a1, a2) = two_segment_network();
        assert_eq!(network.route(a0, a1).unwrap().len(), 1);
        let cross = network.route(a0, a2).unwrap();
        assert_eq!(cross.len(), 2);
        assert_eq!(cross[0], network.segment_of(a0));
        assert_eq!(cross[1], network.segment_of(a2));
    }

    #[test]
    fn disconnected_segments_have_no_route() {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_segment("s0", SegmentConfig::default());
        let s1 = b.add_segment("s1", SegmentConfig::default());
        let a0 = b.add_agent(s0, WrapperConfig::new(1));
        let a1 = b.add_agent(s1, WrapperConfig::new(2));
        let network = b.build().unwrap();
        assert!(matches!(
            network.route(a0, a1),
            Err(HibiError::NoRoute { .. })
        ));
    }

    #[test]
    fn three_segment_chain_routes_through_middle() {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_segment("s0", SegmentConfig::default());
        let bridge_seg = b.add_segment("bridge", SegmentConfig::default());
        let s2 = b.add_segment("s2", SegmentConfig::default());
        let a0 = b.add_agent(s0, WrapperConfig::new(1));
        let a1 = b.add_agent(s2, WrapperConfig::new(2));
        b.add_bridge(s0, bridge_seg, BridgeConfig::default());
        b.add_bridge(bridge_seg, s2, BridgeConfig::default());
        let network = b.build().unwrap();
        let route = network.route(a0, a1).unwrap();
        assert_eq!(route.len(), 3);
        assert_eq!(network.segment_name(route[1]), "bridge");
    }

    #[test]
    fn address_lookup() {
        let (network, a0, ..) = two_segment_network();
        assert_eq!(network.agent_by_address(0x10), Some(a0));
        assert_eq!(network.agent_by_address(0x99), None);
        assert_eq!(network.address_of(a0), 0x10);
    }

    #[test]
    fn segment_config_units() {
        let cfg = SegmentConfig {
            data_width_bits: 32,
            frequency_mhz: 100,
            ..SegmentConfig::default()
        };
        assert_eq!(cfg.cycle_ns(), 10);
        assert_eq!(cfg.bytes_per_cycle(), 4);
    }
}
