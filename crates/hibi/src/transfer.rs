//! Reservation-based transfer timing across the network.
//!
//! The co-simulation path: when the discrete-event simulator delivers a
//! signal between processes mapped to different processing elements, it
//! asks the network when the payload lands. [`Network::transfer`] routes
//! the payload across the segment graph and reserves each segment in
//! order, modelling:
//!
//! * **queueing** — a segment busy with an earlier transfer delays later
//!   ones (`free_at_ns` per segment);
//! * **arbitration overhead** — one bus cycle for priority (the paper's
//!   default), two for round-robin (grant rotation), and slot alignment
//!   for TDMA;
//! * **burst splitting** — a transfer longer than the sender wrapper's
//!   `MaxTime` re-arbitrates between bursts;
//! * **bridge store-and-forward** — fixed latency per segment crossing.
//!
//! The cycle-accurate single-segment behaviour (who wins under
//! contention, fairness) is modelled separately in [`crate::arbiter`];
//! this layer is deliberately a timing envelope, which is what the
//! profiling flow of the paper needs.

use tut_trace::{Clock, NoopSink, TraceSink};

use crate::topology::{AgentId, Arbitration, Network};

/// The outcome of scheduling one transfer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransferResult {
    /// Simulation time at which the last byte arrives at the destination
    /// wrapper.
    pub completion_ns: u64,
    /// Total queueing delay suffered across all traversed segments.
    pub queued_ns: u64,
    /// Number of segments traversed (1 = same-segment transfer).
    pub segments_traversed: u32,
    /// Number of bursts the transfer was split into on the first segment.
    pub bursts: u32,
    /// `false` when no route existed between the endpoints and the
    /// transfer fell back to free local delivery; such transfers are
    /// tallied in [`Network::unroutable_transfers`].
    pub routed: bool,
}

impl Network {
    /// Schedules a `bytes`-byte transfer from `from` to `to`, submitted at
    /// `now_ns`, and returns its timing. Per-segment statistics are
    /// accumulated (see [`Network::segment_stats`]).
    ///
    /// Transfers between two agents on the same wrapper (i.e. `from ==
    /// to`) complete immediately — local communication never touches the
    /// bus, matching the paper's motivation for grouping communicating
    /// processes onto the same processing element.
    ///
    /// # Panics
    ///
    /// Panics if either agent does not belong to this network. Routing
    /// failures (disconnected segments) are reported by
    /// [`Network::route`]; this method falls back to treating unroutable
    /// transfers as local (zero cost) so a broken platform model cannot
    /// wedge a simulation — but the fallback is not silent: the result
    /// carries `routed: false`, the network tallies it
    /// ([`Network::unroutable_transfers`]), and a
    /// `hibi.unroutable_transfers` counter is traced.
    pub fn transfer(
        &mut self,
        from: AgentId,
        to: AgentId,
        bytes: u64,
        now_ns: u64,
    ) -> TransferResult {
        self.transfer_with(from, to, bytes, now_ns, &mut NoopSink)
    }

    /// [`Network::transfer`] with tracing: every traversed segment gets
    /// `arb` and `busy` spans on its `hibi/<segment>` track (simulated
    /// clock), plus `hibi.<segment>.{busy,wait,arbitration}_ns` counter
    /// metrics — the per-segment utilisation view of the paper's
    /// communication profiling.
    pub fn transfer_with<T: TraceSink>(
        &mut self,
        from: AgentId,
        to: AgentId,
        bytes: u64,
        now_ns: u64,
        tracer: &mut T,
    ) -> TransferResult {
        if from == to || bytes == 0 {
            return TransferResult {
                completion_ns: now_ns,
                queued_ns: 0,
                segments_traversed: 0,
                bursts: 0,
                routed: true,
            };
        }
        let Ok(route) = self.route(from, to) else {
            // Fall back to free local delivery so a broken platform
            // model cannot wedge the simulation — but make it visible:
            // count it and flag the result.
            self.unroutable += 1;
            tracer.add("hibi.unroutable_transfers", 1);
            return TransferResult {
                completion_ns: now_ns,
                queued_ns: 0,
                segments_traversed: 0,
                bursts: 0,
                routed: false,
            };
        };
        let sender = self.agents[from.index()].config;
        let mut time = now_ns;
        let mut queued_total = 0;
        let mut first_bursts = 0;
        for (hop, &segment_id) in route.iter().enumerate() {
            let hop_latency = if hop == 0 {
                0
            } else {
                self.hop_latency[route[hop - 1].index()][segment_id.index()]
            };
            time += hop_latency;

            let track = if tracer.enabled() {
                let name = format!("hibi/{}", self.segments[segment_id.index()].name);
                Some(tracer.track(&name, Clock::Sim))
            } else {
                None
            };
            let segment = &mut self.segments[segment_id.index()];
            let cfg = segment.config;
            let cycle = cfg.cycle_ns();
            let words = bytes.div_ceil(cfg.bytes_per_cycle());
            let burst_words = u64::from(sender.max_time).max(1);
            let bursts = words.div_ceil(burst_words);

            // Queueing: wait for the segment to free up.
            let start = time.max(segment.free_at_ns);
            let waited = start - time;

            // Arbitration overhead per burst.
            let arb_per_burst = match cfg.arbitration {
                Arbitration::Priority => cycle,
                Arbitration::RoundRobin => 2 * cycle,
                Arbitration::Tdma => {
                    // Wait for the sender's slot: slots rotate every
                    // `max_time` cycles among `tdma_slots` agents.
                    let slots = u64::from(cfg.tdma_slots.max(1));
                    let slot_len = u64::from(sender.max_time) * cycle;
                    let frame = slots * slot_len;
                    let my_slot = sender.address % slots;
                    let offset = (start + frame) % frame;
                    let slot_start = my_slot * slot_len;
                    let align = if offset <= slot_start {
                        slot_start - offset
                    } else {
                        frame - offset + slot_start
                    };
                    align / bursts.max(1) + cycle
                }
            };
            let arbitration = arb_per_burst * bursts;
            let busy = words * cycle;
            let done = start + arbitration + busy;

            segment.free_at_ns = done;
            segment.stats.reservations += bursts;
            segment.stats.bytes += bytes;
            segment.stats.busy_ns += busy;
            segment.stats.wait_ns += waited;
            segment.stats.arbitration_ns += arbitration;

            if let Some(track) = track {
                let name = &self.segments[segment_id.index()].name;
                if arbitration > 0 {
                    tracer.span(track, "arb", start, arbitration);
                }
                tracer.span(track, "busy", start + arbitration, busy);
                tracer.add(&format!("hibi.{name}.busy_ns"), busy);
                tracer.add(&format!("hibi.{name}.wait_ns"), waited);
                tracer.add(&format!("hibi.{name}.arbitration_ns"), arbitration);
                tracer.observe("hibi.segment_wait_ns", waited);
            }

            queued_total += waited;
            if hop == 0 {
                first_bursts = bursts as u32;
            }
            time = done;
        }
        TransferResult {
            completion_ns: time,
            queued_ns: queued_total,
            segments_traversed: route.len() as u32,
            bursts: first_bursts,
            routed: true,
        }
    }

    /// Estimates the unloaded latency of a transfer (no queueing), without
    /// mutating statistics. Used for static analysis in the exploration
    /// tools.
    pub fn unloaded_latency_ns(&self, from: AgentId, to: AgentId, bytes: u64) -> u64 {
        if from == to || bytes == 0 {
            return 0;
        }
        let Ok(route) = self.route(from, to) else {
            return 0;
        };
        let sender = self.agents[from.index()].config;
        let mut total = 0;
        for (hop, &segment_id) in route.iter().enumerate() {
            if hop > 0 {
                total += self.hop_latency[route[hop - 1].index()][segment_id.index()];
            }
            let cfg = self.segments[segment_id.index()].config;
            let cycle = cfg.cycle_ns();
            let words = bytes.div_ceil(cfg.bytes_per_cycle());
            let bursts = words.div_ceil(u64::from(sender.max_time).max(1));
            let arb = match cfg.arbitration {
                Arbitration::Priority => cycle,
                Arbitration::RoundRobin => 2 * cycle,
                Arbitration::Tdma => cycle,
            };
            total += words * cycle + bursts * arb;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{BridgeConfig, NetworkBuilder, SegmentConfig, WrapperConfig};

    fn single_segment(arbitration: Arbitration) -> (Network, AgentId, AgentId) {
        let mut b = NetworkBuilder::new();
        let s = b.add_segment(
            "s",
            SegmentConfig {
                data_width_bits: 32,
                frequency_mhz: 100, // 10 ns cycle, 4 bytes/cycle
                arbitration,
                tdma_slots: 4,
            },
        );
        let a0 = b.add_agent(s, WrapperConfig::new(0).max_time(16));
        let a1 = b.add_agent(s, WrapperConfig::new(1).max_time(16));
        (b.build().unwrap(), a0, a1)
    }

    #[test]
    fn local_transfer_is_free() {
        let (mut n, a0, _) = single_segment(Arbitration::Priority);
        let r = n.transfer(a0, a0, 1024, 500);
        assert_eq!(r.completion_ns, 500);
        assert_eq!(r.segments_traversed, 0);
    }

    #[test]
    fn single_segment_latency_scales_with_bytes() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        // 64 bytes = 16 words = 160 ns busy + 10 ns arbitration.
        let r = n.transfer(a0, a1, 64, 0);
        assert_eq!(r.completion_ns, 170);
        assert_eq!(r.bursts, 1);
        n.reset();
        let r2 = n.transfer(a0, a1, 128, 0);
        assert!(r2.completion_ns > 170, "double the bytes takes longer");
    }

    #[test]
    fn bursts_split_on_max_time() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        // 256 bytes = 64 words, max_time 16 -> 4 bursts.
        let r = n.transfer(a0, a1, 256, 0);
        assert_eq!(r.bursts, 4);
        // 4 bursts x 10ns arb + 64 words x 10ns = 680.
        assert_eq!(r.completion_ns, 680);
    }

    #[test]
    fn queueing_delays_second_transfer() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        let first = n.transfer(a0, a1, 64, 0);
        let second = n.transfer(a1, a0, 64, 0);
        assert!(second.queued_ns > 0);
        assert!(second.completion_ns > first.completion_ns);
        let stats = n.segment_stats(n.segment_of(a0));
        assert_eq!(stats.bytes, 128);
        assert_eq!(stats.wait_ns, second.queued_ns);
    }

    #[test]
    fn round_robin_costs_more_arbitration_than_priority() {
        let (mut p, a0, a1) = single_segment(Arbitration::Priority);
        let (mut rr, b0, b1) = single_segment(Arbitration::RoundRobin);
        let rp = p.transfer(a0, a1, 64, 0);
        let rrr = rr.transfer(b0, b1, 64, 0);
        assert!(rrr.completion_ns > rp.completion_ns);
    }

    #[test]
    fn tdma_aligns_to_slots() {
        let (mut n, a0, a1) = single_segment(Arbitration::Tdma);
        // Agent 0 owns slot 0; a transfer submitted at time 0 starts with
        // at most one slot-alignment penalty.
        let r0 = n.transfer(a0, a1, 64, 0);
        n.reset();
        // Agent 1 owns slot 1 and must wait for its slot.
        let r1 = n.transfer(a1, a0, 64, 0);
        assert!(r1.completion_ns >= r0.completion_ns);
    }

    #[test]
    fn bridge_adds_latency() {
        let mut b = NetworkBuilder::new();
        let s0 = b.add_segment("s0", SegmentConfig::default());
        let s1 = b.add_segment("s1", SegmentConfig::default());
        let a0 = b.add_agent(s0, WrapperConfig::new(0));
        let a1 = b.add_agent(s0, WrapperConfig::new(1));
        let a2 = b.add_agent(s1, WrapperConfig::new(2));
        b.add_bridge(s0, s1, BridgeConfig { latency_ns: 1000 });
        let mut n = b.build().unwrap();
        let local = n.transfer(a0, a1, 64, 0);
        n.reset();
        let remote = n.transfer(a0, a2, 64, 0);
        assert!(
            remote.completion_ns >= local.completion_ns + 1000,
            "crossing the bridge must add its latency: {} vs {}",
            remote.completion_ns,
            local.completion_ns
        );
        assert_eq!(remote.segments_traversed, 2);
    }

    #[test]
    fn unloaded_latency_matches_uncontended_transfer() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        let estimate = n.unloaded_latency_ns(a0, a1, 64);
        let actual = n.transfer(a0, a1, 64, 0);
        assert_eq!(estimate, actual.completion_ns);
    }

    #[test]
    fn stats_reset() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        n.transfer(a0, a1, 64, 0);
        assert!(n.segment_stats(n.segment_of(a0)).bytes > 0);
        n.reset();
        assert_eq!(n.segment_stats(n.segment_of(a0)).bytes, 0);
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let (mut n, a0, a1) = single_segment(Arbitration::Priority);
        let r = n.transfer(a0, a1, 0, 42);
        assert_eq!(r.completion_ns, 42);
        assert!(r.routed);
    }

    #[test]
    fn unroutable_transfer_is_counted_not_silent() {
        // Two disconnected segments: the fallback must be visible.
        let mut b = NetworkBuilder::new();
        let s0 = b.add_segment("s0", SegmentConfig::default());
        let s1 = b.add_segment("s1", SegmentConfig::default());
        let a0 = b.add_agent(s0, WrapperConfig::new(0));
        let a1 = b.add_agent(s1, WrapperConfig::new(1));
        let mut n = b.build().unwrap();

        let mut recorder = tut_trace::Recorder::new();
        let r = n.transfer_with(a0, a1, 64, 7, &mut recorder);
        assert_eq!(r.completion_ns, 7, "fallback stays free");
        assert!(!r.routed);
        assert_eq!(n.unroutable_transfers(), 1);
        assert_eq!(
            recorder.metrics.counter("hibi.unroutable_transfers"),
            Some(1)
        );

        n.reset();
        assert_eq!(n.unroutable_transfers(), 0, "reset clears the tally");
    }
}
