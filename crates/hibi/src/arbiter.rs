//! Cycle-accurate single-segment arbitration.
//!
//! The reservation model in [`crate::transfer`] summarises arbitration as
//! a per-burst overhead. This module simulates a single segment cycle by
//! cycle under contention, so the three `Arbitration` schemes of Table 3
//! can be compared head-to-head (bench A1) and the overhead constants
//! validated.

use crate::topology::Arbitration;

/// A bus arbiter: given the set of requesting agents, picks at most one
/// winner per arbitration round.
pub trait Arbiter: Send {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Picks the winning agent index among `requests` (true = requesting)
    /// at the given bus cycle, or `None` if no grant is possible.
    fn grant(&mut self, cycle: u64, requests: &[bool]) -> Option<usize>;

    /// Extra idle cycles an agent pays on every fresh grant — acquiring
    /// the bus and re-acquiring it after its hold expires, even when the
    /// same agent wins again.
    fn overhead_cycles(&self) -> u64 {
        1
    }

    /// The longest a grant issued at `cycle` may hold the bus before the
    /// scheme forces re-arbitration (on top of the workload's `max_time`).
    /// Unlimited by default; TDMA clamps to the remaining slot cycles.
    fn max_hold(&self, _cycle: u64) -> u64 {
        u64::MAX
    }

    /// Whether `agent` is allowed to put a word on the bus at `cycle`.
    /// Always true except for slot-owned schemes (TDMA).
    fn may_transmit(&self, _cycle: u64, _agent: usize) -> bool {
        true
    }
}

/// Fixed-priority arbitration: the lowest agent index (lowest wrapper
/// address) always wins.
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityArbiter;

impl Arbiter for PriorityArbiter {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn grant(&mut self, _cycle: u64, requests: &[bool]) -> Option<usize> {
        requests.iter().position(|&r| r)
    }
}

/// Round-robin arbitration: the grant pointer rotates past the last
/// winner.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinArbiter {
    next: usize,
}

impl Arbiter for RoundRobinArbiter {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn grant(&mut self, _cycle: u64, requests: &[bool]) -> Option<usize> {
        let n = requests.len();
        for offset in 0..n {
            let candidate = (self.next + offset) % n;
            if requests[candidate] {
                self.next = (candidate + 1) % n;
                return Some(candidate);
            }
        }
        None
    }

    fn overhead_cycles(&self) -> u64 {
        2
    }
}

/// TDMA arbitration: cycle time is divided into fixed slots owned by the
/// agents in turn; an agent may only transmit during its own slot.
#[derive(Clone, Copy, Debug)]
pub struct TdmaArbiter {
    /// Length of one slot in cycles.
    pub slot_cycles: u64,
    /// Number of slots in the schedule (= number of agents it serves).
    pub slots: usize,
}

impl Arbiter for TdmaArbiter {
    fn name(&self) -> &'static str {
        "tdma"
    }

    fn grant(&mut self, cycle: u64, requests: &[bool]) -> Option<usize> {
        let owner = ((cycle / self.slot_cycles) as usize) % self.slots;
        (owner < requests.len() && requests[owner]).then_some(owner)
    }

    fn overhead_cycles(&self) -> u64 {
        0
    }

    fn max_hold(&self, cycle: u64) -> u64 {
        // A grant landing mid-slot must stop at the slot boundary, not
        // `max_time` cycles later in the next agent's slot.
        self.slot_cycles - cycle % self.slot_cycles
    }

    fn may_transmit(&self, cycle: u64, agent: usize) -> bool {
        ((cycle / self.slot_cycles) as usize) % self.slots == agent
    }
}

/// Builds the arbiter for a scheme.
pub fn make_arbiter(kind: Arbitration, agents: usize, slot_cycles: u64) -> Box<dyn Arbiter> {
    match kind {
        Arbitration::Priority => Box::new(PriorityArbiter),
        Arbitration::RoundRobin => Box::new(RoundRobinArbiter::default()),
        Arbitration::Tdma => Box::new(TdmaArbiter {
            slot_cycles: slot_cycles.max(1),
            slots: agents.max(1),
        }),
    }
}

/// Workload for the contention simulator: every agent injects a
/// fixed-size burst periodically.
#[derive(Clone, Copy, Debug)]
pub struct ContentionConfig {
    /// Number of agents on the segment.
    pub agents: usize,
    /// Simulated bus cycles.
    pub cycles: u64,
    /// Words per injected burst.
    pub burst_words: u64,
    /// Cycles between injections per agent (equal offered load per
    /// agent).
    pub period_cycles: u64,
    /// Maximum consecutive cycles one grant may hold the bus.
    pub max_time: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            agents: 4,
            cycles: 100_000,
            burst_words: 16,
            period_cycles: 100,
            max_time: 16,
        }
    }
}

/// Per-agent outcome of a contention run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentOutcome {
    /// Bursts fully transmitted.
    pub bursts_served: u64,
    /// Words transmitted.
    pub words: u64,
    /// Sum of per-burst waiting times (arrival to first word), in cycles.
    pub total_wait_cycles: u64,
    /// Worst-case per-burst waiting time in cycles.
    pub max_wait_cycles: u64,
}

impl AgentOutcome {
    /// Mean waiting time per served burst.
    pub fn mean_wait(&self) -> f64 {
        if self.bursts_served == 0 {
            0.0
        } else {
            self.total_wait_cycles as f64 / self.bursts_served as f64
        }
    }
}

/// Aggregate outcome of a contention run.
#[derive(Clone, Debug)]
pub struct ContentionReport {
    /// Scheme simulated.
    pub scheme: Arbitration,
    /// Per-agent outcomes.
    pub agents: Vec<AgentOutcome>,
    /// Total words moved.
    pub total_words: u64,
    /// Bus utilisation in `[0, 1]`.
    pub utilisation: f64,
    /// Jain fairness index over per-agent throughput, in `(0, 1]`.
    pub fairness: f64,
}

impl ContentionReport {
    /// Mean waiting time across all served bursts.
    pub fn mean_wait(&self) -> f64 {
        let bursts: u64 = self.agents.iter().map(|a| a.bursts_served).sum();
        if bursts == 0 {
            return 0.0;
        }
        let wait: u64 = self.agents.iter().map(|a| a.total_wait_cycles).sum();
        wait as f64 / bursts as f64
    }

    /// Worst per-burst wait over all agents.
    pub fn max_wait(&self) -> u64 {
        self.agents
            .iter()
            .map(|a| a.max_wait_cycles)
            .max()
            .unwrap_or(0)
    }
}

/// Simulates one segment cycle-by-cycle under the given scheme and
/// workload.
pub fn simulate_contention(scheme: Arbitration, config: ContentionConfig) -> ContentionReport {
    #[derive(Clone, Copy)]
    struct Burst {
        arrived: u64,
        remaining: u64,
        first_word_sent: bool,
    }
    let n = config.agents.max(1);
    let mut arbiter = make_arbiter(scheme, n, config.max_time.max(1));
    let mut queues: Vec<std::collections::VecDeque<Burst>> =
        vec![std::collections::VecDeque::new(); n];
    let mut outcomes = vec![AgentOutcome::default(); n];
    let mut busy_cycles = 0u64;

    // Current bus owner and how long it may still hold the bus.
    let mut owner: Option<usize> = None;
    let mut hold_left = 0u64;
    let mut overhead_left = 0u64;

    for cycle in 0..config.cycles {
        // Periodic injections, staggered so agents don't all arrive at
        // once (agent i offset by i cycles).
        for (agent, queue) in queues.iter_mut().enumerate() {
            if cycle % config.period_cycles == (agent as u64) % config.period_cycles {
                queue.push_back(Burst {
                    arrived: cycle,
                    remaining: config.burst_words,
                    first_word_sent: false,
                });
            }
        }

        if overhead_left > 0 {
            overhead_left -= 1;
            continue;
        }

        // (Re-)arbitrate when the bus has no owner or the hold expired.
        let owner_done = owner
            .map(|o| queues[o].front().is_none() || hold_left == 0)
            .unwrap_or(true);
        if owner_done {
            let requests: Vec<bool> = queues.iter().map(|q| !q.is_empty()).collect();
            owner = arbiter.grant(cycle, &requests);
            hold_left = config.max_time.max(1).min(arbiter.max_hold(cycle));
            // Every fresh grant pays the acquisition overhead, including
            // an agent re-acquiring the bus after its own hold expired.
            if owner.is_some() {
                overhead_left = arbiter.overhead_cycles();
                if overhead_left > 0 {
                    overhead_left -= 1; // this cycle counts as overhead
                    continue;
                }
            }
        }

        // Transmit one word for the owner.
        if let Some(agent) = owner {
            debug_assert!(
                arbiter.may_transmit(cycle, agent),
                "agent {agent} transmitting outside its slot at cycle {cycle}"
            );
            if let Some(burst) = queues[agent].front_mut() {
                if !burst.first_word_sent {
                    burst.first_word_sent = true;
                    let wait = cycle - burst.arrived;
                    outcomes[agent].total_wait_cycles += wait;
                    outcomes[agent].max_wait_cycles = outcomes[agent].max_wait_cycles.max(wait);
                }
                burst.remaining -= 1;
                outcomes[agent].words += 1;
                busy_cycles += 1;
                hold_left = hold_left.saturating_sub(1);
                if burst.remaining == 0 {
                    outcomes[agent].bursts_served += 1;
                    queues[agent].pop_front();
                }
            }
        }
    }

    let total_words: u64 = outcomes.iter().map(|a| a.words).sum();
    let fairness = jain_index(&outcomes.iter().map(|a| a.words as f64).collect::<Vec<_>>());
    ContentionReport {
        scheme,
        agents: outcomes,
        total_words,
        utilisation: busy_cycles as f64 / config.cycles.max(1) as f64,
        fairness,
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 = perfectly fair.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let squares: f64 = values.iter().map(|v| v * v).sum();
    if squares == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * squares)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_always_grants_lowest_index() {
        let mut arb = PriorityArbiter;
        assert_eq!(arb.grant(0, &[false, true, true]), Some(1));
        assert_eq!(arb.grant(1, &[true, true, true]), Some(0));
        assert_eq!(arb.grant(2, &[false, false, false]), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut arb = RoundRobinArbiter::default();
        assert_eq!(arb.grant(0, &[true, true, true]), Some(0));
        assert_eq!(arb.grant(1, &[true, true, true]), Some(1));
        assert_eq!(arb.grant(2, &[true, true, true]), Some(2));
        assert_eq!(arb.grant(3, &[true, true, true]), Some(0));
        // Skips non-requesting agents.
        assert_eq!(arb.grant(4, &[false, false, true]), Some(2));
    }

    #[test]
    fn tdma_respects_slot_ownership() {
        let mut arb = TdmaArbiter {
            slot_cycles: 10,
            slots: 2,
        };
        // Cycles 0..10 belong to agent 0, 10..20 to agent 1.
        assert_eq!(arb.grant(5, &[true, true]), Some(0));
        assert_eq!(arb.grant(15, &[true, true]), Some(1));
        assert_eq!(arb.grant(15, &[true, false]), None);
    }

    #[test]
    fn contention_saturated_bus_serves_all_words_somewhere() {
        let config = ContentionConfig {
            agents: 4,
            cycles: 50_000,
            burst_words: 16,
            period_cycles: 40, // offered load 4*16/40 = 1.6 words/cycle > 1: saturated
            max_time: 16,
        };
        let report = simulate_contention(Arbitration::Priority, config);
        assert!(report.utilisation > 0.9, "saturated bus should be busy");
        // Under priority, agent 0 must starve the others.
        assert!(report.agents[0].words > report.agents[3].words);
        assert!(report.fairness < 0.99);
    }

    #[test]
    fn round_robin_is_fairer_than_priority_under_saturation() {
        let config = ContentionConfig {
            agents: 4,
            cycles: 50_000,
            burst_words: 16,
            period_cycles: 40,
            max_time: 16,
        };
        let prio = simulate_contention(Arbitration::Priority, config);
        let rr = simulate_contention(Arbitration::RoundRobin, config);
        assert!(
            rr.fairness > prio.fairness,
            "round-robin fairness {} should beat priority {}",
            rr.fairness,
            prio.fairness
        );
    }

    #[test]
    fn tdma_bounds_worst_case_wait_under_light_load() {
        let config = ContentionConfig {
            agents: 4,
            cycles: 50_000,
            burst_words: 8,
            period_cycles: 400, // light load
            max_time: 16,
        };
        let tdma = simulate_contention(Arbitration::Tdma, config);
        // Worst case is bounded by one full TDMA frame plus a burst.
        let frame = 16 * 4;
        assert!(
            tdma.max_wait() <= frame + config.burst_words,
            "tdma max wait {} exceeds frame bound {}",
            tdma.max_wait(),
            frame + config.burst_words
        );
    }

    #[test]
    fn light_load_all_schemes_serve_everyone() {
        let config = ContentionConfig {
            agents: 3,
            cycles: 30_000,
            burst_words: 4,
            period_cycles: 300,
            max_time: 8,
        };
        for scheme in [
            Arbitration::Priority,
            Arbitration::RoundRobin,
            Arbitration::Tdma,
        ] {
            let report = simulate_contention(scheme, config);
            for (i, agent) in report.agents.iter().enumerate() {
                assert!(
                    agent.bursts_served > 50,
                    "{scheme}: agent {i} served only {} bursts",
                    agent.bursts_served
                );
            }
            assert!(report.fairness > 0.95, "{scheme} unfair under light load");
        }
    }

    #[test]
    fn tdma_hold_is_clamped_to_the_slot_boundary() {
        let arb = TdmaArbiter {
            slot_cycles: 16,
            slots: 2,
        };
        assert_eq!(arb.max_hold(0), 16, "slot start: the full slot remains");
        assert_eq!(arb.max_hold(10), 6, "mid-slot grant stops at the boundary");
        assert_eq!(arb.max_hold(15), 1, "last slot cycle: one word at most");
        assert_eq!(arb.max_hold(16), 16, "next slot starts fresh");
        assert!(arb.may_transmit(5, 0) && !arb.may_transmit(5, 1));
        assert!(arb.may_transmit(20, 1) && !arb.may_transmit(20, 0));
    }

    /// Regression: a TDMA grant landing mid-slot used to get the full
    /// `max_time` hold and transmit past the slot boundary into the next
    /// agent's slot. The period here makes bursts arrive mid-slot while
    /// the bus is idle, so mis-clamped holds would cross boundaries —
    /// caught by the `may_transmit` debug assertion on every word.
    #[test]
    fn tdma_never_transmits_outside_the_owners_slot() {
        let config = ContentionConfig {
            agents: 2,
            cycles: 40_000,
            burst_words: 16,
            period_cycles: 40, // arrivals drift through the 2*16-cycle frame
            max_time: 16,
        };
        let report = simulate_contention(Arbitration::Tdma, config);
        for (i, agent) in report.agents.iter().enumerate() {
            assert!(agent.bursts_served > 100, "agent {i} must still be served");
        }
        assert!(
            report.fairness > 0.99,
            "equal loads under TDMA stay fair: {}",
            report.fairness
        );
    }

    /// Regression: acquisition overhead used to be charged only when the
    /// winner changed, so a lone saturated agent re-acquiring the bus
    /// after every hold expiry paid nothing. Every fresh grant pays now,
    /// and round-robin's larger overhead (2 vs 1) must show up in both
    /// utilisation and mean wait.
    #[test]
    fn overhead_is_charged_on_every_fresh_grant() {
        let config = ContentionConfig {
            agents: 1,
            cycles: 20_000,
            burst_words: 16,
            period_cycles: 10, // saturated: the agent always has backlog
            max_time: 8,
        };
        let prio = simulate_contention(Arbitration::Priority, config);
        let rr = simulate_contention(Arbitration::RoundRobin, config);
        // Priority: 8 words per 9 cycles; round-robin: 8 per 10.
        assert!(
            prio.utilisation < 0.95,
            "priority must pay 1 overhead cycle per grant: {}",
            prio.utilisation
        );
        assert!(
            rr.utilisation > 0.75 && rr.utilisation < 0.85,
            "round-robin must pay 2 overhead cycles per grant: {}",
            rr.utilisation
        );
        assert!(
            rr.mean_wait() > prio.mean_wait(),
            "the larger round-robin overhead must show up in mean wait: {} vs {}",
            rr.mean_wait(),
            prio.mean_wait()
        );
    }

    #[test]
    fn jain_index_properties() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(jain_index(&[1.0, 0.0, 0.0]) < 0.4);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
