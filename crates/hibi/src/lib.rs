//! A HIBI v2 on-chip interconnection network simulator.
//!
//! The paper's platform communicates over the HIBI bus (Salminen et al.,
//! "HIBI v.2 Interconnection for System-on-Chip" — reference 5 of the
//! paper): processing elements attach to *segments* through *wrappers*,
//! segments join into a hierarchical bus through *bridges*, and each
//! segment arbitrates its agents by priority, round-robin, or a TDMA
//! schedule — exactly the `«CommunicationSegment»` /
//! `«CommunicationWrapper»` parameters of Table 3.
//!
//! Two complementary layers:
//!
//! * [`topology`] + [`transfer`] — the network used during co-simulation:
//!   a reservation-based timing model that routes each transfer across the
//!   segment graph, accounts arbitration overhead, burst splitting
//!   (`MaxTime`), bridge store-and-forward, and per-segment utilisation.
//! * [`arbiter`] — a cycle-accurate single-segment arbitration simulator
//!   used by the arbitration ablation bench and for validating the
//!   overhead constants of the transfer layer.
//!
//! # Example
//!
//! ```
//! use tut_hibi::topology::{NetworkBuilder, SegmentConfig, WrapperConfig};
//!
//! let mut b = NetworkBuilder::new();
//! let seg = b.add_segment("seg0", SegmentConfig::default());
//! let a0 = b.add_agent(seg, WrapperConfig::new(0x10));
//! let a1 = b.add_agent(seg, WrapperConfig::new(0x20));
//! let mut network = b.build()?;
//! let done = network.transfer(a0, a1, 64, 0);
//! assert!(done.completion_ns > 0);
//! # Ok::<(), tut_hibi::HibiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod error;
pub mod stats;
pub mod topology;
pub mod transfer;

pub use error::HibiError;
pub use topology::{
    AgentId, Arbitration, Network, NetworkBuilder, SegmentConfig, SegmentId, WrapperConfig,
};
pub use transfer::TransferResult;
