//! Applying stereotypes to model elements and storing tagged values.

use std::collections::BTreeMap;

use tut_uml::ids::ElementRef;

use crate::error::{ProfileError, Result};
use crate::profile::Profile;
use crate::stereotype::{StereotypeId, TagValue};

/// One stereotype applied to one element, with its tagged values.
#[derive(Clone, PartialEq, Debug)]
pub struct AppliedStereotype {
    /// The applied stereotype.
    pub stereotype: StereotypeId,
    /// Explicitly set tagged values by tag name (defaults are resolved at
    /// query time, not stored).
    pub values: BTreeMap<String, TagValue>,
}

/// The set of stereotype applications for one model.
///
/// Kept separate from the [`tut_uml::Model`] so the base model remains pure
/// UML — exactly the separation the second-class extension mechanism
/// guarantees (§2).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Applications {
    entries: BTreeMap<ElementRef, Vec<AppliedStereotype>>,
}

impl Applications {
    /// Creates an empty application set.
    pub fn new() -> Applications {
        Applications::default()
    }

    /// Applies `stereotype` to `element`.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::MetaclassMismatch`] if the element's metaclass is
    ///   not the one the stereotype extends.
    /// * [`ProfileError::AlreadyApplied`] if it is already applied.
    pub fn apply(
        &mut self,
        profile: &Profile,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
    ) -> Result<()> {
        let element = element.into();
        let st = profile.get(stereotype);
        if st.extends() != element.metaclass() {
            return Err(ProfileError::MetaclassMismatch {
                stereotype: st.name().to_owned(),
                expected: st.extends(),
                found: element.metaclass(),
                element,
            });
        }
        let entry = self.entries.entry(element).or_default();
        if entry.iter().any(|a| a.stereotype == stereotype) {
            return Err(ProfileError::AlreadyApplied {
                stereotype: st.name().to_owned(),
                element,
            });
        }
        entry.push(AppliedStereotype {
            stereotype,
            values: BTreeMap::new(),
        });
        Ok(())
    }

    /// Applies a stereotype and sets tagged values in one call; convenient
    /// for model-building code.
    ///
    /// # Errors
    ///
    /// As [`Applications::apply`] and [`Applications::set_tag`].
    pub fn apply_with(
        &mut self,
        profile: &Profile,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
        tags: impl IntoIterator<Item = (&'static str, TagValue)>,
    ) -> Result<()> {
        let element = element.into();
        self.apply(profile, element, stereotype)?;
        for (name, value) in tags {
            self.set_tag(profile, element, stereotype, name, value)?;
        }
        Ok(())
    }

    /// Sets a tagged value on an applied stereotype.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::NotApplied`] if the stereotype is not applied to
    ///   the element.
    /// * [`ProfileError::UnknownTag`] if the tag is not defined on the
    ///   stereotype or its ancestors.
    /// * [`ProfileError::TagTypeMismatch`] if the value has the wrong type.
    pub fn set_tag(
        &mut self,
        profile: &Profile,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
        tag: &str,
        value: impl Into<TagValue>,
    ) -> Result<()> {
        let element = element.into();
        let value = value.into();
        let st = profile.get(stereotype);
        let def = profile
            .tag_def(stereotype, tag)
            .ok_or_else(|| ProfileError::UnknownTag {
                stereotype: st.name().to_owned(),
                tag: tag.to_owned(),
            })?;
        if !def.tag_type.admits(&value) {
            return Err(ProfileError::TagTypeMismatch {
                stereotype: st.name().to_owned(),
                tag: tag.to_owned(),
                expected: def.tag_type.describe(),
                found: value.type_name().to_owned(),
            });
        }
        let applied = self
            .entries
            .get_mut(&element)
            .and_then(|apps| apps.iter_mut().find(|a| a.stereotype == stereotype))
            .ok_or_else(|| ProfileError::NotApplied {
                stereotype: st.name().to_owned(),
                element,
            })?;
        applied.values.insert(tag.to_owned(), value);
        Ok(())
    }

    /// The stereotypes applied to `element` (empty slice when none).
    pub fn stereotypes_of(&self, element: impl Into<ElementRef>) -> &[AppliedStereotype] {
        self.entries
            .get(&element.into())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if `element` carries `stereotype` or any specialisation of it.
    pub fn has_stereotype(
        &self,
        profile: &Profile,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
    ) -> bool {
        self.stereotypes_of(element)
            .iter()
            .any(|a| profile.is_kind_of(a.stereotype, stereotype))
    }

    /// Returns the explicitly set tagged value, falling back to the tag's
    /// declared default; `None` when the stereotype is not applied, the tag
    /// is unknown, or neither value nor default exists.
    pub fn tag_value<'a>(
        &'a self,
        profile: &'a Profile,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
        tag: &str,
    ) -> Option<&'a TagValue> {
        let applied = self
            .stereotypes_of(element)
            .iter()
            .find(|a| profile.is_kind_of(a.stereotype, stereotype))?;
        if let Some(v) = applied.values.get(tag) {
            return Some(v);
        }
        profile
            .tag_def(applied.stereotype, tag)
            .and_then(|def| def.default.as_ref())
    }

    /// Iterates over every element that carries `stereotype` (or a
    /// specialisation of it).
    pub fn elements_with<'a>(
        &'a self,
        profile: &'a Profile,
        stereotype: StereotypeId,
    ) -> impl Iterator<Item = ElementRef> + 'a {
        self.entries.iter().filter_map(move |(element, apps)| {
            apps.iter()
                .any(|a| profile.is_kind_of(a.stereotype, stereotype))
                .then_some(*element)
        })
    }

    /// Iterates over all `(element, applied)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ElementRef, &AppliedStereotype)> + '_ {
        self.entries
            .iter()
            .flat_map(|(element, apps)| apps.iter().map(move |a| (*element, a)))
    }

    /// Total number of stereotype applications.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True if nothing is applied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every application from `element`, returning how many were
    /// removed. Used by exploration tools when re-stereotyping a model.
    pub fn clear_element(&mut self, element: impl Into<ElementRef>) -> usize {
        self.entries
            .remove(&element.into())
            .map(|v| v.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stereotype::TagType;
    use tut_uml::ids::Metaclass;
    use tut_uml::Model;

    fn setup() -> (Profile, StereotypeId, StereotypeId, Model) {
        let mut p = Profile::new("P");
        let seg = p
            .stereotype("CommunicationSegment", Metaclass::Class)
            .tag_with_default("DataWidth", TagType::Int, 32i64)
            .tag(
                "Arbitration",
                TagType::Enum(vec!["priority".into(), "round-robin".into()]),
            )
            .finish();
        let hibi = p
            .specialize("HIBISegment", seg)
            .tag("Frequency", TagType::Int)
            .finish();
        let model = Model::new("M");
        (p, seg, hibi, model)
    }

    #[test]
    fn apply_and_query() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        apps.apply(&p, c, seg).unwrap();
        assert!(apps.has_stereotype(&p, c, seg));
        assert_eq!(apps.len(), 1);
        // Default is visible without an explicit set.
        assert_eq!(
            apps.tag_value(&p, c, seg, "DataWidth"),
            Some(&TagValue::Int(32))
        );
        apps.set_tag(&p, c, seg, "DataWidth", 64i64).unwrap();
        assert_eq!(
            apps.tag_value(&p, c, seg, "DataWidth"),
            Some(&TagValue::Int(64))
        );
    }

    #[test]
    fn metaclass_mismatch_rejected() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let port = m.add_port(c, "p");
        let mut apps = Applications::new();
        let err = apps.apply(&p, port, seg).unwrap_err();
        assert!(matches!(err, ProfileError::MetaclassMismatch { .. }));
    }

    #[test]
    fn double_application_rejected() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        apps.apply(&p, c, seg).unwrap();
        assert!(matches!(
            apps.apply(&p, c, seg),
            Err(ProfileError::AlreadyApplied { .. })
        ));
    }

    #[test]
    fn tag_type_checked() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        apps.apply(&p, c, seg).unwrap();
        assert!(matches!(
            apps.set_tag(&p, c, seg, "DataWidth", true),
            Err(ProfileError::TagTypeMismatch { .. })
        ));
        assert!(matches!(
            apps.set_tag(&p, c, seg, "NoSuchTag", 1i64),
            Err(ProfileError::UnknownTag { .. })
        ));
        assert!(matches!(
            apps.set_tag(&p, c, seg, "Arbitration", TagValue::Enum("tdma".into())),
            Err(ProfileError::TagTypeMismatch { .. })
        ));
        apps.set_tag(&p, c, seg, "Arbitration", TagValue::Enum("priority".into()))
            .unwrap();
    }

    #[test]
    fn specialisation_counts_as_base() {
        let (p, seg, hibi, mut m) = setup();
        let c = m.add_class("HibiBus");
        let mut apps = Applications::new();
        apps.apply(&p, c, hibi).unwrap();
        apps.set_tag(&p, c, hibi, "Frequency", 100i64).unwrap();
        // Queries through the base stereotype see the specialised one.
        assert!(apps.has_stereotype(&p, c, seg));
        assert_eq!(
            apps.tag_value(&p, c, seg, "Frequency"),
            Some(&TagValue::Int(100))
        );
        assert_eq!(
            apps.tag_value(&p, c, seg, "DataWidth"),
            Some(&TagValue::Int(32)),
            "inherited default resolves through base query"
        );
        let elements: Vec<_> = apps.elements_with(&p, seg).collect();
        assert_eq!(elements.len(), 1);
    }

    #[test]
    fn set_tag_requires_application() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        assert!(matches!(
            apps.set_tag(&p, c, seg, "DataWidth", 1i64),
            Err(ProfileError::NotApplied { .. })
        ));
    }

    #[test]
    fn apply_with_sets_tags() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        apps.apply_with(
            &p,
            c,
            seg,
            [
                ("DataWidth", TagValue::Int(16)),
                ("Arbitration", TagValue::Enum("round-robin".into())),
            ],
        )
        .unwrap();
        assert_eq!(
            apps.tag_value(&p, c, seg, "Arbitration"),
            Some(&TagValue::Enum("round-robin".into()))
        );
    }

    #[test]
    fn clear_element_removes_applications() {
        let (p, seg, _, mut m) = setup();
        let c = m.add_class("Bus");
        let mut apps = Applications::new();
        apps.apply(&p, c, seg).unwrap();
        assert_eq!(apps.clear_element(c), 1);
        assert!(apps.is_empty());
        assert_eq!(apps.clear_element(c), 0);
    }
}
