//! Stereotype and tagged-value definitions.

use std::fmt;

use tut_uml::ids::Metaclass;

/// Identifies a stereotype within a [`crate::Profile`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StereotypeId(u32);

impl StereotypeId {
    /// Creates an id from a raw index (used by deserialisation and tests).
    pub fn from_index(index: usize) -> StereotypeId {
        StereotypeId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StereotypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st{}", self.0)
    }
}

/// The type of a tagged value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TagType {
    /// 64-bit signed integer (e.g. `CodeMemory`, `BufferSize`).
    Int,
    /// Boolean (e.g. `Fixed`).
    Bool,
    /// Free-form string (e.g. `ID`).
    Str,
    /// Real number (e.g. `Area`, `Power`).
    Real,
    /// One of a fixed set of literals (e.g. `RealTimeType ∈
    /// {hard, soft, none}`).
    Enum(Vec<String>),
}

impl TagType {
    /// Human-readable description used in error messages and Table 2/3
    /// renderings.
    pub fn describe(&self) -> String {
        match self {
            TagType::Int => "Int".to_owned(),
            TagType::Bool => "Bool".to_owned(),
            TagType::Str => "Str".to_owned(),
            TagType::Real => "Real".to_owned(),
            TagType::Enum(literals) => format!("Enum({})", literals.join("|")),
        }
    }

    /// Checks that `value` conforms to this type.
    pub fn admits(&self, value: &TagValue) -> bool {
        match (self, value) {
            (TagType::Int, TagValue::Int(_)) => true,
            (TagType::Bool, TagValue::Bool(_)) => true,
            (TagType::Str, TagValue::Str(_)) => true,
            (TagType::Real, TagValue::Real(_)) => true,
            // Ints are accepted where reals are expected.
            (TagType::Real, TagValue::Int(_)) => true,
            (TagType::Enum(literals), TagValue::Enum(lit)) => literals.contains(lit),
            _ => false,
        }
    }
}

impl fmt::Display for TagType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A tagged value attached to a stereotype application.
#[derive(Clone, PartialEq, Debug)]
pub enum TagValue {
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
    /// Real value.
    Real(f64),
    /// Enumeration literal.
    Enum(String),
}

impl TagValue {
    /// Returns the integer content of `Int` (and of `Real` with integral
    /// value) tags.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TagValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean content if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TagValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string content if this is a `Str` or `Enum`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TagValue::Str(s) | TagValue::Enum(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric content of `Real` or `Int` tags.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            TagValue::Real(r) => Some(*r),
            TagValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Short description of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TagValue::Int(_) => "Int",
            TagValue::Bool(_) => "Bool",
            TagValue::Str(_) => "Str",
            TagValue::Real(_) => "Real",
            TagValue::Enum(_) => "Enum",
        }
    }
}

impl fmt::Display for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagValue::Int(i) => write!(f, "{i}"),
            TagValue::Bool(b) => write!(f, "{b}"),
            TagValue::Str(s) => write!(f, "{s}"),
            TagValue::Real(r) => write!(f, "{r}"),
            TagValue::Enum(e) => write!(f, "{e}"),
        }
    }
}

impl From<i64> for TagValue {
    fn from(v: i64) -> Self {
        TagValue::Int(v)
    }
}
impl From<bool> for TagValue {
    fn from(v: bool) -> Self {
        TagValue::Bool(v)
    }
}
impl From<f64> for TagValue {
    fn from(v: f64) -> Self {
        TagValue::Real(v)
    }
}
impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_owned())
    }
}

/// The definition of one tagged value on a stereotype (a row of Table 2/3
/// in the paper).
#[derive(Clone, PartialEq, Debug)]
pub struct TagDef {
    /// Tag name (e.g. `CodeMemory`).
    pub name: String,
    /// Tag type.
    pub tag_type: TagType,
    /// Default used when the designer leaves the tag unset.
    pub default: Option<TagValue>,
    /// One-line description (the "Description" column of Tables 2–3).
    pub description: String,
}

/// A stereotype: a named extension of one UML metaclass with tagged-value
/// definitions, possibly specialising another stereotype.
#[derive(Clone, PartialEq, Debug)]
pub struct Stereotype {
    pub(crate) name: String,
    pub(crate) extends: Metaclass,
    pub(crate) description: String,
    pub(crate) tags: Vec<TagDef>,
    pub(crate) specializes: Option<StereotypeId>,
}

impl Stereotype {
    /// The stereotype name (without guillemets).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metaclass this stereotype extends.
    pub fn extends(&self) -> Metaclass {
        self.extends
    }

    /// One-line description (the "Description" column of Table 1).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Tag definitions declared directly on this stereotype (not
    /// inherited ones — use [`crate::Profile::tag_defs`] for the full set).
    pub fn own_tags(&self) -> &[TagDef] {
        &self.tags
    }

    /// The stereotype this one specialises, if any.
    pub fn specializes(&self) -> Option<StereotypeId> {
        self.specializes
    }

    /// The guillemet form, e.g. `«PlatformComponent»`.
    pub fn guillemets(&self) -> String {
        format!("\u{ab}{}\u{bb}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_types_admit_matching_values() {
        assert!(TagType::Int.admits(&TagValue::Int(1)));
        assert!(!TagType::Int.admits(&TagValue::Bool(true)));
        assert!(TagType::Real.admits(&TagValue::Real(1.5)));
        assert!(
            TagType::Real.admits(&TagValue::Int(2)),
            "ints widen to real"
        );
        let rt = TagType::Enum(vec!["hard".into(), "soft".into(), "none".into()]);
        assert!(rt.admits(&TagValue::Enum("soft".into())));
        assert!(!rt.admits(&TagValue::Enum("firm".into())));
        assert!(!rt.admits(&TagValue::Str("soft".into())));
    }

    #[test]
    fn tag_value_accessors() {
        assert_eq!(TagValue::Int(5).as_int(), Some(5));
        assert_eq!(TagValue::Int(5).as_real(), Some(5.0));
        assert_eq!(TagValue::Enum("dsp".into()).as_str(), Some("dsp"));
        assert_eq!(TagValue::Bool(true).as_bool(), Some(true));
        assert_eq!(TagValue::Str("x".into()).as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TagValue::Real(2.5).to_string(), "2.5");
        assert_eq!(
            TagType::Enum(vec!["a".into(), "b".into()]).to_string(),
            "Enum(a|b)"
        );
        assert_eq!(StereotypeId::from_index(3).to_string(), "st3");
    }
}
