//! The UML 2.0 profile mechanism: stereotypes, tagged values, and profile
//! application — "second-class extensibility" (§2 of the paper).
//!
//! A [`Profile`] is a set of [`Stereotype`]s. Each stereotype *extends* one
//! UML metaclass and declares typed *tagged values* ([`TagDef`]). A
//! stereotype may *specialise* another stereotype, inheriting its tag
//! definitions — this is how the paper derives `«HIBISegment»` from
//! `«CommunicationSegment»` (§4.2).
//!
//! Stereotypes are *applied* to model elements through an
//! [`Applications`] value kept alongside the [`tut_uml::Model`]; applying a
//! stereotype to an element of the wrong metaclass is rejected, and tagged
//! values are type-checked against their definitions.
//!
//! Profile-specific design rules are expressed as [`constraint::Constraint`]s
//! and evaluated over a model + applications pair.
//!
//! # Example
//!
//! ```
//! use tut_profile_core::{Profile, TagType, TagValue, Applications};
//! use tut_uml::ids::Metaclass;
//! use tut_uml::Model;
//!
//! let mut profile = Profile::new("Mini");
//! let comp = profile
//!     .stereotype("Component", Metaclass::Class)
//!     .tag("Area", TagType::Real)
//!     .finish();
//!
//! let mut model = Model::new("M");
//! let class = model.add_class("Cpu");
//!
//! let mut apps = Applications::new();
//! apps.apply(&profile, class, comp)?;
//! apps.set_tag(&profile, class, comp, "Area", TagValue::Real(1.5))?;
//! assert_eq!(
//!     apps.tag_value(&profile, class, comp, "Area"),
//!     Some(&TagValue::Real(1.5))
//! );
//! # Ok::<(), tut_profile_core::ProfileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod constraint;
pub mod error;
pub mod interchange;
pub mod profile;
pub mod stereotype;

pub use apply::{Applications, AppliedStereotype};
pub use constraint::{Constraint, ConstraintSet};
pub use error::{ProfileError, Result};
pub use profile::{Profile, StereotypeBuilder};
pub use stereotype::{Stereotype, StereotypeId, TagDef, TagType, TagValue};
pub use tut_diag::{Diagnostic, DiagnosticBag, Severity};
