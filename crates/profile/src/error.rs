//! Error type for the profile mechanism.

use std::fmt;

use tut_uml::ids::{ElementRef, Metaclass};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ProfileError>;

/// Errors produced while defining or applying profiles.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ProfileError {
    /// A stereotype was applied to an element of the wrong metaclass.
    MetaclassMismatch {
        /// The stereotype name.
        stereotype: String,
        /// The metaclass the stereotype extends.
        expected: Metaclass,
        /// The metaclass of the element it was applied to.
        found: Metaclass,
        /// The offending element.
        element: ElementRef,
    },
    /// A stereotype name failed to resolve in the profile.
    UnknownStereotype(String),
    /// A tag name does not exist on the stereotype (or its ancestors).
    UnknownTag {
        /// The stereotype name.
        stereotype: String,
        /// The unknown tag name.
        tag: String,
    },
    /// A tagged value does not match the declared tag type.
    TagTypeMismatch {
        /// The stereotype name.
        stereotype: String,
        /// The tag name.
        tag: String,
        /// Description of the expected type.
        expected: String,
        /// Description of the supplied value.
        found: String,
    },
    /// A tagged value was set on an element that does not carry the
    /// stereotype.
    NotApplied {
        /// The stereotype name.
        stereotype: String,
        /// The element missing the application.
        element: ElementRef,
    },
    /// The same stereotype was applied twice to one element.
    AlreadyApplied {
        /// The stereotype name.
        stereotype: String,
        /// The element.
        element: ElementRef,
    },
    /// Interchange (XML) decoding failed.
    Interchange(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::MetaclassMismatch {
                stereotype,
                expected,
                found,
                element,
            } => write!(
                f,
                "stereotype `{stereotype}` extends {expected} but was applied to {element} ({found})"
            ),
            ProfileError::UnknownStereotype(name) => {
                write!(f, "unknown stereotype `{name}`")
            }
            ProfileError::UnknownTag { stereotype, tag } => {
                write!(f, "stereotype `{stereotype}` has no tag `{tag}`")
            }
            ProfileError::TagTypeMismatch {
                stereotype,
                tag,
                expected,
                found,
            } => write!(
                f,
                "tag `{stereotype}::{tag}` expects {expected}, got {found}"
            ),
            ProfileError::NotApplied {
                stereotype,
                element,
            } => write!(f, "stereotype `{stereotype}` is not applied to {element}"),
            ProfileError::AlreadyApplied {
                stereotype,
                element,
            } => write!(f, "stereotype `{stereotype}` is already applied to {element}"),
            ProfileError::Interchange(msg) => write!(f, "profile interchange error: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<tut_uml::Error> for ProfileError {
    fn from(err: tut_uml::Error) -> Self {
        ProfileError::Interchange(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::ids::ClassId;

    #[test]
    fn messages_are_informative() {
        let e = ProfileError::MetaclassMismatch {
            stereotype: "Mapping".into(),
            expected: Metaclass::Dependency,
            found: Metaclass::Class,
            element: ElementRef::Class(ClassId::from_index(0)),
        };
        let text = e.to_string();
        assert!(text.contains("Mapping"));
        assert!(text.contains("Dependency"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProfileError>();
    }
}
