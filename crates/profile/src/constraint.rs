//! Design-rule framework: constraints evaluated over a model and its
//! stereotype applications.
//!
//! The paper's profile comes with "strict rules how to use" the
//! stereotypes (§2.2). Those rules are values of types implementing
//! [`Constraint`], grouped into a [`ConstraintSet`]; the TUT-Profile rule
//! catalogue lives in the `tut-profile` crate.

use std::fmt;

use tut_uml::ids::ElementRef;
use tut_uml::Model;

use crate::apply::Applications;
use crate::profile::Profile;

/// How serious a rule violation is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory: the model is usable but suspicious.
    Warning,
    /// The model violates the profile and must be fixed before code
    /// generation / simulation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A single design-rule violation.
#[derive(Clone, PartialEq, Debug)]
pub struct RuleViolation {
    /// Name of the rule that fired.
    pub rule: String,
    /// Severity of the violation.
    pub severity: Severity,
    /// The element at fault, when attributable.
    pub element: Option<ElementRef>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.element {
            Some(e) => write!(
                f,
                "[{}] {} ({e}): {}",
                self.severity, self.rule, self.message
            ),
            None => write!(f, "[{}] {}: {}", self.severity, self.rule, self.message),
        }
    }
}

/// A profile design rule.
pub trait Constraint: Send + Sync {
    /// Stable rule name, e.g. `"process-instantiates-component"`.
    fn name(&self) -> &str;

    /// Short description of what the rule enforces.
    fn description(&self) -> &str;

    /// Evaluates the rule, appending violations to `out`.
    fn check(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
        out: &mut Vec<RuleViolation>,
    );
}

/// An ordered collection of constraints evaluated together.
#[derive(Default)]
pub struct ConstraintSet {
    constraints: Vec<Box<dyn Constraint>>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a constraint.
    pub fn push(&mut self, constraint: impl Constraint + 'static) -> &mut Self {
        self.constraints.push(Box::new(constraint));
        self
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Constraint> + '_ {
        self.constraints.iter().map(Box::as_ref)
    }

    /// Runs every constraint and returns all violations, in rule order.
    pub fn check_all(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
    ) -> Vec<RuleViolation> {
        let mut out = Vec::new();
        for c in &self.constraints {
            c.check(model, profile, applications, &mut out);
        }
        out
    }

    /// Runs every constraint and returns `Ok(warnings)` when no
    /// error-severity violation fired.
    ///
    /// # Errors
    ///
    /// Returns the full violation list (errors and warnings) as `Err` when
    /// at least one error-severity violation fired.
    pub fn enforce(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
    ) -> Result<Vec<RuleViolation>, Vec<RuleViolation>> {
        let violations = self.check_all(model, profile, applications);
        if violations.iter().any(|v| v.severity == Severity::Error) {
            Err(violations)
        } else {
            Ok(violations)
        }
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstraintSet")
            .field(
                "rules",
                &self
                    .constraints
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A constraint built from a closure; handy for one-off rules and tests.
pub struct FnConstraint<F> {
    name: String,
    description: String,
    check: F,
}

impl<F> FnConstraint<F>
where
    F: Fn(&Model, &Profile, &Applications, &mut Vec<RuleViolation>) + Send + Sync,
{
    /// Wraps a closure as a [`Constraint`].
    pub fn new(name: impl Into<String>, description: impl Into<String>, check: F) -> Self {
        FnConstraint {
            name: name.into(),
            description: description.into(),
            check,
        }
    }
}

impl<F> Constraint for FnConstraint<F>
where
    F: Fn(&Model, &Profile, &Applications, &mut Vec<RuleViolation>) + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn check(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
        out: &mut Vec<RuleViolation>,
    ) {
        (self.check)(model, profile, applications, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_empty_model_rule() -> impl Constraint {
        FnConstraint::new(
            "non-empty-model",
            "models must declare at least one class",
            |model: &Model, _p: &Profile, _a: &Applications, out: &mut Vec<RuleViolation>| {
                if model.classes().count() == 0 {
                    out.push(RuleViolation {
                        rule: "non-empty-model".into(),
                        severity: Severity::Error,
                        element: None,
                        message: "model has no classes".into(),
                    });
                }
            },
        )
    }

    #[test]
    fn constraint_set_collects_violations() {
        let mut set = ConstraintSet::new();
        set.push(no_empty_model_rule());
        let model = Model::new("Empty");
        let profile = Profile::new("P");
        let apps = Applications::new();
        let violations = set.check_all(&model, &profile, &apps);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("non-empty-model"));
        assert!(set.enforce(&model, &profile, &apps).is_err());
    }

    #[test]
    fn enforce_passes_clean_model_with_warnings() {
        let mut set = ConstraintSet::new();
        set.push(FnConstraint::new(
            "advice",
            "always warns",
            |_m: &Model, _p: &Profile, _a: &Applications, out: &mut Vec<RuleViolation>| {
                out.push(RuleViolation {
                    rule: "advice".into(),
                    severity: Severity::Warning,
                    element: None,
                    message: "just so you know".into(),
                });
            },
        ));
        let model = Model::new("M");
        let profile = Profile::new("P");
        let apps = Applications::new();
        let warnings = set.enforce(&model, &profile, &apps).unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].severity, Severity::Warning);
    }

    #[test]
    fn debug_lists_rule_names() {
        let mut set = ConstraintSet::new();
        set.push(no_empty_model_rule());
        assert!(format!("{set:?}").contains("non-empty-model"));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }
}
