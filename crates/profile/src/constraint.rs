//! Design-rule framework: constraints evaluated over a model and its
//! stereotype applications.
//!
//! The paper's profile comes with "strict rules how to use" the
//! stereotypes (§2.2). Those rules are values of types implementing
//! [`Constraint`], grouped into a [`ConstraintSet`]; the TUT-Profile rule
//! catalogue lives in the `tut-profile` crate.
//!
//! Rule findings are ordinary [`tut_diag::Diagnostic`]s — the same
//! currency the UML well-formedness checker and the action-language type
//! checker use — so one report can mix all three. By convention a rule's
//! finding carries a stable `E02xx`/`W02xx` code, the offending element's
//! display form in [`tut_diag::Diagnostic::element`], and the rule name as
//! a note.

use std::fmt;

use tut_diag::DiagnosticBag;
use tut_uml::Model;

use crate::apply::Applications;
use crate::profile::Profile;

/// A profile design rule.
pub trait Constraint: Send + Sync {
    /// Stable rule name, e.g. `"process-instantiates-component"`.
    fn name(&self) -> &str;

    /// Short description of what the rule enforces.
    fn description(&self) -> &str;

    /// Evaluates the rule, appending findings to `out`.
    fn check(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
        out: &mut DiagnosticBag,
    );
}

/// An ordered collection of constraints evaluated together.
#[derive(Default)]
pub struct ConstraintSet {
    constraints: Vec<Box<dyn Constraint>>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a constraint.
    pub fn push(&mut self, constraint: impl Constraint + 'static) -> &mut Self {
        self.constraints.push(Box::new(constraint));
        self
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Constraint> + '_ {
        self.constraints.iter().map(Box::as_ref)
    }

    /// Runs the constraint at `index` (rule order) into `out`. The
    /// incremental front end uses this to cache each rule's findings as
    /// its own query; whole-model callers should use [`check_all`],
    /// which is equivalent to running every index in order.
    ///
    /// [`check_all`]: ConstraintSet::check_all
    pub fn check_one(
        &self,
        index: usize,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
        out: &mut DiagnosticBag,
    ) {
        self.constraints[index].check(model, profile, applications, out);
    }

    /// Runs every constraint and returns all findings, in rule order.
    pub fn check_all(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
    ) -> DiagnosticBag {
        let mut out = DiagnosticBag::new();
        for c in &self.constraints {
            c.check(model, profile, applications, &mut out);
        }
        out
    }

    /// Runs every constraint and returns `Ok(warnings)` when no
    /// error-severity finding fired.
    ///
    /// # Errors
    ///
    /// Returns the full finding list (errors and warnings) as `Err` when
    /// at least one error-severity finding fired.
    pub fn enforce(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
    ) -> Result<DiagnosticBag, DiagnosticBag> {
        let findings = self.check_all(model, profile, applications);
        if findings.has_errors() {
            Err(findings)
        } else {
            Ok(findings)
        }
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstraintSet")
            .field(
                "rules",
                &self
                    .constraints
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A constraint built from a closure; handy for one-off rules and tests.
pub struct FnConstraint<F> {
    name: String,
    description: String,
    check: F,
}

impl<F> FnConstraint<F>
where
    F: Fn(&Model, &Profile, &Applications, &mut DiagnosticBag) + Send + Sync,
{
    /// Wraps a closure as a [`Constraint`].
    pub fn new(name: impl Into<String>, description: impl Into<String>, check: F) -> Self {
        FnConstraint {
            name: name.into(),
            description: description.into(),
            check,
        }
    }
}

impl<F> Constraint for FnConstraint<F>
where
    F: Fn(&Model, &Profile, &Applications, &mut DiagnosticBag) + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn check(
        &self,
        model: &Model,
        profile: &Profile,
        applications: &Applications,
        out: &mut DiagnosticBag,
    ) {
        (self.check)(model, profile, applications, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_diag::{Diagnostic, Severity};

    fn no_empty_model_rule() -> impl Constraint {
        FnConstraint::new(
            "non-empty-model",
            "models must declare at least one class",
            |model: &Model, _p: &Profile, _a: &Applications, out: &mut DiagnosticBag| {
                if model.classes().count() == 0 {
                    out.push(
                        Diagnostic::error("E0999", "model has no classes")
                            .with_note("rule: non-empty-model"),
                    );
                }
            },
        )
    }

    #[test]
    fn constraint_set_collects_findings() {
        let mut set = ConstraintSet::new();
        set.push(no_empty_model_rule());
        let model = Model::new("Empty");
        let profile = Profile::new("P");
        let apps = Applications::new();
        let findings = set.check_all(&model, &profile, &apps);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings.first().unwrap().code, "E0999");
        assert!(findings
            .first()
            .unwrap()
            .notes
            .iter()
            .any(|n| n.contains("non-empty-model")));
        assert!(set.enforce(&model, &profile, &apps).is_err());
    }

    #[test]
    fn enforce_passes_clean_model_with_warnings() {
        let mut set = ConstraintSet::new();
        set.push(FnConstraint::new(
            "advice",
            "always warns",
            |_m: &Model, _p: &Profile, _a: &Applications, out: &mut DiagnosticBag| {
                out.push(Diagnostic::warning("W0999", "just so you know"));
            },
        ));
        let model = Model::new("M");
        let profile = Profile::new("P");
        let apps = Applications::new();
        let warnings = set.enforce(&model, &profile, &apps).unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings.first().unwrap().severity, Severity::Warning);
    }

    #[test]
    fn debug_lists_rule_names() {
        let mut set = ConstraintSet::new();
        set.push(no_empty_model_rule());
        assert!(format!("{set:?}").contains("non-empty-model"));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }
}
