//! Profile definition: a named collection of stereotypes.

use std::fmt;

use tut_uml::ids::Metaclass;

use crate::error::{ProfileError, Result};
use crate::stereotype::{Stereotype, StereotypeId, TagDef, TagType, TagValue};

/// A UML profile: a coherent set of stereotypes for one domain.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Profile {
    name: String,
    stereotypes: Vec<Stereotype>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new(name: impl Into<String>) -> Profile {
        Profile {
            name: name.into(),
            stereotypes: Vec::new(),
        }
    }

    /// The profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Starts defining a stereotype that extends `metaclass`. Finish with
    /// [`StereotypeBuilder::finish`].
    pub fn stereotype(
        &mut self,
        name: impl Into<String>,
        metaclass: Metaclass,
    ) -> StereotypeBuilder<'_> {
        StereotypeBuilder {
            profile: self,
            stereotype: Stereotype {
                name: name.into(),
                extends: metaclass,
                description: String::new(),
                tags: Vec::new(),
                specializes: None,
            },
        }
    }

    /// Starts defining a stereotype that specialises `parent`, inheriting
    /// its metaclass and (virtually) its tag definitions.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not belong to this profile (a profile
    /// definition bug).
    pub fn specialize(
        &mut self,
        name: impl Into<String>,
        parent: StereotypeId,
    ) -> StereotypeBuilder<'_> {
        let metaclass = self.get(parent).extends();
        StereotypeBuilder {
            profile: self,
            stereotype: Stereotype {
                name: name.into(),
                extends: metaclass,
                description: String::new(),
                tags: Vec::new(),
                specializes: Some(parent),
            },
        }
    }

    /// Returns a stereotype by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this profile.
    pub fn get(&self, id: StereotypeId) -> &Stereotype {
        &self.stereotypes[id.index()]
    }

    /// Iterates over all stereotypes with ids, in definition order.
    pub fn stereotypes(&self) -> impl Iterator<Item = (StereotypeId, &Stereotype)> + '_ {
        self.stereotypes
            .iter()
            .enumerate()
            .map(|(i, s)| (StereotypeId::from_index(i), s))
    }

    /// Number of stereotypes in the profile.
    pub fn len(&self) -> usize {
        self.stereotypes.len()
    }

    /// True if the profile has no stereotypes.
    pub fn is_empty(&self) -> bool {
        self.stereotypes.is_empty()
    }

    /// Finds a stereotype by name.
    pub fn find(&self, name: &str) -> Option<StereotypeId> {
        self.stereotypes()
            .find(|(_, s)| s.name() == name)
            .map(|(id, _)| id)
    }

    /// Finds a stereotype by name or returns an error.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::UnknownStereotype`] when absent.
    pub fn require(&self, name: &str) -> Result<StereotypeId> {
        self.find(name)
            .ok_or_else(|| ProfileError::UnknownStereotype(name.to_owned()))
    }

    /// True if `id` is `ancestor` or (transitively) specialises it.
    pub fn is_kind_of(&self, id: StereotypeId, ancestor: StereotypeId) -> bool {
        let mut current = Some(id);
        while let Some(c) = current {
            if c == ancestor {
                return true;
            }
            current = self.get(c).specializes();
        }
        false
    }

    /// All tag definitions visible on `id`: inherited definitions first
    /// (root ancestor outward), then its own. A redefined tag name shadows
    /// the inherited definition.
    pub fn tag_defs(&self, id: StereotypeId) -> Vec<&TagDef> {
        let mut chain = Vec::new();
        let mut current = Some(id);
        while let Some(c) = current {
            chain.push(c);
            current = self.get(c).specializes();
        }
        let mut defs: Vec<&TagDef> = Vec::new();
        for st in chain.into_iter().rev() {
            for def in self.get(st).own_tags() {
                if let Some(existing) = defs.iter_mut().find(|d| d.name == def.name) {
                    *existing = def;
                } else {
                    defs.push(def);
                }
            }
        }
        defs
    }

    /// Looks up a tag definition by name, searching the specialisation
    /// chain.
    pub fn tag_def(&self, id: StereotypeId, tag: &str) -> Option<&TagDef> {
        let mut current = Some(id);
        while let Some(c) = current {
            if let Some(def) = self.get(c).own_tags().iter().find(|d| d.name == tag) {
                return Some(def);
            }
            current = self.get(c).specializes();
        }
        None
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile `{}` ({} stereotypes)",
            self.name,
            self.stereotypes.len()
        )
    }
}

/// Builder for one stereotype; obtained from [`Profile::stereotype`] or
/// [`Profile::specialize`].
#[derive(Debug)]
pub struct StereotypeBuilder<'a> {
    profile: &'a mut Profile,
    stereotype: Stereotype,
}

impl StereotypeBuilder<'_> {
    /// Sets the one-line description (Table 1's "Description" column).
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.stereotype.description = description.into();
        self
    }

    /// Declares a tag with no default.
    pub fn tag(self, name: impl Into<String>, tag_type: TagType) -> Self {
        self.tag_full(name, tag_type, None, "")
    }

    /// Declares a tag with a default value.
    pub fn tag_with_default(
        self,
        name: impl Into<String>,
        tag_type: TagType,
        default: impl Into<TagValue>,
    ) -> Self {
        self.tag_full(name, tag_type, Some(default.into()), "")
    }

    /// Declares a tag with every field spelled out.
    ///
    /// # Panics
    ///
    /// Panics if the default value does not conform to the tag type (a
    /// profile definition bug).
    pub fn tag_full(
        mut self,
        name: impl Into<String>,
        tag_type: TagType,
        default: Option<TagValue>,
        description: impl Into<String>,
    ) -> Self {
        if let Some(d) = &default {
            assert!(
                tag_type.admits(d),
                "default for tag does not match its type"
            );
        }
        self.stereotype.tags.push(TagDef {
            name: name.into(),
            tag_type,
            default,
            description: description.into(),
        });
        self
    }

    /// Adds the stereotype to the profile and returns its id.
    pub fn finish(self) -> StereotypeId {
        let id = StereotypeId::from_index(self.profile.stereotypes.len());
        self.profile.stereotypes.push(self.stereotype);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrapper_profile() -> (Profile, StereotypeId, StereotypeId) {
        let mut p = Profile::new("P");
        let base = p
            .stereotype("CommunicationWrapper", Metaclass::Class)
            .describe("Defines wrapper parameters of a communication agent")
            .tag("Address", TagType::Int)
            .tag_with_default("BufferSize", TagType::Int, 8i64)
            .finish();
        let hibi = p
            .specialize("HIBIWrapper", base)
            .tag("MaxTime", TagType::Int)
            .finish();
        (p, base, hibi)
    }

    #[test]
    fn find_and_require() {
        let (p, base, _) = wrapper_profile();
        assert_eq!(p.find("CommunicationWrapper"), Some(base));
        assert!(p.find("Nope").is_none());
        assert!(p.require("Nope").is_err());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn specialisation_inherits_metaclass_and_tags() {
        let (p, base, hibi) = wrapper_profile();
        assert_eq!(p.get(hibi).extends(), Metaclass::Class);
        assert!(p.is_kind_of(hibi, base));
        assert!(!p.is_kind_of(base, hibi));
        let names: Vec<_> = p.tag_defs(hibi).iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, vec!["Address", "BufferSize", "MaxTime"]);
        assert!(p.tag_def(hibi, "Address").is_some());
        assert!(p.tag_def(base, "MaxTime").is_none());
    }

    #[test]
    fn redefined_tags_shadow_inherited_ones() {
        let mut p = Profile::new("P");
        let base = p
            .stereotype("Base", Metaclass::Class)
            .tag_with_default("Size", TagType::Int, 1i64)
            .finish();
        let derived = p
            .specialize("Derived", base)
            .tag_with_default("Size", TagType::Int, 2i64)
            .finish();
        let defs = p.tag_defs(derived);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].default, Some(TagValue::Int(2)));
    }

    #[test]
    #[should_panic(expected = "default for tag does not match its type")]
    fn mismatched_default_panics() {
        let mut p = Profile::new("P");
        p.stereotype("S", Metaclass::Class)
            .tag_with_default("T", TagType::Bool, 3i64)
            .finish();
    }

    #[test]
    fn guillemets_render() {
        let (p, base, _) = wrapper_profile();
        assert_eq!(p.get(base).guillemets(), "\u{ab}CommunicationWrapper\u{bb}");
    }

    #[test]
    fn display_summarises() {
        let (p, ..) = wrapper_profile();
        assert_eq!(p.to_string(), "profile `P` (2 stereotypes)");
    }
}
