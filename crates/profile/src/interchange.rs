//! XML interchange for profiles and stereotype applications.
//!
//! [`write_document`] produces one XML document holding the UML model *and*
//! its profile application — the artefact the paper's profiling tool parses
//! ("the XML presentation of the UML 2.0 model is parsed to gather process
//! group information", §4.4). [`read_document`] parses it back.

use tut_uml::ids::Metaclass;
use tut_uml::xml::XmlNode;
use tut_uml::Model;

use crate::apply::Applications;
use crate::error::{ProfileError, Result};
use crate::profile::Profile;
use crate::stereotype::{TagType, TagValue};

/// Profile interchange error code (drivers map [`ProfileError`]s raised
/// while decoding a `<profileApplication>` subtree onto this).
pub const E_PROFILE_INTERCHANGE: &str = "E0103";

/// Serialises the stereotype applications as an XML subtree
/// (`<profileApplication>`).
pub fn applications_to_xml_node(profile: &Profile, applications: &Applications) -> XmlNode {
    let mut root = XmlNode::new("profileApplication");
    root.set_attr("profile", profile.name());
    for (element, applied) in applications.iter() {
        let node = root.add_child(XmlNode::new("appliedStereotype"));
        node.set_attr("element", element.to_string());
        node.set_attr("stereotype", profile.get(applied.stereotype).name());
        for (tag, value) in &applied.values {
            let v = node.add_child(XmlNode::new("taggedValue"));
            v.set_attr("name", tag.as_str());
            v.set_attr("type", value.type_name());
            v.set_attr("data", value.to_string());
        }
    }
    root
}

/// Decodes stereotype applications from the subtree produced by
/// [`applications_to_xml_node`].
///
/// # Errors
///
/// Returns [`ProfileError`] when stereotype names don't resolve in
/// `profile`, elements are malformed, or tagged values fail type checks.
pub fn applications_from_xml_node(profile: &Profile, node: &XmlNode) -> Result<Applications> {
    if node.name != "profileApplication" {
        return Err(ProfileError::Interchange(format!(
            "expected `profileApplication`, found `{}`",
            node.name
        )));
    }
    let mut applications = Applications::new();
    for applied in node.children_named("appliedStereotype") {
        let element = tut_uml::xmi::parse_element_ref(applied.required_attr("element")?)?;
        let stereotype = profile.require(applied.required_attr("stereotype")?)?;
        applications.apply(profile, element, stereotype)?;
        for tagged in applied.children_named("taggedValue") {
            let name = tagged.required_attr("name")?;
            let value = decode_tag_value(
                profile.tag_def(stereotype, name).map(|d| &d.tag_type),
                tagged.required_attr("type")?,
                tagged.required_attr("data")?,
            )?;
            applications.set_tag(profile, element, stereotype, name, value)?;
        }
    }
    Ok(applications)
}

fn decode_tag_value(declared: Option<&TagType>, type_name: &str, data: &str) -> Result<TagValue> {
    let value =
        match type_name {
            "Int" => TagValue::Int(data.parse().map_err(|_| {
                ProfileError::Interchange(format!("bad Int tagged value `{data}`"))
            })?),
            "Bool" => TagValue::Bool(data == "true"),
            "Str" => TagValue::Str(data.to_owned()),
            "Real" => TagValue::Real(data.parse().map_err(|_| {
                ProfileError::Interchange(format!("bad Real tagged value `{data}`"))
            })?),
            "Enum" => TagValue::Enum(data.to_owned()),
            other => {
                return Err(ProfileError::Interchange(format!(
                    "unknown tagged-value type `{other}`"
                )))
            }
        };
    // When the profile declares the tag, double-check conformance early so
    // errors point at the document rather than a later query.
    if let Some(ty) = declared {
        if !ty.admits(&value) {
            return Err(ProfileError::Interchange(format!(
                "tagged value `{data}` does not conform to declared type {ty}"
            )));
        }
    }
    Ok(value)
}

/// Serialises a model together with its stereotype applications into one
/// XML document.
pub fn write_document(model: &Model, profile: &Profile, applications: &Applications) -> String {
    let mut root = tut_uml::xmi::to_xml_node(model);
    root.add_child(applications_to_xml_node(profile, applications));
    root.to_xml_string()
}

/// Parses a document produced by [`write_document`].
///
/// # Errors
///
/// Returns [`ProfileError`] on malformed XML, unknown stereotypes, or
/// tagged-value mismatches.
pub fn read_document(text: &str, profile: &Profile) -> Result<(Model, Applications)> {
    let root = XmlNode::parse(text)?;
    let model = tut_uml::xmi::from_xml_node(&root)?;
    let applications = match root.child("profileApplication") {
        Some(node) => applications_from_xml_node(profile, node)?,
        None => Applications::new(),
    };
    Ok((model, applications))
}

/// Renders the profile definition itself as XML (stereotypes, extended
/// metaclasses, tag definitions) — a machine-readable Table 1 + 2 + 3.
pub fn profile_to_xml(profile: &Profile) -> String {
    let mut root = XmlNode::new("uml:Profile");
    root.set_attr("name", profile.name());
    for (_, st) in profile.stereotypes() {
        let node = root.add_child(XmlNode::new("ownedStereotype"));
        node.set_attr("name", st.name());
        node.set_attr("extends", st.extends().name());
        if !st.description().is_empty() {
            node.set_attr("description", st.description());
        }
        if let Some(parent) = st.specializes() {
            node.set_attr("specializes", profile.get(parent).name());
        }
        for tag in st.own_tags() {
            let t = node.add_child(XmlNode::new("ownedTag"));
            t.set_attr("name", tag.name.as_str());
            t.set_attr("type", tag.tag_type.describe());
            if let Some(default) = &tag.default {
                t.set_attr("default", default.to_string());
            }
            if !tag.description.is_empty() {
                t.set_attr("description", tag.description.as_str());
            }
        }
    }
    root.to_xml_string()
}

/// Parses a profile definition from the XML produced by
/// [`profile_to_xml`]. Enum tag types serialise as `Enum(a|b|c)`.
///
/// # Errors
///
/// Returns [`ProfileError::Interchange`] on structural problems.
pub fn profile_from_xml(text: &str) -> Result<Profile> {
    let root = XmlNode::parse(text)?;
    if root.name != "uml:Profile" {
        return Err(ProfileError::Interchange(format!(
            "expected `uml:Profile`, found `{}`",
            root.name
        )));
    }
    let mut profile = Profile::new(root.required_attr("name")?);
    for node in root.children_named("ownedStereotype") {
        let name = node.required_attr("name")?;
        let metaclass_name = node.required_attr("extends")?;
        let metaclass = Metaclass::from_name(metaclass_name).ok_or_else(|| {
            ProfileError::Interchange(format!("unknown metaclass `{metaclass_name}`"))
        })?;
        let mut builder = match node.attr("specializes") {
            Some(parent_name) => {
                let parent = profile.require(parent_name)?;
                profile.specialize(name, parent)
            }
            None => profile.stereotype(name, metaclass),
        };
        if let Some(description) = node.attr("description") {
            builder = builder.describe(description);
        }
        for tag in node.children_named("ownedTag") {
            let tag_type = parse_tag_type(tag.required_attr("type")?)?;
            let default = tag
                .attr("default")
                .map(|d| decode_tag_value(Some(&tag_type), default_type_name(&tag_type), d))
                .transpose()?;
            builder = builder.tag_full(
                tag.required_attr("name")?,
                tag_type,
                default,
                tag.attr("description").unwrap_or(""),
            );
        }
        builder.finish();
    }
    Ok(profile)
}

fn default_type_name(ty: &TagType) -> &'static str {
    match ty {
        TagType::Int => "Int",
        TagType::Bool => "Bool",
        TagType::Str => "Str",
        TagType::Real => "Real",
        TagType::Enum(_) => "Enum",
    }
}

fn parse_tag_type(text: &str) -> Result<TagType> {
    let ty = match text {
        "Int" => TagType::Int,
        "Bool" => TagType::Bool,
        "Str" => TagType::Str,
        "Real" => TagType::Real,
        other => {
            let literals = other
                .strip_prefix("Enum(")
                .and_then(|rest| rest.strip_suffix(')'))
                .ok_or_else(|| ProfileError::Interchange(format!("unknown tag type `{other}`")))?;
            TagType::Enum(literals.split('|').map(str::to_owned).collect())
        }
    };
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::ids::Metaclass;

    fn sample() -> (Model, Profile, Applications) {
        let mut profile = Profile::new("TUT");
        let comp = profile
            .stereotype("Component", Metaclass::Class)
            .describe("a platform component")
            .tag_with_default("Area", TagType::Real, 1.0)
            .tag(
                "Type",
                TagType::Enum(vec!["general".into(), "dsp".into(), "hw".into()]),
            )
            .finish();
        let cpu = profile
            .specialize("Processor", comp)
            .tag("Frequency", TagType::Int)
            .finish();

        let mut model = Model::new("M");
        let class = model.add_class("Nios");
        let other = model.add_class("Crc");

        let mut apps = Applications::new();
        apps.apply(&profile, class, cpu).unwrap();
        apps.set_tag(&profile, class, cpu, "Frequency", 50i64)
            .unwrap();
        apps.set_tag(
            &profile,
            class,
            cpu,
            "Type",
            TagValue::Enum("general".into()),
        )
        .unwrap();
        apps.apply(&profile, other, comp).unwrap();
        apps.set_tag(&profile, other, comp, "Area", 0.25).unwrap();
        (model, profile, apps)
    }

    #[test]
    fn document_round_trips() {
        let (model, profile, apps) = sample();
        let text = write_document(&model, &profile, &apps);
        let (model2, apps2) = read_document(&text, &profile).unwrap();
        assert_eq!(model2, model);
        assert_eq!(apps2, apps);
    }

    #[test]
    fn document_without_applications_reads_empty() {
        let model = Model::new("Plain");
        let profile = Profile::new("P");
        let text = tut_uml::xmi::to_xml(&model);
        let (_, apps) = read_document(&text, &profile).unwrap();
        assert!(apps.is_empty());
    }

    #[test]
    fn unknown_stereotype_in_document_rejected() {
        let (model, profile, apps) = sample();
        let text = write_document(&model, &profile, &apps);
        let other_profile = Profile::new("Empty");
        assert!(read_document(&text, &other_profile).is_err());
    }

    #[test]
    fn profile_definition_round_trips() {
        let (_, profile, _) = sample();
        let text = profile_to_xml(&profile);
        let parsed = profile_from_xml(&text).unwrap();
        assert_eq!(parsed, profile);
    }

    #[test]
    fn tag_type_parsing() {
        assert_eq!(parse_tag_type("Int").unwrap(), TagType::Int);
        assert_eq!(
            parse_tag_type("Enum(a|b)").unwrap(),
            TagType::Enum(vec!["a".into(), "b".into()])
        );
        assert!(parse_tag_type("Float").is_err());
    }

    #[test]
    fn nonconforming_tagged_value_rejected() {
        let (model, profile, apps) = sample();
        let text =
            write_document(&model, &profile, &apps).replace("data=\"general\"", "data=\"quantum\"");
        assert!(read_document(&text, &profile).is_err());
    }
}
