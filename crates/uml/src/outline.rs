//! A conservative raw-text outline scanner for XMI documents.
//!
//! The incremental front end needs to know *which bytes belong to which
//! top-level model element* without paying for a full parse: each
//! `packagedElement` directly under `uml:Model` becomes an independently
//! hashed, independently parsed segment, and everything else (the XMI
//! envelope, the `uml:Model` start/end tags, inter-element whitespace)
//! is the *skeleton*. An edit that stays inside one segment leaves every
//! other segment's fingerprint — and therefore every cached result keyed
//! on it — untouched.
//!
//! The scanner is deliberately conservative: it understands exactly the
//! XML subset [`crate::xml`] parses (start/end/empty tags, quoted
//! attributes, comments, one leading declaration) and returns `None` the
//! moment it sees anything unusual — a non-`packagedElement` child of
//! the model, a missing `xmi:id`, text where none is expected, a
//! DOCTYPE. Callers fall back to the plain whole-document pipeline in
//! that case, so a bailout can never change observable behaviour, only
//! forgo caching.
//!
//! Correctness leans on two properties shared with the real parser:
//! quoted attribute values may not contain `<` (so `<` outside a comment
//! is always markup), and comments are atomic. Tag nesting is tracked by
//! depth alone; a mismatched closing *name* inside a segment makes the
//! later segment-local parse fail at the same byte the whole-document
//! parse would have failed at, so error reports stay identical.

use tut_diag::Span;

/// One top-level `packagedElement` directly under `uml:Model`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Byte range of the whole element, `<packagedElement` through the
    /// end of its closing tag (or `/>`).
    pub range: Span,
    /// The `xmi:type` attribute value, e.g. `uml:Class`.
    pub ty: String,
    /// The `xmi:id` attribute value, e.g. `class0`.
    pub id: String,
}

/// The segment decomposition of one document.
#[derive(Clone, Debug, Default)]
pub struct Outline {
    /// Top-level packaged elements in document order.
    pub segments: Vec<Segment>,
    /// Byte range of the `profileApplication` element under the root,
    /// when present.
    pub profile_app: Option<Span>,
}

impl Outline {
    /// Scans `text` into segments, or `None` whenever the document's
    /// shape is anything but the plain XMI layout this module handles.
    pub fn scan(text: &str) -> Option<Outline> {
        Scanner {
            b: text.as_bytes(),
            pos: 0,
        }
        .run()
    }

    /// The document with every segment (and the profile application)
    /// spliced out. All removed ranges sit *after* the root and model
    /// start tags, so the spans of everything that survives into the
    /// skeleton's prefix equal their whole-document spans.
    pub fn skeleton(&self, text: &str) -> String {
        let mut ranges: Vec<Span> = self.segments.iter().map(|s| s.range).collect();
        if let Some(pa) = self.profile_app {
            ranges.push(pa);
        }
        ranges.sort_by_key(|r| r.start);
        let mut out = String::with_capacity(text.len() / 4);
        let mut pos = 0;
        for r in &ranges {
            out.push_str(&text[pos..r.start]);
            pos = r.end;
        }
        out.push_str(&text[pos..]);
        out
    }

    /// The text of one segment.
    pub fn segment_text<'a>(&self, text: &'a str, index: usize) -> &'a str {
        let r = self.segments[index].range;
        &text[r.start..r.end]
    }
}

/// A scanned tag: either `</name ...>` or `<name ...>` / `<name .../>`.
struct Tag {
    name_start: usize,
    name_end: usize,
    /// Attribute source region (between the name and the closing `>`).
    attrs: Span,
    /// One past the closing `>`.
    end: usize,
    closing: bool,
    self_closing: bool,
}

struct Scanner<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn run(mut self) -> Option<Outline> {
        self.skip_prolog()?;
        self.skip_misc()?;
        // Root element: must be an open `xmi:XMI` with content.
        let root = self.tag()?;
        if root.closing || root.self_closing || self.name(&root) != "xmi:XMI" {
            return None;
        }
        let mut outline = Outline::default();
        let mut saw_model = false;
        loop {
            self.skip_misc()?;
            if !self.ws_until_lt() {
                return None; // non-whitespace text under the root
            }
            if self.peek()? != b'<' {
                return None;
            }
            if self.at_comment() {
                self.skip_misc()?;
                continue;
            }
            let tag = self.tag()?;
            if tag.closing {
                break; // end of root content; name checked by the parser
            }
            match self.name(&tag) {
                "uml:Model" if !saw_model => {
                    saw_model = true;
                    if !tag.self_closing {
                        self.model_content(&mut outline)?;
                    }
                }
                "profileApplication" if outline.profile_app.is_none() => {
                    let end = if tag.self_closing {
                        tag.end
                    } else {
                        self.matching_end()?
                    };
                    outline.profile_app = Some(Span::new(tag.name_start - 1, end));
                }
                _ => return None,
            }
        }
        // After the root: only whitespace and comments may follow.
        self.skip_misc()?;
        if self.pos < self.b.len() {
            return None;
        }
        if !saw_model {
            return None;
        }
        Some(outline)
    }

    /// Scans the children of `uml:Model`: a run of `packagedElement`s.
    fn model_content(&mut self, outline: &mut Outline) -> Option<()> {
        loop {
            self.skip_misc()?;
            if !self.ws_until_lt() {
                return None;
            }
            if self.peek()? != b'<' {
                return None;
            }
            if self.at_comment() {
                self.skip_misc()?;
                continue;
            }
            let tag = self.tag()?;
            if tag.closing {
                return Some(()); // `</uml:Model>` (name checked by the parser)
            }
            if self.name(&tag) != "packagedElement" {
                return None;
            }
            let (ty, id) = self.type_and_id(&tag)?;
            let end = if tag.self_closing {
                tag.end
            } else {
                self.matching_end()?
            };
            outline.segments.push(Segment {
                range: Span::new(tag.name_start - 1, end),
                ty,
                id,
            });
        }
    }

    /// Skips the content of the element whose open tag was just scanned,
    /// tracking nesting by depth only, and returns one past the `>` of
    /// the matching close tag.
    fn matching_end(&mut self) -> Option<usize> {
        let mut depth = 1usize;
        loop {
            self.until_lt()?;
            if self.at_comment() {
                self.skip_comment()?;
                continue;
            }
            let tag = self.tag()?;
            if tag.closing {
                depth -= 1;
                if depth == 0 {
                    return Some(tag.end);
                }
            } else if !tag.self_closing {
                depth += 1;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn name(&self, tag: &Tag) -> &'a str {
        std::str::from_utf8(&self.b[tag.name_start..tag.name_end]).unwrap_or("")
    }

    /// Advances past whitespace; true when stopped at `<` or end.
    fn ws_until_lt(&mut self) -> bool {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'<' => return true,
                _ => return false,
            }
        }
        true
    }

    /// Advances to the next `<`, allowing any text on the way.
    fn until_lt(&mut self) -> Option<()> {
        while let Some(c) = self.peek() {
            if c == b'<' {
                return Some(());
            }
            self.pos += 1;
        }
        None
    }

    fn at_comment(&self) -> bool {
        self.b[self.pos..].starts_with(b"<!--")
    }

    fn skip_comment(&mut self) -> Option<()> {
        let rel = self.b[self.pos + 4..]
            .windows(3)
            .position(|w| w == b"-->")?;
        self.pos += 4 + rel + 3;
        Some(())
    }

    fn skip_prolog(&mut self) -> Option<()> {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
        if self.b[self.pos..].starts_with(b"<?xml") {
            let rel = self.b[self.pos..].windows(2).position(|w| w == b"?>")?;
            self.pos += rel + 2;
        }
        Some(())
    }

    /// Skips whitespace and comments.
    fn skip_misc(&mut self) -> Option<()> {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.at_comment() {
                self.skip_comment()?;
            } else {
                return Some(());
            }
        }
    }

    /// Scans one tag starting at `<`. Honors quotes (a `>` inside a
    /// quoted attribute value does not end the tag); bails on `<!` and
    /// `<?` markup.
    fn tag(&mut self) -> Option<Tag> {
        if self.peek()? != b'<' {
            return None;
        }
        self.pos += 1;
        let closing = self.peek()? == b'/';
        if closing {
            self.pos += 1;
        }
        match self.peek()? {
            b'!' | b'?' => return None,
            _ => {}
        }
        let name_start = self.pos;
        while let Some(c) = self.peek() {
            if (c as char).is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == name_start {
            return None;
        }
        let name_end = self.pos;
        let attrs_start = self.pos;
        let mut quote: Option<u8> = None;
        let mut self_closing = false;
        loop {
            let c = self.peek()?;
            self.pos += 1;
            match quote {
                Some(q) => {
                    if c == q {
                        quote = None;
                    }
                }
                None => match c {
                    b'"' | b'\'' => quote = Some(c),
                    b'>' => break,
                    b'/' if self.peek() == Some(b'>') => {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                    _ => {}
                },
            }
        }
        let attrs_end = self.pos - 1 - usize::from(self_closing);
        Some(Tag {
            name_start,
            name_end,
            attrs: Span::new(attrs_start, attrs_end),
            end: self.pos,
            closing,
            self_closing,
        })
    }

    /// Extracts `xmi:type` and `xmi:id` from a tag's attribute region.
    /// Bails on syntax the parser would reject and on values carrying
    /// entity references (never the case for types and identifiers).
    fn type_and_id(&self, tag: &Tag) -> Option<(String, String)> {
        let mut ty = None;
        let mut id = None;
        let region = &self.b[tag.attrs.start..tag.attrs.end];
        let mut i = 0;
        while i < region.len() {
            match region[i] {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    i += 1;
                    continue;
                }
                _ => {}
            }
            let key_start = i;
            while i < region.len()
                && ((region[i] as char).is_ascii_alphanumeric()
                    || matches!(region[i], b':' | b'_' | b'-' | b'.'))
            {
                i += 1;
            }
            if i == key_start {
                return None;
            }
            let key = &region[key_start..i];
            while i < region.len() && region[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= region.len() || region[i] != b'=' {
                return None;
            }
            i += 1;
            while i < region.len() && region[i].is_ascii_whitespace() {
                i += 1;
            }
            let q = *region.get(i)?;
            if q != b'"' && q != b'\'' {
                return None;
            }
            i += 1;
            let val_start = i;
            while i < region.len() && region[i] != q {
                i += 1;
            }
            if i >= region.len() {
                return None;
            }
            let value = std::str::from_utf8(&region[val_start..i]).ok()?;
            i += 1;
            if key == b"xmi:type" || key == b"xmi:id" {
                if value.contains('&') {
                    return None;
                }
                if key == b"xmi:type" {
                    ty = Some(value.to_owned());
                } else {
                    id = Some(value.to_owned());
                }
            }
        }
        Some((ty?, id?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::XmlNode;

    const DOC: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<xmi:XMI xmlns:xmi="http://www.omg.org/XMI">
  <uml:Model name="m">
    <!-- a comment between elements -->
    <packagedElement xmi:type="uml:Class" xmi:id="class0" name="A"/>
    <packagedElement xmi:type="uml:StateMachine" xmi:id="sm0" name="b">
      <state name="s0" kind="normal"/>
    </packagedElement>
  </uml:Model>
  <profileApplication appliedProfile="TUTProfile">
    <stereotypeApplication base="class0" stereotype="ApplicationComponent"/>
  </profileApplication>
</xmi:XMI>
"#;

    #[test]
    fn scans_segments_in_document_order() {
        let outline = Outline::scan(DOC).unwrap();
        assert_eq!(outline.segments.len(), 2);
        assert_eq!(outline.segments[0].ty, "uml:Class");
        assert_eq!(outline.segments[0].id, "class0");
        assert_eq!(outline.segments[1].ty, "uml:StateMachine");
        assert_eq!(outline.segments[1].id, "sm0");
        let seg0 = outline.segment_text(DOC, 0);
        assert!(seg0.starts_with("<packagedElement"));
        assert!(seg0.ends_with("/>"));
        let seg1 = outline.segment_text(DOC, 1);
        assert!(seg1.ends_with("</packagedElement>"));
        let pa = outline.profile_app.unwrap();
        assert!(DOC[pa.start..pa.end].starts_with("<profileApplication"));
        assert!(DOC[pa.start..pa.end].ends_with("</profileApplication>"));
    }

    #[test]
    fn segments_parse_standalone_and_skeleton_parses() {
        let outline = Outline::scan(DOC).unwrap();
        for i in 0..outline.segments.len() {
            let node = XmlNode::parse(outline.segment_text(DOC, i)).unwrap();
            assert_eq!(node.name, "packagedElement");
            assert_eq!(node.attr("xmi:id"), Some(outline.segments[i].id.as_str()));
        }
        let skeleton = outline.skeleton(DOC);
        let root = XmlNode::parse(&skeleton).unwrap();
        assert_eq!(root.name, "xmi:XMI");
        let model = root.child("uml:Model").unwrap();
        assert!(model.children.is_empty());
        assert!(root.child("profileApplication").is_none());
        // Skeleton-prefix spans equal whole-document spans: every splice
        // comes after the model start tag.
        let whole = XmlNode::parse(DOC).unwrap();
        assert_eq!(root.span, whole.span);
        assert_eq!(model.span, whole.child("uml:Model").unwrap().span);
    }

    #[test]
    fn real_generated_documents_scan() {
        // The writer's output for any system model must be scannable,
        // otherwise the incremental path never engages.
        let doc = crate::xmi::to_xml(&crate::model::Model::new("empty"));
        let outline = Outline::scan(&doc).expect("generated documents must scan");
        assert!(outline.segments.is_empty());
    }

    #[test]
    fn quoted_gt_and_comments_do_not_confuse_the_scanner() {
        let doc = r#"<xmi:XMI><uml:Model name="m">
            <packagedElement xmi:type="uml:StateMachine" xmi:id="sm0">
              <transition guard="x > 1"/>
              <!-- </packagedElement> a close tag inside a comment -->
            </packagedElement>
        </uml:Model></xmi:XMI>"#;
        let outline = Outline::scan(doc).unwrap();
        assert_eq!(outline.segments.len(), 1);
        assert!(outline.segment_text(doc, 0).ends_with("</packagedElement>"));
        assert!(outline.profile_app.is_none());
    }

    #[test]
    fn bails_on_anything_unusual() {
        for (label, doc) in [
            ("wrong root", "<root/>"),
            ("no model", "<xmi:XMI><other/></xmi:XMI>"),
            (
                "non-packaged child",
                "<xmi:XMI><uml:Model><weird/></uml:Model></xmi:XMI>",
            ),
            (
                "missing xmi:id",
                r#"<xmi:XMI><uml:Model><packagedElement xmi:type="uml:Class"/></uml:Model></xmi:XMI>"#,
            ),
            (
                "text under model",
                "<xmi:XMI><uml:Model>stray</uml:Model></xmi:XMI>",
            ),
            ("two models", "<xmi:XMI><uml:Model/><uml:Model/></xmi:XMI>"),
            ("doctype", "<!DOCTYPE x><xmi:XMI><uml:Model/></xmi:XMI>"),
            (
                "truncated",
                r#"<xmi:XMI><uml:Model><packagedElement xmi:type="uml:Class" xmi:id="c0">"#,
            ),
            (
                "trailing content",
                "<xmi:XMI><uml:Model/></xmi:XMI><extra/>",
            ),
        ] {
            assert!(Outline::scan(doc).is_none(), "should bail: {label}");
        }
    }
}
