//! Runtime values and data types shared by the action language, signal
//! payloads, and tagged values.

use std::fmt;

/// The data types understood by the action language and signal parameters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Owned byte buffer (frames, payloads).
    Bytes,
    /// UTF-8 string (identifiers, log text).
    Str,
}

impl DataType {
    /// The C type the code generator emits for this data type.
    pub fn c_type(self) -> &'static str {
        match self {
            DataType::Int => "int64_t",
            DataType::Bool => "bool",
            DataType::Bytes => "tut_bytes_t",
            DataType::Str => "const char *",
        }
    }

    /// A zero/empty value of this type.
    pub fn default_value(self) -> Value {
        match self {
            DataType::Int => Value::Int(0),
            DataType::Bool => Value::Bool(false),
            DataType::Bytes => Value::Bytes(Vec::new()),
            DataType::Str => Value::Str(String::new()),
        }
    }

    /// The name used in XMI serialisation.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Bool => "Bool",
            DataType::Bytes => "Bytes",
            DataType::Str => "Str",
        }
    }

    /// Parses a type from its XMI name.
    pub fn from_name(name: &str) -> Option<DataType> {
        match name {
            "Int" => Some(DataType::Int),
            "Bool" => Some(DataType::Bool),
            "Bytes" => Some(DataType::Bytes),
            "Str" => Some(DataType::Str),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value: variable contents, signal payload field, or the result
/// of evaluating an action-language expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// Byte-buffer value.
    Bytes(Vec<u8>),
    /// String value.
    Str(String),
}

impl Value {
    /// Returns the [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Bool(_) => DataType::Bool,
            Value::Bytes(_) => DataType::Bytes,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes` value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is "truthy": non-zero int, `true`, non-empty buffer
    /// or string. Used by guard evaluation when a non-bool leaks into a
    /// boolean position.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(i) => *i != 0,
            Value::Bool(b) => *b,
            Value::Bytes(b) => !b.is_empty(),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// An abstract "size" of the value, used for communication-cost
    /// accounting: bytes for buffers/strings, 8 for ints, 1 for bools.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
            Value::Bytes(b) => b.len(),
            Value::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_match() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Bytes(vec![1]).data_type(), DataType::Bytes);
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Str);
    }

    #[test]
    fn default_values_are_zeroish() {
        assert_eq!(DataType::Int.default_value(), Value::Int(0));
        assert_eq!(DataType::Bool.default_value(), Value::Bool(false));
        assert!(!DataType::Bytes.default_value().is_truthy());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Str("a".into()).is_truthy());
        assert!(!Value::Bytes(vec![]).is_truthy());
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(9).size_bytes(), 8);
        assert_eq!(Value::Bytes(vec![0; 42]).size_bytes(), 42);
        assert_eq!(Value::Bool(true).size_bytes(), 1);
    }

    #[test]
    fn type_names_round_trip() {
        for t in [
            DataType::Int,
            DataType::Bool,
            DataType::Bytes,
            DataType::Str,
        ] {
            assert_eq!(DataType::from_name(t.name()), Some(t));
        }
        assert_eq!(DataType::from_name("Float"), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }
}
