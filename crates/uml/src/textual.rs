//! The textual notation of the action language.
//!
//! The paper describes behaviour with "statechart diagrams combined with
//! the UML 2.0 textual notation" (§4.1). This module is the concrete
//! syntax: a recursive-descent parser from text to the [`crate::action`]
//! AST, so guards and effect lists can be written the way a designer
//! would type them into a tool:
//!
//! ```text
//! seq := seq + 1;
//! if len($payload) > 256 {
//!     compute mem len($payload) / 4;
//!     send pOut.TxPdu(slice($payload, 0, 256), seq);
//! } else {
//!     send pOut.TxPdu($payload, seq);
//! }
//! set_timer ackT, 200000;
//! log "queued fragment {}", seq;
//! ```
//!
//! Grammar (expressions in precedence order):
//!
//! ```text
//! statements := statement*
//! statement  := ident ":=" expr ";"
//!             | "send" ident "." ident "(" args ")" ";"
//!             | "if" expr block ("else" (block | if-statement))?
//!             | "while" expr ("bound" INT)? block
//!             | "compute" ("control"|"dsp"|"bit"|"mem") expr ";"
//!             | "log" STRING ("," args)? ";"
//!             | "set_timer" ident "," expr ";"
//!             | "cancel_timer" ident ";"
//! expr  := or
//! or    := and ("||" and)*
//! and   := cmp ("&&" cmp)*
//! cmp   := bitor (("=="|"!="|"<="|"<"|">="|">") bitor)?
//! bitor := add (("|"|"^") add)*
//! add   := mul (("+"|"-") mul)*
//! mul   := shift (("*"|"/"|"%") shift)*
//! shift := unary (("<<"|">>"|"&") unary)*
//! unary := ("!"|"-") unary | primary
//! primary := INT | "true" | "false" | STRING | x"hex"
//!          | "$" ident | ident "(" args ")" | ident | "(" expr ")"
//! ```
//!
//! # Error recovery
//!
//! [`parse_program`] is the diagnostics-aware entry point: instead of
//! failing on the first syntax error, it records a spanned
//! [`Diagnostic`] and synchronises to the next statement boundary (a `;`
//! at the current brace depth, or the `}` closing the enclosing block),
//! so one pass reports every broken statement. Codes: `E0110` for syntax
//! errors, `E0111` for unknown names (signals, builtins, cost classes),
//! `E0112` for malformed literals and arity mismatches.

use tut_diag::{Diagnostic, DiagnosticBag, Span};

use crate::action::{BinOp, Builtin, CostClass, Expr, Statement, UnaryOp};
use crate::error::{Error, Result};
use crate::model::Model;
use crate::value::Value;

/// Action-language syntax error.
pub const E_SYNTAX: &str = "E0110";
/// Unknown name: signal, builtin function, or cost class.
pub const E_UNKNOWN_NAME: &str = "E0111";
/// Malformed literal or wrong argument count.
pub const E_LITERAL: &str = "E0112";

/// A parse error local to this module, carrying the span and stable code
/// that the diagnostics path needs. Converted to [`Error::Action`] at the
/// fail-fast public boundary.
#[derive(Clone, Debug)]
struct ParseErr {
    span: Span,
    code: &'static str,
    message: String,
}

impl ParseErr {
    fn into_error(self) -> Error {
        Error::Action(format!("at byte {}: {}", self.span.start, self.message))
    }

    fn into_diagnostic(self) -> Diagnostic {
        Diagnostic::error(self.code, self.message).with_span(self.span)
    }
}

type PResult<T> = std::result::Result<T, ParseErr>;

/// The result of parsing with error recovery: every statement that parsed
/// cleanly, the source span of each, and the diagnostics for the parts
/// that did not.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    /// Statements that parsed successfully, in source order.
    pub statements: Vec<Statement>,
    /// Source span of each top-level statement, parallel to `statements`.
    pub spans: Vec<Span>,
    /// Syntax diagnostics accumulated during recovery.
    pub diagnostics: DiagnosticBag,
}

/// Parses an expression from its textual form.
///
/// # Errors
///
/// Returns [`Error::Action`] with a byte offset on malformed input.
///
/// # Example
///
/// ```
/// use tut_uml::textual::parse_expr;
/// use tut_uml::action::Env;
/// use tut_uml::Value;
///
/// let expr = parse_expr("crc32(x\"deadbeef\") & 255")?;
/// let value = expr.eval(&Env::new())?;
/// assert_eq!(value.data_type(), tut_uml::DataType::Int);
/// # Ok::<(), tut_uml::Error>(())
/// ```
pub fn parse_expr(text: &str) -> Result<Expr> {
    let mut parser = Parser::new(text, None);
    let expr = parser.expr().map_err(ParseErr::into_error)?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("trailing input after expression").into_error());
    }
    Ok(expr)
}

/// Parses a statement list, failing on the first error. `model` is needed
/// to resolve signal names in `send` statements.
///
/// # Errors
///
/// Returns [`Error::Action`] on syntax errors or unknown signal names.
/// Use [`parse_program`] to collect *all* errors with spans instead.
///
/// # Example
///
/// ```
/// use tut_uml::textual::parse_statements;
/// use tut_uml::Model;
///
/// let mut model = Model::new("M");
/// let sig = model.add_signal("Ping");
/// let program = parse_statements("n := n + 1; send out.Ping(n);", &model)?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), tut_uml::Error>(())
/// ```
pub fn parse_statements(text: &str, model: &Model) -> Result<Vec<Statement>> {
    let mut parser = Parser::new(text, Some(model));
    let statements = parser.statements().map_err(ParseErr::into_error)?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("trailing input after statements").into_error());
    }
    Ok(statements)
}

/// Parses a statement list with statement-level error recovery.
///
/// On a syntax error the parser records a spanned diagnostic and skips to
/// the next statement boundary — the next `;` at the current brace depth,
/// or the `}` that closes the enclosing block — then keeps parsing, so a
/// program with three broken statements yields three diagnostics, not one.
/// Recovery works at every block nesting level.
///
/// # Example
///
/// ```
/// use tut_uml::textual::parse_program;
///
/// let parsed = parse_program("a := 1;\nb := ;\nc := 3;", None);
/// assert_eq!(parsed.statements.len(), 2, "a and c survive");
/// assert_eq!(parsed.diagnostics.len(), 1);
/// assert!(parsed.diagnostics.has_errors());
/// ```
pub fn parse_program(text: &str, model: Option<&Model>) -> ParsedProgram {
    let mut parser = Parser::new(text, model);
    parser.recovering = true;
    let mut program = ParsedProgram::default();
    loop {
        parser.statements_recovering(&mut program);
        parser.skip_ws();
        if parser.at_end() {
            break;
        }
        // A stray `}` at top level: report it once and continue after it.
        let diag = parser.error("unexpected `}` with no open block");
        program.diagnostics.push(diag.into_diagnostic());
        parser.pos += 1;
    }
    program
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
    model: Option<&'a Model>,
    /// True for [`parse_program`]: blocks re-enter the recovering
    /// statement loop so errors inside nested blocks are also collected.
    recovering: bool,
    /// Diagnostics from nested blocks while recovering.
    nested: Vec<ParseErr>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str, model: Option<&'a Model>) -> Parser<'a> {
        Parser {
            text,
            pos: 0,
            model,
            recovering: false,
            nested: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseErr {
        self.error_code(E_SYNTAX, message)
    }

    fn error_code(&self, code: &'static str, message: impl Into<String>) -> ParseErr {
        ParseErr {
            span: Span::point(self.pos),
            code,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            // Line comments.
            if self.rest().starts_with("//") {
                match self.rest().find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.text.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> PResult<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    /// Eats a keyword: like [`eat`] but only when not followed by an
    /// identifier character (so `sender` is not `send` + `er`).
    fn eat_keyword(&mut self, keyword: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if !rest.starts_with(keyword) {
            return false;
        }
        match rest[keyword.len()..].chars().next() {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => false,
            _ => {
                self.pos += keyword.len();
                true
            }
        }
    }

    fn ident(&mut self) -> PResult<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_ascii_alphabetic() || c == '_'
            } else {
                c.is_ascii_alphanumeric() || c == '_'
            };
            if !ok {
                break;
            }
            len = i + c.len_utf8();
        }
        if len == 0 {
            return Err(self.error("expected an identifier"));
        }
        let ident = &rest[..len];
        self.pos += len;
        Ok(ident.to_owned())
    }

    fn string_literal(&mut self) -> PResult<String> {
        self.skip_ws();
        if !self.rest().starts_with('"') {
            return Err(self.error("expected a string literal"));
        }
        self.pos += 1;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => out.push(other),
                    None => break,
                },
                other => out.push(other),
            }
        }
        Err(self.error("unterminated string literal"))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat("||") {
            let rhs = self.and_expr()?;
            lhs = lhs.bin(BinOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat("&&") {
            let rhs = self.cmp_expr()?;
            lhs = lhs.bin(BinOp::And, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.bitor_expr()?;
        // Note order: multi-char operators first.
        for (token, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<<", BinOp::Shl), // guard: `<<` is not a comparison
            (">>", BinOp::Shr),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            self.skip_ws();
            if matches!(op, BinOp::Shl | BinOp::Shr) {
                // Shifts are handled at the `shift` level; seeing one here
                // means precedence already consumed it. Skip.
                if self.rest().starts_with(token) {
                    break;
                }
                continue;
            }
            if self.rest().starts_with(token) {
                self.pos += token.len();
                let rhs = self.bitor_expr()?;
                return Ok(lhs.bin(op, rhs));
            }
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with("||") {
                break; // logical or, handled above
            }
            if self.rest().starts_with('|') {
                self.pos += 1;
                let rhs = self.add_expr()?;
                lhs = lhs.bin(BinOp::BitOr, rhs);
            } else if self.rest().starts_with('^') {
                self.pos += 1;
                let rhs = self.add_expr()?;
                lhs = lhs.bin(BinOp::BitXor, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('+') {
                self.pos += 1;
                let rhs = self.mul_expr()?;
                lhs = lhs.bin(BinOp::Add, rhs);
            } else if self.rest().starts_with('-') {
                self.pos += 1;
                let rhs = self.mul_expr()?;
                lhs = lhs.bin(BinOp::Sub, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift_expr()?;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.starts_with("//") {
                break; // comment
            }
            if rest.starts_with('*') {
                self.pos += 1;
                let rhs = self.shift_expr()?;
                lhs = lhs.bin(BinOp::Mul, rhs);
            } else if rest.starts_with('/') {
                self.pos += 1;
                let rhs = self.shift_expr()?;
                lhs = lhs.bin(BinOp::Div, rhs);
            } else if rest.starts_with('%') {
                self.pos += 1;
                let rhs = self.shift_expr()?;
                lhs = lhs.bin(BinOp::Mod, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.starts_with("<<") {
                self.pos += 2;
                let rhs = self.unary_expr()?;
                lhs = lhs.bin(BinOp::Shl, rhs);
            } else if rest.starts_with(">>") {
                self.pos += 2;
                let rhs = self.unary_expr()?;
                lhs = lhs.bin(BinOp::Shr, rhs);
            } else if rest.starts_with('&') && !rest.starts_with("&&") {
                self.pos += 1;
                let rhs = self.unary_expr()?;
                lhs = lhs.bin(BinOp::BitAnd, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        self.skip_ws();
        if self.rest().starts_with('!') && !self.rest().starts_with("!=") {
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        if self.rest().starts_with('-') {
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        self.skip_ws();
        let rest = self.rest();
        // Parenthesised.
        if rest.starts_with('(') {
            self.pos += 1;
            let inner = self.expr()?;
            self.expect(")")?;
            return Ok(inner);
        }
        // Signal parameter.
        if rest.starts_with('$') {
            self.pos += 1;
            let name = self.ident()?;
            return Ok(Expr::Param(name));
        }
        // Hex byte-buffer literal: x"dead beef".
        if rest.starts_with("x\"") {
            self.pos += 1;
            let hex = self.string_literal()?;
            let cleaned: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
            if !cleaned.len().is_multiple_of(2) {
                return Err(self.error_code(E_LITERAL, "hex literal needs an even digit count"));
            }
            let mut bytes = Vec::with_capacity(cleaned.len() / 2);
            for i in (0..cleaned.len()).step_by(2) {
                let byte = u8::from_str_radix(&cleaned[i..i + 2], 16)
                    .map_err(|_| self.error_code(E_LITERAL, "bad hex digit in byte literal"))?;
                bytes.push(byte);
            }
            return Ok(Expr::Lit(Value::Bytes(bytes)));
        }
        // String literal.
        if rest.starts_with('"') {
            let s = self.string_literal()?;
            return Ok(Expr::Lit(Value::Str(s)));
        }
        // Integer.
        if rest.starts_with(|c: char| c.is_ascii_digit()) {
            let digits: String = if rest.starts_with("0x") || rest.starts_with("0X") {
                let hex: String = rest[2..]
                    .chars()
                    .take_while(|c| c.is_ascii_hexdigit())
                    .collect();
                self.pos += 2 + hex.len();
                return i64::from_str_radix(&hex, 16)
                    .map(Expr::int)
                    .map_err(|_| self.error_code(E_LITERAL, "bad hex integer"));
            } else {
                rest.chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '_')
                    .collect()
            };
            self.pos += digits.len();
            let cleaned: String = digits.chars().filter(|c| *c != '_').collect();
            return cleaned
                .parse::<i64>()
                .map(Expr::int)
                .map_err(|_| self.error_code(E_LITERAL, "bad integer literal"));
        }
        // Keywords, builtins, variables.
        if self.eat_keyword("true") {
            return Ok(Expr::bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(Expr::bool(false));
        }
        let name = self.ident()?;
        self.skip_ws();
        if self.rest().starts_with('(') {
            let builtin = Builtin::from_name(&name).ok_or_else(|| {
                self.error_code(E_UNKNOWN_NAME, format!("unknown builtin `{name}`"))
            })?;
            self.pos += 1;
            let args = self.args()?;
            self.expect(")")?;
            if args.len() != builtin.arity() {
                return Err(self.error_code(
                    E_LITERAL,
                    format!(
                        "builtin `{name}` expects {} arguments, got {}",
                        builtin.arity(),
                        args.len()
                    ),
                ));
            }
            return Ok(Expr::Call(builtin, args));
        }
        Ok(Expr::Var(name))
    }

    fn args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        self.skip_ws();
        if self.rest().starts_with(')') {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat(",") {
                return Ok(args);
            }
        }
    }

    // ---- statements -------------------------------------------------------

    fn statements(&mut self) -> PResult<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.at_end() || self.rest().starts_with('}') {
                return Ok(out);
            }
            out.push(self.statement()?);
        }
    }

    /// The recovering statement loop: parse errors become diagnostics and
    /// the parser resynchronises at the next statement boundary instead of
    /// giving up. Stops at end of input or at a `}` for the caller (a
    /// [`Parser::block`]) to consume.
    fn statements_recovering(&mut self, program: &mut ParsedProgram) {
        loop {
            self.skip_ws();
            if self.at_end() || self.rest().starts_with('}') {
                return;
            }
            let start = self.pos;
            match self.statement() {
                Ok(stmt) => {
                    for nested in self.nested.drain(..) {
                        program.diagnostics.push(nested.into_diagnostic());
                    }
                    program.statements.push(stmt);
                    program.spans.push(Span::new(start, self.pos));
                }
                Err(err) => {
                    for nested in self.nested.drain(..) {
                        program.diagnostics.push(nested.into_diagnostic());
                    }
                    program.diagnostics.push(err.into_diagnostic());
                    self.synchronize();
                    if self.pos == start {
                        // Zero progress: consume one character so the loop
                        // always terminates.
                        let step = self.rest().chars().next().map_or(1, char::len_utf8);
                        self.pos = (self.pos + step).min(self.text.len());
                    }
                }
            }
        }
    }

    /// Skips forward to the next statement boundary: just past a `;` at
    /// the current brace depth, or *onto* a `}` that closes the enclosing
    /// block (left for the block parser to consume). Strings and line
    /// comments are skipped so their contents cannot fake a boundary.
    fn synchronize(&mut self) {
        let bytes = self.text.as_bytes();
        let mut depth = 0usize;
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b';' if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                b'{' => {
                    depth += 1;
                    self.pos += 1;
                }
                b'}' => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    while self.pos < bytes.len() {
                        match bytes[self.pos] {
                            b'\\' => self.pos = (self.pos + 2).min(bytes.len()),
                            b'"' => {
                                self.pos += 1;
                                break;
                            }
                            _ => self.pos += 1,
                        }
                    }
                }
                b'/' if bytes.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => self.pos += 1,
            }
        }
    }

    fn block(&mut self) -> PResult<Vec<Statement>> {
        self.expect("{")?;
        let body = if self.recovering {
            // Collect nested errors as diagnostics (via the `nested`
            // buffer) so a broken statement inside a block doesn't lose
            // its siblings — recovery works at every nesting level.
            let mut inner = ParsedProgram::default();
            self.statements_recovering(&mut inner);
            self.nested
                .extend(inner.diagnostics.into_iter().map(|d| ParseErr {
                    span: d.span.unwrap_or(Span::NONE),
                    code: d.code,
                    message: d.message,
                }));
            inner.statements
        } else {
            self.statements()?
        };
        self.expect("}")?;
        Ok(body)
    }

    fn statement(&mut self) -> PResult<Statement> {
        if self.eat_keyword("send") {
            let port = self.ident()?;
            self.expect(".")?;
            let signal_name = self.ident()?;
            let model = self
                .model
                .ok_or_else(|| self.error("send statements need a model for signal lookup"))?;
            let signal = model.find_signal(&signal_name).ok_or_else(|| {
                self.error_code(E_UNKNOWN_NAME, format!("unknown signal `{signal_name}`"))
            })?;
            self.expect("(")?;
            let args = self.args()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(Statement::Send { port, signal, args });
        }
        if self.eat_keyword("if") {
            let cond = self.expr()?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_keyword("else") {
                self.skip_ws();
                if self.rest().starts_with("if") {
                    vec![self.statement()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Statement::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_keyword("while") {
            let cond = self.expr()?;
            let max_iter = if self.eat_keyword("bound") {
                match self.expr()? {
                    Expr::Lit(Value::Int(n)) if n > 0 => n as u32,
                    _ => {
                        return Err(
                            self.error_code(E_LITERAL, "`bound` needs a positive integer literal")
                        )
                    }
                }
            } else {
                1024
            };
            let body = self.block()?;
            return Ok(Statement::While {
                cond,
                body,
                max_iter,
            });
        }
        if self.eat_keyword("compute") {
            let class_name = self.ident()?;
            let class = CostClass::from_name(&class_name).ok_or_else(|| {
                self.error_code(E_UNKNOWN_NAME, format!("unknown cost class `{class_name}`"))
            })?;
            let amount = self.expr()?;
            self.expect(";")?;
            return Ok(Statement::Compute { class, amount });
        }
        if self.eat_keyword("log") {
            let message = self.string_literal()?;
            let args = if self.eat(",") {
                self.args()?
            } else {
                Vec::new()
            };
            self.expect(";")?;
            return Ok(Statement::Log { message, args });
        }
        if self.eat_keyword("set_timer") {
            let name = self.ident()?;
            self.expect(",")?;
            let duration = self.expr()?;
            self.expect(";")?;
            return Ok(Statement::SetTimer { name, duration });
        }
        if self.eat_keyword("cancel_timer") {
            let name = self.ident()?;
            self.expect(";")?;
            return Ok(Statement::CancelTimer { name });
        }
        if self.eat_keyword("count") {
            // Counter names may be dotted (`arq.retries`) to group
            // related tallies in the profiling report.
            let mut counter = self.ident()?;
            while self.eat(".") {
                counter.push('.');
                counter.push_str(&self.ident()?);
            }
            self.expect(",")?;
            let amount = self.expr()?;
            self.expect(";")?;
            return Ok(Statement::Count { counter, amount });
        }
        // Assignment.
        let var = self.ident()?;
        self.expect(":=")?;
        let expr = self.expr()?;
        self.expect(";")?;
        Ok(Statement::Assign { var, expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Env;

    fn eval(text: &str) -> Value {
        parse_expr(text)
            .expect("parse")
            .eval(&Env::new())
            .expect("eval")
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(eval("2 + 3 * 4"), Value::Int(14));
        assert_eq!(eval("(2 + 3) * 4"), Value::Int(20));
        assert_eq!(eval("10 - 4 - 3"), Value::Int(3), "left associative");
        assert_eq!(eval("7 % 3 + 1"), Value::Int(2));
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval("1 < 2 && 3 >= 3"), Value::Bool(true));
        assert_eq!(eval("1 == 2 || !false"), Value::Bool(true));
        assert_eq!(eval("2 != 2"), Value::Bool(false));
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(eval("1 << 4"), Value::Int(16));
        assert_eq!(eval("255 & 15"), Value::Int(15));
        assert_eq!(eval("8 | 1"), Value::Int(9));
        assert_eq!(eval("5 ^ 1"), Value::Int(4));
        assert_eq!(eval("256 >> 4"), Value::Int(16));
    }

    #[test]
    fn literals() {
        assert_eq!(eval("0xff"), Value::Int(255));
        assert_eq!(eval("1_000_000"), Value::Int(1_000_000));
        assert_eq!(eval("true"), Value::Bool(true));
        assert_eq!(eval("\"hi\""), Value::Str("hi".into()));
        assert_eq!(
            eval("x\"dead beef\""),
            Value::Bytes(vec![0xde, 0xad, 0xbe, 0xef])
        );
        assert_eq!(eval("-5"), Value::Int(-5));
    }

    #[test]
    fn builtins_and_params() {
        assert_eq!(eval("len(x\"0102\")"), Value::Int(2));
        assert_eq!(eval("min(3, max(1, 2))"), Value::Int(2));
        assert_eq!(eval("unpack_int(pack_int(513, 2))"), Value::Int(513));
        let e = parse_expr("$payload").unwrap();
        assert_eq!(e, Expr::Param("payload".into()));
        assert!(parse_expr("nosuch(1)").is_err());
        assert!(parse_expr("len(1, 2)").is_err(), "arity checked");
    }

    #[test]
    fn display_form_reparses() {
        for text in [
            "((a + 1) * 2)",
            "(len($p) > 256)",
            "crc32(buf)",
            "!(flag)",
            "((x << 2) | 1)",
        ] {
            let parsed = parse_expr(text).unwrap();
            let reparsed = parse_expr(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "display of `{text}` must reparse");
        }
    }

    #[test]
    fn statements_full_program() {
        let mut model = Model::new("M");
        model.add_signal("TxPdu");
        let program = parse_statements(
            r#"
            // fragmentation step
            seq := seq + 1;
            if len($payload) > 256 {
                compute mem len($payload) / 4;
                send pOut.TxPdu(slice($payload, 0, 256), seq);
            } else {
                send pOut.TxPdu($payload, seq);
            }
            while n > 0 bound 64 { n := n - 1; }
            set_timer ackT, 200000;
            log "queued {}", seq;
            cancel_timer ackT;
            count arq.tx, 1;
            "#,
            &model,
        )
        .expect("parse");
        assert_eq!(program.len(), 7);
        assert!(matches!(&program[0], Statement::Assign { var, .. } if var == "seq"));
        assert!(matches!(&program[1], Statement::If { .. }));
        assert!(matches!(&program[2], Statement::While { max_iter: 64, .. }));
        assert!(matches!(&program[3], Statement::SetTimer { .. }));
        assert!(matches!(&program[4], Statement::Log { .. }));
        assert!(matches!(&program[5], Statement::CancelTimer { .. }));
        assert!(matches!(&program[6], Statement::Count { counter, .. } if counter == "arq.tx"));
    }

    #[test]
    fn else_if_chains() {
        let model = Model::new("M");
        let program = parse_statements(
            "if a > 1 { x := 1; } else if a > 0 { x := 2; } else { x := 3; }",
            &model,
        )
        .unwrap();
        let Statement::If { else_branch, .. } = &program[0] else {
            panic!("expected if");
        };
        assert!(matches!(&else_branch[0], Statement::If { .. }));
    }

    #[test]
    fn unknown_signal_rejected() {
        let model = Model::new("M");
        let err = parse_statements("send p.Nope();", &model).unwrap_err();
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_expr("1 + + 2").unwrap_err();
        assert!(err.to_string().contains("at byte"));
        assert!(parse_expr("").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn executed_parsed_program_matches_built_ast() {
        use crate::action::{execute, Effect};
        let mut model = Model::new("M");
        let sig = model.add_signal("Out");
        let program = parse_statements(
            "total := 0; while total < 10 bound 32 { total := total + 3; } send p.Out(total);",
            &model,
        )
        .unwrap();
        let mut env = Env::new();
        let mut effects = Vec::new();
        let mut weight = 0;
        execute(&program, &mut env, &mut effects, &mut weight).unwrap();
        assert_eq!(env.vars["total"], Value::Int(12));
        assert_eq!(
            effects,
            vec![Effect::Send {
                port: "p".into(),
                signal: sig,
                values: vec![Value::Int(12)],
            }]
        );
    }

    // ---- error recovery ---------------------------------------------------

    #[test]
    fn recovery_collects_every_broken_statement() {
        let text = "a := 1;\nb := ;\nc := 3;\nd % 4;\ne := 5;\nsend p.Nope();\n";
        let model = Model::new("M");
        let parsed = parse_program(text, Some(&model));
        assert_eq!(
            parsed.statements.len(),
            3,
            "a, c, e survive: {:?}",
            parsed.statements
        );
        assert_eq!(parsed.spans.len(), parsed.statements.len());
        assert_eq!(parsed.diagnostics.len(), 3, "{}", parsed.diagnostics);
        let codes: Vec<_> = parsed.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, [E_SYNTAX, E_SYNTAX, E_UNKNOWN_NAME]);
        for d in &parsed.diagnostics {
            assert!(d.span.is_some(), "recovery diagnostics carry spans");
        }
    }

    #[test]
    fn recovery_inside_nested_blocks() {
        let text = "if a > 0 {\n  x := ;\n  y := 2;\n}\nz := 3;";
        let parsed = parse_program(text, None);
        assert_eq!(parsed.diagnostics.len(), 1, "{}", parsed.diagnostics);
        assert_eq!(
            parsed.statements.len(),
            2,
            "the if (with its surviving body) and z"
        );
        let Statement::If { then_branch, .. } = &parsed.statements[0] else {
            panic!("expected if");
        };
        assert_eq!(then_branch.len(), 1, "y survives inside the block");
    }

    #[test]
    fn recovery_skips_boundaries_inside_strings_and_comments() {
        // The `;`/`}` inside the string and comment must not be treated as
        // statement boundaries while synchronising.
        let text = "a := % \"; } fake\"; // ; also fake\nb := 2;";
        let parsed = parse_program(text, None);
        assert_eq!(parsed.diagnostics.len(), 1, "{}", parsed.diagnostics);
        assert_eq!(parsed.statements.len(), 1);
        assert!(matches!(&parsed.statements[0], Statement::Assign { var, .. } if var == "b"));
    }

    #[test]
    fn recovery_terminates_on_pathological_input() {
        for text in ["}", "}}}", "{", ";;;", "@#!", "if {", "a :="] {
            let parsed = parse_program(text, None);
            assert!(!parsed.diagnostics.is_empty(), "input {text:?}");
        }
    }

    #[test]
    fn recovered_spans_point_at_the_failure() {
        let text = "good := 1;\nbad := ;\n";
        let parsed = parse_program(text, None);
        let diag = parsed.diagnostics.first().expect("one diagnostic");
        let span = diag.span.expect("span");
        // The failure is at the `;` where an expression should start.
        assert_eq!(&text[span.start..span.start + 1], ";");
    }
}
