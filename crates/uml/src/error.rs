//! Error type for the UML metamodel crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// XML syntax error code (drivers map [`Error::XmlSyntax`] onto this).
pub const E_XML_SYNTAX: &str = "E0101";

/// Errors produced while building, serialising, or checking a model.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Error {
    /// An element name was looked up but does not exist in the model.
    UnknownElement {
        /// The element kind that was looked up (e.g. `"class"`).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An id referred to an element outside the arena bounds.
    DanglingId {
        /// The element kind of the id.
        kind: &'static str,
        /// Display form of the dangling id.
        id: String,
    },
    /// The XML document failed to parse.
    XmlSyntax {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// 1-based line of the failure, resolved via `tut_diag::SourceMap`.
        line: usize,
        /// 1-based column of the failure within `line`.
        column: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The XML parsed, but its structure does not describe a valid model.
    XmiStructure(String),
    /// A well-formedness rule was violated.
    WellFormedness(String),
    /// An action-language expression failed to parse or type-check.
    Action(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownElement { kind, name } => {
                write!(f, "unknown {kind} named `{name}`")
            }
            Error::DanglingId { kind, id } => {
                write!(f, "dangling {kind} id `{id}`")
            }
            Error::XmlSyntax {
                offset,
                line,
                column,
                message,
            } => {
                write!(
                    f,
                    "xml syntax error at {line}:{column} (byte {offset}): {message}"
                )
            }
            Error::XmiStructure(msg) => write!(f, "invalid xmi structure: {msg}"),
            Error::WellFormedness(msg) => write!(f, "model well-formedness violation: {msg}"),
            Error::Action(msg) => write!(f, "action language error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::UnknownElement {
            kind: "class",
            name: "Foo".into(),
        };
        assert_eq!(e.to_string(), "unknown class named `Foo`");
        let e = Error::XmlSyntax {
            offset: 12,
            line: 2,
            column: 5,
            message: "unexpected `<`".into(),
        };
        assert!(e.to_string().contains("2:5"));
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
