//! Instance trees and signal routing through composite structures.
//!
//! The TUTMAC model (Figure 5) nests processes inside structural
//! components: `msduRec` lives inside the `ui : UserInterface` part of
//! `Tutmac_Protocol`. When `msduRec` sends a signal through one of its
//! ports, the receiver is found by following connectors *across* the
//! boundary ports of the structural components.
//!
//! This module builds the instance tree of a top-level class
//! ([`InstanceTree`]) and resolves end-to-end signal routes
//! ([`RoutingTable`]): for every (process instance, port, signal) triple it
//! precomputes the set of receiving (process instance, port) pairs. The
//! simulator and the code generator both consume the table.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::{Error, Result};
use crate::ids::{ClassId, PortId, PropertyId, SignalId};
use crate::model::Model;

/// A node of the instance tree: one concrete instance of a class reached
/// by a chain of parts from the top-level class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstanceNode {
    /// The chain of parts from the top class to this instance (empty for
    /// the top instance itself).
    pub path: Vec<PropertyId>,
    /// The class this instance instantiates.
    pub class: ClassId,
    /// Index of the parent instance in the tree, `None` for the top.
    pub parent: Option<usize>,
}

/// Index of an instance within an [`InstanceTree`].
pub type InstanceIndex = usize;

/// The fully unfolded instance tree of a top-level class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstanceTree {
    top: ClassId,
    nodes: Vec<InstanceNode>,
}

impl InstanceTree {
    /// Unfolds the instance tree rooted at `top`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WellFormedness`] if the composition hierarchy is
    /// cyclic (the tree would be infinite).
    pub fn build(model: &Model, top: ClassId) -> Result<InstanceTree> {
        let mut nodes = vec![InstanceNode {
            path: Vec::new(),
            class: top,
            parent: None,
        }];
        let mut queue = VecDeque::from([0usize]);
        // A part chain longer than the number of classes in the model must
        // repeat a class, i.e. the composition is cyclic.
        let max_depth = model.classes().count();
        while let Some(index) = queue.pop_front() {
            let class = nodes[index].class;
            if nodes[index].path.len() > max_depth {
                return Err(Error::WellFormedness(format!(
                    "composition of class `{}` appears cyclic",
                    model.class(top).name()
                )));
            }
            for &part in model.class(class).parts() {
                let mut path = nodes[index].path.clone();
                path.push(part);
                let child = InstanceNode {
                    path,
                    class: model.property(part).type_(),
                    parent: Some(index),
                };
                nodes.push(child);
                queue.push_back(nodes.len() - 1);
                if nodes.len() > 100_000 {
                    return Err(Error::WellFormedness(
                        "instance tree exceeds 100000 nodes; composition is likely cyclic".into(),
                    ));
                }
            }
        }
        Ok(InstanceTree { top, nodes })
    }

    /// The top-level class.
    pub fn top(&self) -> ClassId {
        self.top
    }

    /// All instances, top first, in breadth-first order.
    pub fn nodes(&self) -> &[InstanceNode] {
        &self.nodes
    }

    /// The instance at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: InstanceIndex) -> &InstanceNode {
        &self.nodes[index]
    }

    /// Indices of all instances whose class is active ("processes").
    pub fn active_instances(&self, model: &Model) -> Vec<InstanceIndex> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| model.class(n.class).is_active())
            .map(|(i, _)| i)
            .collect()
    }

    /// Finds the instance reached from the top by the given part chain.
    pub fn find_by_path(&self, path: &[PropertyId]) -> Option<InstanceIndex> {
        self.nodes.iter().position(|n| n.path == path)
    }

    /// Finds the direct child of `parent` introduced by `part`.
    pub fn child(&self, parent: InstanceIndex, part: PropertyId) -> Option<InstanceIndex> {
        self.nodes
            .iter()
            .position(|n| n.parent == Some(parent) && n.path.last() == Some(&part))
    }

    /// A human-readable dotted name, e.g. `ui.msduRec`, or the class name
    /// for the top instance.
    pub fn display_name(&self, model: &Model, index: InstanceIndex) -> String {
        let node = &self.nodes[index];
        if node.path.is_empty() {
            return model.class(node.class).name().to_owned();
        }
        node.path
            .iter()
            .map(|&p| model.property(p).name().to_owned())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// A resolved communication endpoint: a port on a concrete instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Endpoint {
    /// The instance.
    pub instance: InstanceIndex,
    /// The port on that instance's class.
    pub port: PortId,
}

/// Precomputed signal routes: who receives what, sent from where.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RoutingTable {
    routes: HashMap<(InstanceIndex, PortId, SignalId), Vec<Endpoint>>,
}

impl RoutingTable {
    /// Builds the routing table for every active instance in `tree`.
    ///
    /// For each active instance, each of its ports, and each signal the
    /// port *requires*, the table records every reachable active endpoint
    /// whose port *provides* the signal, found by breadth-first search over
    /// the connector graph (crossing structural-component boundary ports).
    pub fn build(model: &Model, tree: &InstanceTree) -> RoutingTable {
        // Node = (instance, port). Build undirected adjacency from every
        // connector, interpreted in the context of the instance that owns
        // the composite structure.
        let mut adjacency: HashMap<Endpoint, Vec<Endpoint>> = HashMap::new();
        for (context_index, context) in tree.nodes().iter().enumerate() {
            for (_, conn) in model.connectors_of(context.class) {
                let resolve = |end: crate::model::ConnectorEnd| -> Option<Endpoint> {
                    match end.part {
                        Some(part) => tree.child(context_index, part).map(|child| Endpoint {
                            instance: child,
                            port: end.port,
                        }),
                        None => Some(Endpoint {
                            instance: context_index,
                            port: end.port,
                        }),
                    }
                };
                let [a, b] = conn.ends();
                if let (Some(ea), Some(eb)) = (resolve(a), resolve(b)) {
                    adjacency.entry(ea).or_default().push(eb);
                    adjacency.entry(eb).or_default().push(ea);
                }
            }
        }

        let mut routes = HashMap::new();
        for &source_instance in &tree.active_instances(model) {
            let class = model.class(tree.node(source_instance).class);
            for &port in class.ports() {
                for &signal in model.port(port).required() {
                    let start = Endpoint {
                        instance: source_instance,
                        port,
                    };
                    let mut receivers = Vec::new();
                    let mut visited: HashSet<Endpoint> = HashSet::from([start]);
                    let mut queue = VecDeque::from([start]);
                    while let Some(node) = queue.pop_front() {
                        let Some(neighbors) = adjacency.get(&node) else {
                            continue;
                        };
                        for &next in neighbors {
                            if !visited.insert(next) {
                                continue;
                            }
                            let next_class = model.class(tree.node(next.instance).class);
                            let provides = model.port(next.port).provided().contains(&signal);
                            if next_class.is_active() && next.instance != source_instance {
                                if provides {
                                    receivers.push(next);
                                }
                                // Active instances terminate the walk: their
                                // ports are endpoints, not relays.
                                continue;
                            }
                            queue.push_back(next);
                        }
                    }
                    receivers.sort_by_key(|e| (e.instance, e.port));
                    routes.insert((source_instance, port, signal), receivers);
                }
            }
        }
        RoutingTable { routes }
    }

    /// The receivers for a signal sent from `instance` through `port`.
    pub fn receivers(
        &self,
        instance: InstanceIndex,
        port: PortId,
        signal: SignalId,
    ) -> &[Endpoint] {
        self.routes
            .get(&(instance, port, signal))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over every route entry.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (&(InstanceIndex, PortId, SignalId), &Vec<Endpoint>)> + '_ {
        self.routes.iter()
    }

    /// Number of (sender, port, signal) entries.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes were resolved.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConnectorEnd;
    use crate::statemachine::{StateMachine, Trigger};

    /// Top contains a structural `shell` containing active `inner`, plus an
    /// active `peer` at top level. peer.out --> shell boundary --> inner.in.
    fn nested_model() -> (Model, ClassId) {
        let mut m = Model::new("Nested");
        let sig = m.add_signal("Data");
        let top = m.add_class("Top");
        let shell = m.add_class("Shell");
        let inner = m.add_class("Inner");
        let peer = m.add_class("Peer");

        let inner_in = m.add_port(inner, "in");
        m.port_mut(inner_in).add_provided(sig);
        let peer_out = m.add_port(peer, "out");
        m.port_mut(peer_out).add_required(sig);
        let shell_port = m.add_port(shell, "boundary");
        m.port_mut(shell_port).add_provided(sig);

        let inner_part = m.add_part(shell, "inner", inner);
        let shell_part = m.add_part(top, "shell", shell);
        let peer_part = m.add_part(top, "peer", peer);

        // Delegation inside Shell: boundary -> inner.in
        m.add_connector(
            shell,
            "deleg",
            ConnectorEnd {
                part: None,
                port: shell_port,
            },
            ConnectorEnd {
                part: Some(inner_part),
                port: inner_in,
            },
        );
        // Assembly at Top: peer.out -> shell.boundary
        m.add_connector(
            top,
            "wire",
            ConnectorEnd {
                part: Some(peer_part),
                port: peer_out,
            },
            ConnectorEnd {
                part: Some(shell_part),
                port: shell_port,
            },
        );

        // Behaviours to mark Inner and Peer active.
        for class in [inner, peer] {
            let mut sm = StateMachine::new("B");
            let s = sm.add_state("S");
            sm.set_initial(s);
            sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
            m.add_state_machine(class, sm);
        }
        (m, top)
    }

    #[test]
    fn instance_tree_unfolds_nesting() {
        let (m, top) = nested_model();
        let tree = InstanceTree::build(&m, top).unwrap();
        // top, shell, peer, inner
        assert_eq!(tree.nodes().len(), 4);
        let actives = tree.active_instances(&m);
        assert_eq!(actives.len(), 2);
        let names: Vec<_> = actives.iter().map(|&i| tree.display_name(&m, i)).collect();
        assert!(names.contains(&"peer".to_owned()));
        assert!(names.contains(&"shell.inner".to_owned()));
    }

    #[test]
    fn routing_crosses_structural_boundaries() {
        let (m, top) = nested_model();
        let tree = InstanceTree::build(&m, top).unwrap();
        let table = RoutingTable::build(&m, &tree);

        let sig = m.find_signal("Data").unwrap();
        let peer_class = m.find_class("Peer").unwrap();
        let peer_out = m.find_port(peer_class, "out").unwrap();
        let peer_index = tree
            .nodes()
            .iter()
            .position(|n| n.class == peer_class)
            .unwrap();

        let receivers = table.receivers(peer_index, peer_out, sig);
        assert_eq!(receivers.len(), 1);
        let receiver = receivers[0];
        assert_eq!(tree.display_name(&m, receiver.instance), "shell.inner");
        let inner_class = m.find_class("Inner").unwrap();
        assert_eq!(receiver.port, m.find_port(inner_class, "in").unwrap());
    }

    #[test]
    fn cyclic_composition_is_rejected() {
        let mut m = Model::new("Cycle");
        let a = m.add_class("A");
        let b = m.add_class("B");
        m.add_part(a, "b", b);
        m.add_part(b, "a", a);
        assert!(InstanceTree::build(&m, a).is_err());
    }

    #[test]
    fn find_by_path_and_child() {
        let (m, top) = nested_model();
        let tree = InstanceTree::build(&m, top).unwrap();
        let shell_class = m.find_class("Shell").unwrap();
        let shell_part = m.find_part(top, "shell").unwrap();
        let inner_part = m.find_part(shell_class, "inner").unwrap();
        let shell_index = tree.find_by_path(&[shell_part]).unwrap();
        let inner_index = tree.child(shell_index, inner_part).unwrap();
        assert_eq!(tree.node(inner_index).class, m.find_class("Inner").unwrap());
        assert_eq!(
            tree.find_by_path(&[shell_part, inner_part]),
            Some(inner_index)
        );
    }

    #[test]
    fn unrouted_port_has_no_receivers() {
        let mut m = Model::new("Loose");
        let sig = m.add_signal("S");
        let top = m.add_class("Top");
        let lone = m.add_class("Lone");
        let out = m.add_port(lone, "out");
        m.port_mut(out).add_required(sig);
        m.add_part(top, "lone", lone);
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S");
        sm.set_initial(s);
        m.add_state_machine(lone, sm);

        let tree = InstanceTree::build(&m, top).unwrap();
        let table = RoutingTable::build(&m, &tree);
        let lone_index = tree.nodes().iter().position(|n| n.class == lone).unwrap();
        assert!(table.receivers(lone_index, out, sig).is_empty());
    }
}
