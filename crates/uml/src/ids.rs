//! Typed arena ids for model elements.
//!
//! Every element kind in the [`crate::model::Model`] arena gets its own
//! newtype id (C-NEWTYPE): a `ClassId` can never be confused with a
//! [`PortId`] at compile time. Ids are indices into per-kind vectors and are
//! only meaningful relative to the model that produced them.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw arena index.
            ///
            /// Normally ids are handed out by the `Model`'s `add_*` methods;
            /// this constructor exists for deserialisation and testing.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }

            /// Returns the raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a package in a model.
    PackageId, "pkg"
);
define_id!(
    /// Identifies a class in a model.
    ClassId, "class"
);
define_id!(
    /// Identifies a property (attribute or composite part) in a model.
    PropertyId, "prop"
);
define_id!(
    /// Identifies a port in a model.
    PortId, "port"
);
define_id!(
    /// Identifies a connector in a model.
    ConnectorId, "conn"
);
define_id!(
    /// Identifies a signal type in a model.
    SignalId, "sig"
);
define_id!(
    /// Identifies a dependency in a model.
    DependencyId, "dep"
);
define_id!(
    /// Identifies a state machine in a model.
    StateMachineId, "sm"
);
define_id!(
    /// Identifies a state inside a state machine.
    StateId, "state"
);
define_id!(
    /// Identifies a transition inside a state machine.
    TransitionId, "trans"
);

/// A reference to any stereotypable model element.
///
/// The profile mechanism (see the `tut-profile-core` crate) attaches
/// stereotypes to elements through this enum, which mirrors the UML
/// metaclasses that TUT-Profile extends: `Class`, `Property` (class
/// instances / parts) and `Dependency`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ElementRef {
    /// A class element.
    Class(ClassId),
    /// A property (part) element.
    Property(PropertyId),
    /// A port element.
    Port(PortId),
    /// A connector element.
    Connector(ConnectorId),
    /// A dependency element.
    Dependency(DependencyId),
    /// A signal element.
    Signal(SignalId),
    /// A package element.
    Package(PackageId),
}

impl ElementRef {
    /// Returns the UML metaclass name of the referenced element.
    pub fn metaclass(self) -> Metaclass {
        match self {
            ElementRef::Class(_) => Metaclass::Class,
            ElementRef::Property(_) => Metaclass::Property,
            ElementRef::Port(_) => Metaclass::Port,
            ElementRef::Connector(_) => Metaclass::Connector,
            ElementRef::Dependency(_) => Metaclass::Dependency,
            ElementRef::Signal(_) => Metaclass::Signal,
            ElementRef::Package(_) => Metaclass::Package,
        }
    }
}

impl fmt::Display for ElementRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementRef::Class(id) => write!(f, "{id}"),
            ElementRef::Property(id) => write!(f, "{id}"),
            ElementRef::Port(id) => write!(f, "{id}"),
            ElementRef::Connector(id) => write!(f, "{id}"),
            ElementRef::Dependency(id) => write!(f, "{id}"),
            ElementRef::Signal(id) => write!(f, "{id}"),
            ElementRef::Package(id) => write!(f, "{id}"),
        }
    }
}

impl From<ClassId> for ElementRef {
    fn from(id: ClassId) -> Self {
        ElementRef::Class(id)
    }
}
impl From<PropertyId> for ElementRef {
    fn from(id: PropertyId) -> Self {
        ElementRef::Property(id)
    }
}
impl From<PortId> for ElementRef {
    fn from(id: PortId) -> Self {
        ElementRef::Port(id)
    }
}
impl From<ConnectorId> for ElementRef {
    fn from(id: ConnectorId) -> Self {
        ElementRef::Connector(id)
    }
}
impl From<DependencyId> for ElementRef {
    fn from(id: DependencyId) -> Self {
        ElementRef::Dependency(id)
    }
}
impl From<SignalId> for ElementRef {
    fn from(id: SignalId) -> Self {
        ElementRef::Signal(id)
    }
}
impl From<PackageId> for ElementRef {
    fn from(id: PackageId) -> Self {
        ElementRef::Package(id)
    }
}

/// The UML metaclasses this metamodel subset knows about.
///
/// Stereotypes declare which metaclass they extend (second-class
/// extensibility, §2 of the paper); applying a stereotype to an element of a
/// different metaclass is rejected by the profile layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Metaclass {
    /// `uml::Class`.
    Class,
    /// `uml::Property` (attributes and composite-structure parts).
    Property,
    /// `uml::Port`.
    Port,
    /// `uml::Connector`.
    Connector,
    /// `uml::Dependency`.
    Dependency,
    /// `uml::Signal`.
    Signal,
    /// `uml::Package`.
    Package,
}

impl Metaclass {
    /// All metaclasses, in a stable order.
    pub const ALL: [Metaclass; 7] = [
        Metaclass::Class,
        Metaclass::Property,
        Metaclass::Port,
        Metaclass::Connector,
        Metaclass::Dependency,
        Metaclass::Signal,
        Metaclass::Package,
    ];

    /// The metaclass name as it appears in UML (and in Table 1 of the paper).
    pub fn name(self) -> &'static str {
        match self {
            Metaclass::Class => "Class",
            Metaclass::Property => "Property",
            Metaclass::Port => "Port",
            Metaclass::Connector => "Connector",
            Metaclass::Dependency => "Dependency",
            Metaclass::Signal => "Signal",
            Metaclass::Package => "Package",
        }
    }

    /// Parses a metaclass from its UML name.
    pub fn from_name(name: &str) -> Option<Metaclass> {
        Metaclass::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl fmt::Display for Metaclass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let id = ClassId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "class7");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just check equality works.
        assert_eq!(PortId::from_index(0), PortId::from_index(0));
        assert_ne!(PortId::from_index(0), PortId::from_index(1));
    }

    #[test]
    fn element_ref_metaclass() {
        assert_eq!(
            ElementRef::Class(ClassId::from_index(0)).metaclass(),
            Metaclass::Class
        );
        assert_eq!(
            ElementRef::Dependency(DependencyId::from_index(3)).metaclass(),
            Metaclass::Dependency
        );
    }

    #[test]
    fn metaclass_names_round_trip() {
        for m in Metaclass::ALL {
            assert_eq!(Metaclass::from_name(m.name()), Some(m));
        }
        assert_eq!(Metaclass::from_name("NoSuch"), None);
    }

    #[test]
    fn element_ref_from_impls() {
        let r: ElementRef = ClassId::from_index(2).into();
        assert_eq!(r, ElementRef::Class(ClassId::from_index(2)));
        let r: ElementRef = PortId::from_index(1).into();
        assert_eq!(r.metaclass(), Metaclass::Port);
    }
}
