//! A tiny self-contained XML document model, writer, and parser.
//!
//! The paper's profiling tool parses "the XML presentation of the UML 2.0
//! model" (§4.4). To keep the tool-boundary honest without pulling in an
//! external dependency, this module implements the small XML subset the XMI
//! serialisation needs: elements, attributes, character data, comments, and
//! the XML declaration. It does not support DOCTYPE, CDATA, processing
//! instructions other than the declaration, or namespace resolution
//! (namespace prefixes are kept as part of the element/attribute name).
//!
//! # Example
//!
//! ```
//! use tut_uml::xml::XmlNode;
//!
//! let mut root = XmlNode::new("library");
//! root.set_attr("name", "TUT");
//! root.add_child(XmlNode::new("shelf"));
//! let text = root.to_xml_string();
//! let parsed = XmlNode::parse(&text)?;
//! assert_eq!(parsed.name, "library");
//! assert_eq!(parsed.attr("name"), Some("TUT"));
//! # Ok::<(), tut_uml::Error>(())
//! ```

use std::fmt::Write as _;

use tut_diag::{locate_in, Span};

use crate::error::{Error, Result};

/// An XML element node.
///
/// Parsed nodes carry source [`Span`]s (the start tag for the element, the
/// quoted value for each attribute) so downstream decoders can attach
/// line:column locations to their diagnostics. Programmatically built nodes
/// have [`Span::NONE`] everywhere. Spans are *ignored* by equality so that
/// write → parse round trips compare equal.
#[derive(Clone, Eq, Debug, Default)]
pub struct XmlNode {
    /// Element name (namespace prefixes included verbatim, e.g. `xmi:XMI`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated character data directly inside this element.
    pub text: String,
    /// Span of `<name` in the source document ([`Span::NONE`] when built
    /// programmatically).
    pub span: Span,
    /// Value spans parallel to `attrs` (each covers the text between the
    /// quotes in the source document).
    pub attr_spans: Vec<Span>,
}

/// Source spans are bookkeeping, not document content: two trees that
/// serialise identically are equal regardless of where they were parsed
/// from.
impl PartialEq for XmlNode {
    fn eq(&self, other: &XmlNode) -> bool {
        self.name == other.name
            && self.attrs == other.attrs
            && self.children == other.children
            && self.text == other.text
    }
}

impl XmlNode {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> XmlNode {
        XmlNode {
            name: name.into(),
            ..XmlNode::default()
        }
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        if let Some(existing) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            existing.1 = value;
        } else {
            self.attrs.push((key, value));
            self.attr_spans.push(Span::NONE);
        }
        self
    }

    /// Returns the source span of an attribute's value, when the node was
    /// parsed from a document. [`Span::NONE`] for built nodes.
    pub fn attr_span(&self, key: &str) -> Option<Span> {
        let index = self.attrs.iter().position(|(k, _)| k == key)?;
        Some(self.attr_spans.get(index).copied().unwrap_or(Span::NONE))
    }

    /// Returns an attribute value by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Returns an attribute value or an [`Error::XmiStructure`] naming the
    /// element, for use while decoding documents.
    pub fn required_attr(&self, key: &str) -> Result<&str> {
        self.attr(key).ok_or_else(|| {
            Error::XmiStructure(format!(
                "element `{}` is missing required attribute `{key}`",
                self.name
            ))
        })
    }

    /// Appends a child element and returns a mutable reference to it.
    pub fn add_child(&mut self, child: XmlNode) -> &mut XmlNode {
        self.children.push(child);
        self.children.last_mut().expect("just pushed")
    }

    /// Iterates over child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Returns the first child with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Returns the first child with the given name, or an error.
    pub fn required_child(&self, name: &str) -> Result<&XmlNode> {
        self.child(name).ok_or_else(|| {
            Error::XmiStructure(format!(
                "element `{}` is missing required child `{name}`",
                self.name
            ))
        })
    }

    /// Serialises the tree to a pretty-printed XML string with a standard
    /// declaration header.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for child in &self.children {
                child.write_into(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        let _ = writeln!(out, "</{}>", self.name);
    }

    /// Shifts this node's span and attribute spans — and recursively
    /// every descendant's — by `delta` bytes. Used by the incremental
    /// front end to rebase a tree parsed from a document fragment into
    /// whole-document coordinates. [`Span::NONE`] spans are left alone:
    /// they mean "no location", not offset zero.
    pub fn offset_spans(&mut self, delta: usize) {
        if self.span != Span::NONE {
            self.span = self.span.offset(delta);
        }
        for span in &mut self.attr_spans {
            if *span != Span::NONE {
                *span = span.offset(delta);
            }
        }
        for child in &mut self.children {
            child.offset_spans(delta);
        }
    }

    /// Parses a document and returns its root element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::XmlSyntax`] carrying both the byte offset and its
    /// resolved line:column on malformed input.
    pub fn parse(input: &str) -> Result<XmlNode> {
        let mut parser = Parser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_prolog()?;
        let root = parser.parse_element()?;
        parser.skip_misc()?;
        if parser.pos < parser.bytes.len() {
            return Err(parser.error("trailing content after document element"));
        }
        Ok(root)
    }
}

/// Escapes the five XML special characters in text/attribute content.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Builds an [`Error::XmlSyntax`] at the current position. Uses the
    /// allocation-free scan rather than building a throwaway `SourceMap`
    /// (which would clone and index the whole document for one lookup).
    fn error(&self, message: impl Into<String>) -> Error {
        let at = locate_in(self.text, self.pos);
        Error::XmlSyntax {
            offset: self.pos,
            line: at.line,
            column: at.column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(rel) => self.pos += rel + 2,
                None => return Err(self.error("unterminated xml declaration")),
            }
        }
        self.skip_misc()
    }

    /// Skips whitespace and comments between markup.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match self.bytes[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    Some(rel) => self.pos += 4 + rel + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ch = b as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("name bytes are ascii")
            .to_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_attr_value(&mut self) -> Result<(String, Span)> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("attribute value is not utf-8"))?;
                let span = Span::new(start, self.pos);
                self.pos += 1;
                return unescape(raw).map(|v| (v, span)).map_err(|m| self.error(m));
            }
            if b == b'<' {
                return Err(self.error("`<` inside attribute value"));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        let tag_start = self.pos;
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(name);
        node.span = Span::new(tag_start, self.pos);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let (value, span) = self.parse_attr_value()?;
                    node.attrs.push((key, value));
                    node.attr_spans.push(span);
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
        // Content loop.
        loop {
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != node.name {
                            return Err(self.error(format!(
                                "mismatched closing tag `{close}` for `{}`",
                                node.name
                            )));
                        }
                        self.skip_whitespace();
                        self.expect(b'>')?;
                        node.text = node.text.trim().to_owned();
                        return Ok(node);
                    }
                    let child = self.parse_element()?;
                    node.children.push(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("text content is not utf-8"))?;
                    node.text
                        .push_str(&unescape(raw).map_err(|m| self.error(m))?);
                }
                None => return Err(self.error(format!("unterminated element `{}`", node.name))),
            }
        }
    }
}

fn unescape(raw: &str) -> std::result::Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_owned())?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                if let Some(hex) = other.strip_prefix("#x") {
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad character reference `&{other};`"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("invalid character reference `&{other};`"))?,
                    );
                } else if let Some(dec) = other.strip_prefix('#') {
                    let code: u32 = dec
                        .parse()
                        .map_err(|_| format!("bad character reference `&{other};`"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("invalid character reference `&{other};`"))?,
                    );
                } else {
                    return Err(format!("unknown entity `&{other};`"));
                }
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialise() {
        let mut root = XmlNode::new("a");
        root.set_attr("k", "v");
        root.add_child(XmlNode::new("b")).set_attr("x", "1");
        let text = root.to_xml_string();
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("<a k=\"v\">"));
        assert!(text.contains("<b x=\"1\"/>"));
    }

    #[test]
    fn parse_round_trip() {
        let mut root = XmlNode::new("model");
        root.set_attr("name", "T<&>T");
        let child = root.add_child(XmlNode::new("class"));
        child.set_attr("name", "A \"quoted\" 'one'");
        child.text = "some & text".into();
        root.add_child(XmlNode::new("empty"));

        let text = root.to_xml_string();
        let parsed = XmlNode::parse(&text).unwrap();
        assert_eq!(parsed, root);
    }

    #[test]
    fn set_attr_replaces() {
        let mut n = XmlNode::new("n");
        n.set_attr("a", "1");
        n.set_attr("a", "2");
        assert_eq!(n.attrs.len(), 1);
        assert_eq!(n.attr("a"), Some("2"));
    }

    #[test]
    fn parse_handles_comments_and_whitespace() {
        let doc = r#"<?xml version="1.0"?>
            <!-- leading comment -->
            <root>
              <!-- inner comment -->
              <leaf/>
            </root>
            <!-- trailing comment -->"#;
        let parsed = XmlNode::parse(doc).unwrap();
        assert_eq!(parsed.name, "root");
        assert_eq!(parsed.children.len(), 1);
    }

    #[test]
    fn parse_entities() {
        let doc = "<r a=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;</r>";
        let parsed = XmlNode::parse(doc).unwrap();
        assert_eq!(parsed.attr("a"), Some("<>&\"'"));
        assert_eq!(parsed.text, "AB");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a attr></a>",
            "<a attr=value/>",
            "<a/><b/>",
            "<a>&bogus;</a>",
            "",
        ] {
            assert!(XmlNode::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset_and_line_col() {
        let err = XmlNode::parse("<a></b>").unwrap_err();
        match err {
            Error::XmlSyntax {
                offset,
                line,
                column,
                ..
            } => {
                assert!(offset > 0);
                assert_eq!(line, 1);
                assert_eq!(column, offset + 1, "single-line input: column = offset + 1");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A failure on a later line resolves to that line.
        let err = XmlNode::parse("<a>\n  <b>\n</a>").unwrap_err();
        match err {
            Error::XmlSyntax { line, .. } => assert!(line >= 2, "line was {line}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parsed_nodes_carry_spans() {
        let doc = "<root name=\"top\">\n  <leaf kind=\"x\"/>\n</root>";
        let parsed = XmlNode::parse(doc).unwrap();
        assert_eq!(&doc[parsed.span.start..parsed.span.end], "<root");
        let name_span = parsed.attr_span("name").unwrap();
        assert_eq!(&doc[name_span.start..name_span.end], "top");
        let leaf = &parsed.children[0];
        assert_eq!(&doc[leaf.span.start..leaf.span.end], "<leaf");
        let kind_span = leaf.attr_span("kind").unwrap();
        assert_eq!(&doc[kind_span.start..kind_span.end], "x");
        // Built nodes have no spans, and equality ignores spans entirely.
        let mut built = XmlNode::new("leaf");
        built.set_attr("kind", "x");
        assert_eq!(built.attr_span("kind"), Some(Span::NONE));
        assert_eq!(built, *leaf);
    }

    #[test]
    fn children_helpers() {
        let mut root = XmlNode::new("r");
        root.add_child(XmlNode::new("x"));
        root.add_child(XmlNode::new("y"));
        root.add_child(XmlNode::new("x"));
        assert_eq!(root.children_named("x").count(), 2);
        assert!(root.child("y").is_some());
        assert!(root.child("z").is_none());
        assert!(root.required_child("z").is_err());
        assert!(root.required_attr("missing").is_err());
    }

    #[test]
    fn offset_spans_rebases_recursively() {
        let doc = "<root name=\"top\">\n  <leaf kind=\"x\"/>\n</root>";
        let padded = format!("{}{doc}", " ".repeat(10));
        let mut parsed = XmlNode::parse(doc).unwrap();
        parsed.offset_spans(10);
        assert_eq!(&padded[parsed.span.start..parsed.span.end], "<root");
        let leaf = &parsed.children[0];
        assert_eq!(&padded[leaf.span.start..leaf.span.end], "<leaf");
        let kind = leaf.attr_span("kind").unwrap();
        assert_eq!(&padded[kind.start..kind.end], "x");
        // NONE spans stay NONE instead of becoming a real location.
        let mut built = XmlNode::new("n");
        built.set_attr("a", "1");
        built.offset_spans(10);
        assert_eq!(built.span, Span::NONE);
        assert_eq!(built.attr_span("a"), Some(Span::NONE));
    }

    #[test]
    fn namespaced_names_pass_through() {
        let doc = "<xmi:XMI xmlns:xmi=\"http://example\"><uml:Model/></xmi:XMI>";
        let parsed = XmlNode::parse(doc).unwrap();
        assert_eq!(parsed.name, "xmi:XMI");
        assert_eq!(parsed.children[0].name, "uml:Model");
    }
}
