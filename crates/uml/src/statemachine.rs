//! EFSM statecharts: the classifier behaviour of active classes.
//!
//! The paper (§4.1) models functional components as "asynchronous
//! communicating Extended Finite State Machines". A [`StateMachine`] here is
//! exactly that: a set of named states, an initial state, typed variables,
//! and transitions with signal/timer/completion triggers, guards, and
//! action-language effect lists.
//!
//! Execution semantics (implemented in `tut-sim`):
//!
//! * Each process (instance of an active class) has its own input queue and
//!   executes run-to-completion steps.
//! * A step consumes one queue entry (signal or expired timer), picks the
//!   first enabled transition out of the current state in declaration
//!   order, executes its actions, and enters the target state.
//! * After entering a state, *completion* transitions (no trigger) whose
//!   guard holds fire immediately, still within the same step.
//! * Signals with no matching transition in the current state are dropped
//!   (logged as discarded), as in SDL/TAU semantics.

use crate::action::{Expr, Statement};
use crate::error::{Error, Result};
use crate::ids::{SignalId, StateId, TransitionId};
use crate::value::{DataType, Value};

/// The event that triggers a transition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Trigger {
    /// The arrival of a signal of the given type.
    Signal(SignalId),
    /// Expiry of a named timer armed with `SetTimer`.
    Timer(String),
    /// A completion transition: fires as soon as the source state is
    /// entered (subject to its guard).
    Completion,
}

/// A typed variable of the state machine (the "extended" part of EFSM).
#[derive(Clone, PartialEq, Debug)]
pub struct Variable {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub data_type: DataType,
    /// Initial value (must match `data_type`).
    pub init: Value,
}

/// A state of the machine.
#[derive(Clone, PartialEq, Debug)]
pub struct State {
    name: String,
    entry: Vec<Statement>,
}

impl State {
    /// The state name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entry actions executed whenever the state is entered.
    pub fn entry(&self) -> &[Statement] {
        &self.entry
    }
}

/// A transition between two states.
#[derive(Clone, PartialEq, Debug)]
pub struct Transition {
    source: StateId,
    target: StateId,
    trigger: Trigger,
    guard: Option<Expr>,
    actions: Vec<Statement>,
}

impl Transition {
    /// Source state.
    pub fn source(&self) -> StateId {
        self.source
    }

    /// Target state.
    pub fn target(&self) -> StateId {
        self.target
    }

    /// The triggering event.
    pub fn trigger(&self) -> &Trigger {
        &self.trigger
    }

    /// The guard expression, if any.
    pub fn guard(&self) -> Option<&Expr> {
        self.guard.as_ref()
    }

    /// The effect list executed when the transition fires.
    pub fn actions(&self) -> &[Statement] {
        &self.actions
    }
}

/// An extended finite state machine.
///
/// # Example
///
/// ```
/// use tut_uml::statemachine::{StateMachine, Trigger};
/// use tut_uml::action::{Expr, Statement};
/// use tut_uml::value::{DataType, Value};
/// use tut_uml::ids::SignalId;
///
/// let ping = SignalId::from_index(0);
/// let mut sm = StateMachine::new("Echo");
/// sm.add_variable("count", DataType::Int, Value::Int(0));
/// let idle = sm.add_state("Idle");
/// sm.set_initial(idle);
/// sm.add_transition(
///     idle,
///     idle,
///     Trigger::Signal(ping),
///     None,
///     vec![Statement::Assign {
///         var: "count".into(),
///         expr: Expr::var("count").bin(tut_uml::action::BinOp::Add, Expr::int(1)),
///     }],
/// );
/// assert!(sm.check().is_ok());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct StateMachine {
    name: String,
    variables: Vec<Variable>,
    states: Vec<State>,
    initial: Option<StateId>,
    transitions: Vec<Transition>,
}

impl StateMachine {
    /// Creates an empty machine with the given name.
    pub fn new(name: impl Into<String>) -> StateMachine {
        StateMachine {
            name: name.into(),
            variables: Vec::new(),
            states: Vec::new(),
            initial: None,
            transitions: Vec::new(),
        }
    }

    /// The machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a variable with an initial value.
    pub fn add_variable(&mut self, name: impl Into<String>, data_type: DataType, init: Value) {
        debug_assert_eq!(init.data_type(), data_type, "initial value type mismatch");
        self.variables.push(Variable {
            name: name.into(),
            data_type,
            init,
        });
    }

    /// The declared variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Adds a state.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.add_state_with_entry(name, Vec::new())
    }

    /// Adds a state with entry actions.
    pub fn add_state_with_entry(
        &mut self,
        name: impl Into<String>,
        entry: Vec<Statement>,
    ) -> StateId {
        let id = StateId::from_index(self.states.len());
        self.states.push(State {
            name: name.into(),
            entry,
        });
        id
    }

    /// Returns a state by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Iterates over all states with ids.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &State)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId::from_index(i), s))
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        self.initial = Some(state);
    }

    /// The initial state, if set.
    pub fn initial(&self) -> Option<StateId> {
        self.initial
    }

    /// Adds a transition. Transitions out of the same state are tried in
    /// the order they were added.
    pub fn add_transition(
        &mut self,
        source: StateId,
        target: StateId,
        trigger: Trigger,
        guard: Option<Expr>,
        actions: Vec<Statement>,
    ) -> TransitionId {
        let id = TransitionId::from_index(self.transitions.len());
        self.transitions.push(Transition {
            source,
            target,
            trigger,
            guard,
            actions,
        });
        id
    }

    /// Returns a transition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Iterates over all transitions with ids.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId::from_index(i), t))
    }

    /// Transitions leaving `state`, in declaration (priority) order.
    pub fn transitions_from(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (TransitionId, &Transition)> + '_ {
        self.transitions().filter(move |(_, t)| t.source == state)
    }

    /// The set of signal types this machine can consume (its input
    /// alphabet), used by validation and static analysis.
    pub fn input_alphabet(&self) -> Vec<SignalId> {
        let mut sigs: Vec<SignalId> = self
            .transitions
            .iter()
            .filter_map(|t| match &t.trigger {
                Trigger::Signal(s) => Some(*s),
                _ => None,
            })
            .collect();
        sigs.sort();
        sigs.dedup();
        sigs
    }

    /// Checks machine-local well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WellFormedness`] when the machine has no states, no
    /// initial state, a transition referencing an out-of-range state, or a
    /// state unreachable from the initial state.
    pub fn check(&self) -> Result<()> {
        if self.states.is_empty() {
            return Err(Error::WellFormedness(format!(
                "state machine `{}` has no states",
                self.name
            )));
        }
        let initial = self.initial.ok_or_else(|| {
            Error::WellFormedness(format!(
                "state machine `{}` has no initial state",
                self.name
            ))
        })?;
        if initial.index() >= self.states.len() {
            return Err(Error::WellFormedness(format!(
                "state machine `{}` initial state {initial} is out of range",
                self.name
            )));
        }
        for (id, t) in self.transitions() {
            for endpoint in [t.source, t.target] {
                if endpoint.index() >= self.states.len() {
                    return Err(Error::WellFormedness(format!(
                        "state machine `{}` transition {id} references missing state {endpoint}",
                        self.name
                    )));
                }
            }
        }
        // Reachability from the initial state.
        let mut reachable = vec![false; self.states.len()];
        let mut stack = vec![initial];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut reachable[s.index()], true) {
                continue;
            }
            for (_, t) in self.transitions_from(s) {
                stack.push(t.target);
            }
        }
        if let Some(unreachable) = reachable.iter().position(|r| !r) {
            return Err(Error::WellFormedness(format!(
                "state machine `{}`: state `{}` is unreachable from the initial state",
                self.name,
                self.states[unreachable].name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::BinOp;

    fn two_state_machine() -> (StateMachine, StateId, StateId, SignalId) {
        let sig = SignalId::from_index(0);
        let mut sm = StateMachine::new("M");
        let a = sm.add_state("A");
        let b = sm.add_state("B");
        sm.set_initial(a);
        sm.add_transition(a, b, Trigger::Signal(sig), None, vec![]);
        sm.add_transition(b, a, Trigger::Completion, None, vec![]);
        (sm, a, b, sig)
    }

    #[test]
    fn check_accepts_well_formed_machine() {
        let (sm, ..) = two_state_machine();
        assert!(sm.check().is_ok());
    }

    #[test]
    fn check_rejects_empty_and_initial_less() {
        let sm = StateMachine::new("E");
        assert!(sm.check().is_err());
        let mut sm = StateMachine::new("N");
        sm.add_state("only");
        assert!(sm.check().unwrap_err().to_string().contains("initial"));
    }

    #[test]
    fn check_rejects_unreachable_states() {
        let (mut sm, _a, _b, _sig) = two_state_machine();
        sm.add_state("Island");
        let err = sm.check().unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn check_rejects_dangling_transition_states() {
        let sig = SignalId::from_index(0);
        let mut sm = StateMachine::new("D");
        let a = sm.add_state("A");
        sm.set_initial(a);
        sm.add_transition(
            a,
            StateId::from_index(9),
            Trigger::Signal(sig),
            None,
            vec![],
        );
        assert!(sm.check().is_err());
    }

    #[test]
    fn transitions_from_preserves_declaration_order() {
        let sig = SignalId::from_index(0);
        let mut sm = StateMachine::new("P");
        let a = sm.add_state("A");
        let b = sm.add_state("B");
        sm.set_initial(a);
        let first = sm.add_transition(
            a,
            b,
            Trigger::Signal(sig),
            Some(Expr::var("x").bin(BinOp::Gt, Expr::int(0))),
            vec![],
        );
        let second = sm.add_transition(a, b, Trigger::Signal(sig), None, vec![]);
        let order: Vec<_> = sm.transitions_from(a).map(|(id, _)| id).collect();
        assert_eq!(order, vec![first, second]);
    }

    #[test]
    fn input_alphabet_dedupes() {
        let s0 = SignalId::from_index(0);
        let s1 = SignalId::from_index(1);
        let mut sm = StateMachine::new("A");
        let a = sm.add_state("A");
        sm.set_initial(a);
        sm.add_transition(a, a, Trigger::Signal(s1), None, vec![]);
        sm.add_transition(a, a, Trigger::Signal(s0), None, vec![]);
        sm.add_transition(a, a, Trigger::Signal(s1), None, vec![]);
        sm.add_transition(a, a, Trigger::Timer("t".into()), None, vec![]);
        assert_eq!(sm.input_alphabet(), vec![s0, s1]);
    }

    #[test]
    fn variables_carry_initial_values() {
        let mut sm = StateMachine::new("V");
        sm.add_variable("n", DataType::Int, Value::Int(42));
        assert_eq!(sm.variables()[0].init, Value::Int(42));
    }
}
