//! The action language used inside EFSM transitions.
//!
//! The paper models behaviour with "statechart diagrams combined with the
//! UML 2.0 textual notation" (§4.1). This module is our textual notation: a
//! small, deterministic, side-effect-explicit language of expressions and
//! statements. The same AST is
//!
//! * interpreted by the discrete-event simulator (`tut-sim`),
//! * translated to C by the code generator (`tut-codegen`), and
//! * serialised structurally into the XMI form (`crate::xmi`).
//!
//! Expressions are pure; all effects (sending signals, logging, timers) are
//! statements that report [`Effect`]s to the caller, so the simulator stays
//! in control of time and communication.

use std::collections::HashSet;
use std::fmt;
use std::ops::Index;

use tut_diag::{Diagnostic, DiagnosticBag};

use crate::error::{Error, Result};
use crate::ids::SignalId;
use crate::value::{DataType, Value};

/// Binary operators of the action language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+` (also byte/string concatenation when both operands are buffers).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (integer division; division by zero is an error).
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Logical `&&` (operands coerced with [`Value::is_truthy`]).
    And,
    /// Logical `||`.
    Or,
    /// Bitwise `&`.
    BitAnd,
    /// Bitwise `|`.
    BitOr,
    /// Bitwise `^`.
    BitXor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// The operator token, as written in source and in generated C.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Built-in functions available to expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `len(bytes|str) -> int`.
    Len,
    /// `slice(bytes, from, to) -> bytes` (clamped to the buffer).
    Slice,
    /// `concat(bytes, bytes) -> bytes`.
    Concat,
    /// `byte_at(bytes, index) -> int` (out of range is an error).
    ByteAt,
    /// `pack_int(value, width_bytes) -> bytes`, big-endian.
    PackInt,
    /// `unpack_int(bytes) -> int`, big-endian over at most 8 bytes.
    UnpackInt,
    /// `crc32(bytes) -> int` — the reference software CRC-32 (IEEE 802.3
    /// polynomial), matching the hardware accelerator in `tut-platform`.
    Crc32,
    /// `min(int, int) -> int`.
    Min,
    /// `max(int, int) -> int`.
    Max,
    /// `fill(byte, count) -> bytes`.
    Fill,
}

impl Builtin {
    /// The source-level function name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Len => "len",
            Builtin::Slice => "slice",
            Builtin::Concat => "concat",
            Builtin::ByteAt => "byte_at",
            Builtin::PackInt => "pack_int",
            Builtin::UnpackInt => "unpack_int",
            Builtin::Crc32 => "crc32",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Fill => "fill",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Len | Builtin::Crc32 | Builtin::UnpackInt => 1,
            Builtin::Concat
            | Builtin::ByteAt
            | Builtin::PackInt
            | Builtin::Min
            | Builtin::Max
            | Builtin::Fill => 2,
            Builtin::Slice => 3,
        }
    }

    /// Parses a builtin from its source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        const ALL: [Builtin; 10] = [
            Builtin::Len,
            Builtin::Slice,
            Builtin::Concat,
            Builtin::ByteAt,
            Builtin::PackInt,
            Builtin::UnpackInt,
            Builtin::Crc32,
            Builtin::Min,
            Builtin::Max,
            Builtin::Fill,
        ];
        ALL.into_iter().find(|b| b.name() == name)
    }
}

/// An expression of the action language. Expressions are pure.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A process-local variable reference.
    Var(String),
    /// A parameter of the signal that triggered the transition.
    Param(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin function call.
    Call(Builtin, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Convenience constructor for a boolean literal.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Value::Bool(v))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a signal-parameter reference.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// Builds `self <op> rhs`.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// Builds a builtin call, checking arity.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from the builtin's arity; this is a
    /// model-construction bug, not a runtime condition.
    pub fn call(builtin: Builtin, args: Vec<Expr>) -> Expr {
        assert_eq!(
            args.len(),
            builtin.arity(),
            "builtin {} expects {} args",
            builtin.name(),
            builtin.arity()
        );
        Expr::Call(builtin, args)
    }

    /// Evaluates the expression in `env`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Action`] for unbound variables/parameters, type
    /// mismatches, division by zero, and out-of-range accesses.
    pub fn eval(&self, env: &Env) -> Result<Value> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => env
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| Error::Action(format!("unbound variable `{name}`"))),
            Expr::Param(name) => env
                .params
                .get(name)
                .cloned()
                .ok_or_else(|| Error::Action(format!("unbound signal parameter `{name}`"))),
            Expr::Unary(op, e) => {
                let v = e.eval(env)?;
                match op {
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        other => Err(Error::Action(format!(
                            "cannot negate {} value",
                            other.data_type()
                        ))),
                    },
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                // Short-circuit logical ops before evaluating the rhs.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = lhs.eval(env)?.is_truthy();
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Bool(rhs.eval(env)?.is_truthy())),
                    };
                }
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                eval_binary(*op, l, r)
            }
            Expr::Call(builtin, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                eval_builtin(*builtin, &vals)
            }
        }
    }

    /// A rough static weight of the expression: number of AST nodes. The
    /// simulator uses this as the base execution cost of evaluating the
    /// expression on a processing element.
    pub fn weight(&self) -> u64 {
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) => 1,
            Expr::Unary(_, e) => 1 + e.weight(),
            Expr::Binary(_, l, r) => 1 + l.weight() + r.weight(),
            Expr::Call(b, args) => {
                let base = match b {
                    // Data-touching builtins are weighted heavier; the real
                    // data-size-dependent cost is added by Compute statements.
                    Builtin::Crc32 => 8,
                    Builtin::Concat | Builtin::Slice | Builtin::Fill => 4,
                    _ => 2,
                };
                base + args.iter().map(Expr::weight).sum::<u64>()
            }
        }
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        _ => {}
    }
    // `+` on two buffers/strings concatenates.
    if op == Add {
        match (&l, &r) {
            (Value::Bytes(a), Value::Bytes(b)) => {
                let mut out = a.clone();
                out.extend_from_slice(b);
                return Ok(Value::Bytes(out));
            }
            (Value::Str(a), Value::Str(b)) => {
                return Ok(Value::Str(format!("{a}{b}")));
            }
            _ => {}
        }
    }
    let (a, b) = match (l.as_int(), r.as_int()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(Error::Action(format!(
                "operator `{}` requires integer operands, got {} and {}",
                op.token(),
                l.data_type(),
                r.data_type()
            )))
        }
    };
    let v = match op {
        Add => Value::Int(a.wrapping_add(b)),
        Sub => Value::Int(a.wrapping_sub(b)),
        Mul => Value::Int(a.wrapping_mul(b)),
        Div => {
            if b == 0 {
                return Err(Error::Action("division by zero".into()));
            }
            Value::Int(a.wrapping_div(b))
        }
        Mod => {
            if b == 0 {
                return Err(Error::Action("modulo by zero".into()));
            }
            Value::Int(a.wrapping_rem(b))
        }
        Lt => Value::Bool(a < b),
        Le => Value::Bool(a <= b),
        Gt => Value::Bool(a > b),
        Ge => Value::Bool(a >= b),
        BitAnd => Value::Int(a & b),
        BitOr => Value::Int(a | b),
        BitXor => Value::Int(a ^ b),
        Shl => Value::Int(a.wrapping_shl(b as u32 & 63)),
        Shr => Value::Int(a.wrapping_shr(b as u32 & 63)),
        Eq | Ne | And | Or => unreachable!("handled above"),
    };
    Ok(v)
}

/// Reference software CRC-32 (IEEE 802.3, reflected, init/xorout `!0`).
///
/// This bitwise implementation is the *functional specification*; the
/// table-driven "hardware accelerator" model in `tut-platform` must agree
/// with it bit-for-bit (checked by property tests there).
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn eval_builtin(builtin: Builtin, args: &[Value]) -> Result<Value> {
    if args.len() != builtin.arity() {
        return Err(Error::Action(format!(
            "builtin `{}` expects {} arguments, got {}",
            builtin.name(),
            builtin.arity(),
            args.len()
        )));
    }
    let int_arg = |i: usize| -> Result<i64> {
        args[i].as_int().ok_or_else(|| {
            Error::Action(format!(
                "builtin `{}` argument {} must be Int, got {}",
                builtin.name(),
                i,
                args[i].data_type()
            ))
        })
    };
    let bytes_arg = |i: usize| -> Result<&[u8]> {
        args[i].as_bytes().ok_or_else(|| {
            Error::Action(format!(
                "builtin `{}` argument {} must be Bytes, got {}",
                builtin.name(),
                i,
                args[i].data_type()
            ))
        })
    };
    match builtin {
        Builtin::Len => match &args[0] {
            Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            other => Err(Error::Action(format!(
                "len() requires Bytes or Str, got {}",
                other.data_type()
            ))),
        },
        Builtin::Slice => {
            let b = bytes_arg(0)?;
            let from = int_arg(1)?.clamp(0, b.len() as i64) as usize;
            let to = int_arg(2)?.clamp(from as i64, b.len() as i64) as usize;
            Ok(Value::Bytes(b[from..to].to_vec()))
        }
        Builtin::Concat => {
            let mut out = bytes_arg(0)?.to_vec();
            out.extend_from_slice(bytes_arg(1)?);
            Ok(Value::Bytes(out))
        }
        Builtin::ByteAt => {
            let b = bytes_arg(0)?;
            let i = int_arg(1)?;
            if i < 0 || i as usize >= b.len() {
                return Err(Error::Action(format!(
                    "byte_at index {i} out of range for buffer of {} bytes",
                    b.len()
                )));
            }
            Ok(Value::Int(i64::from(b[i as usize])))
        }
        Builtin::PackInt => {
            let v = int_arg(0)?;
            let width = int_arg(1)?;
            if !(1..=8).contains(&width) {
                return Err(Error::Action(format!(
                    "pack_int width must be 1..=8, got {width}"
                )));
            }
            let be = v.to_be_bytes();
            Ok(Value::Bytes(be[8 - width as usize..].to_vec()))
        }
        Builtin::UnpackInt => {
            let b = bytes_arg(0)?;
            if b.len() > 8 {
                return Err(Error::Action(format!(
                    "unpack_int buffer too long ({} bytes)",
                    b.len()
                )));
            }
            let mut v: i64 = 0;
            for &byte in b {
                v = (v << 8) | i64::from(byte);
            }
            Ok(Value::Int(v))
        }
        Builtin::Crc32 => Ok(Value::Int(i64::from(crc32_bitwise(bytes_arg(0)?)))),
        Builtin::Min => Ok(Value::Int(int_arg(0)?.min(int_arg(1)?))),
        Builtin::Max => Ok(Value::Int(int_arg(0)?.max(int_arg(1)?))),
        Builtin::Fill => {
            let byte = int_arg(0)?;
            let count = int_arg(1)?;
            if !(0..=256).contains(&byte) {
                return Err(Error::Action(format!("fill byte {byte} out of range")));
            }
            if !(0..=1 << 20).contains(&count) {
                return Err(Error::Action(format!("fill count {count} out of range")));
            }
            Ok(Value::Bytes(vec![byte as u8; count as usize]))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Param(n) => write!(f, "${n}"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "!({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.token()),
            Expr::Call(b, args) => {
                write!(f, "{}(", b.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Workload classes for [`Statement::Compute`] annotations.
///
/// These correspond to the `ProcessType` tagged value of
/// `«ApplicationProcess»` (general / dsp / hardware, Table 2): a platform
/// component executes a matching class cheaply and a mismatching class with
/// a penalty; "hardware" workloads (bit-level processing such as CRC) are
/// what the paper offloads to the CRC accelerator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CostClass {
    /// Control-flow-dominated general-purpose processing.
    Control,
    /// Signal-processing (streaming arithmetic) workload.
    Dsp,
    /// Bit-level processing (CRC, scrambling) suited to hardware.
    Bit,
    /// Memory-movement workload (copies, queue management).
    Mem,
}

impl CostClass {
    /// Stable name for serialisation and reports.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Control => "control",
            CostClass::Dsp => "dsp",
            CostClass::Bit => "bit",
            CostClass::Mem => "mem",
        }
    }

    /// Parses from the stable name.
    pub fn from_name(name: &str) -> Option<CostClass> {
        match name {
            "control" => Some(CostClass::Control),
            "dsp" => Some(CostClass::Dsp),
            "bit" => Some(CostClass::Bit),
            "mem" => Some(CostClass::Mem),
            _ => None,
        }
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A statement of the action language.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Statement {
    /// `var := expr` — assigns a process-local variable.
    Assign {
        /// Variable name.
        var: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `send port.Signal(args…)` — emits a signal through a port.
    Send {
        /// Port name on the owning class.
        port: String,
        /// Signal type to send.
        signal: SignalId,
        /// Payload expressions, matched positionally to signal parameters.
        args: Vec<Expr>,
    },
    /// `if cond { … } else { … }`.
    If {
        /// Condition (coerced with [`Value::is_truthy`]).
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Statement>,
        /// Statements executed otherwise.
        else_branch: Vec<Statement>,
    },
    /// `while cond { … }` with a mandatory iteration bound so model bugs
    /// cannot hang the simulator.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Statement>,
        /// Maximum number of iterations before [`Error::Action`] is raised.
        max_iter: u32,
    },
    /// Declares `amount` units of computational work of a given class; the
    /// platform's cost model converts units to cycles.
    Compute {
        /// Workload class.
        class: CostClass,
        /// Work amount (evaluated to an `Int`, clamped at zero).
        amount: Expr,
    },
    /// Writes a line to the simulation log (the paper's "custom C
    /// functions" instrumentation).
    Log {
        /// Message template; `{}` placeholders are replaced by `args`.
        message: String,
        /// Values interpolated into the message.
        args: Vec<Expr>,
    },
    /// Arms a named timer to fire after `duration` time units.
    SetTimer {
        /// Timer name, scoped to the process.
        name: String,
        /// Duration expression (evaluated to a non-negative `Int`).
        duration: Expr,
    },
    /// Cancels a named timer; cancelling an unarmed timer is a no-op.
    CancelTimer {
        /// Timer name.
        name: String,
    },
    /// `count name, amount` — adds `amount` to a named per-process counter
    /// in the simulation log (a `CNT` record), so protocol-level tallies
    /// (frames sent, retries, give-ups) flow through the log-file boundary
    /// into the profiling reports.
    Count {
        /// Counter name, scoped to the process.
        counter: String,
        /// Increment expression (evaluated to an `Int`).
        amount: Expr,
    },
}

/// An observable effect produced by executing statements.
///
/// The interpreter (in `tut-sim`) turns these into simulation events; unit
/// tests can assert on them directly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Effect {
    /// A signal emission through a named port.
    Send {
        /// Port name.
        port: String,
        /// Signal type.
        signal: SignalId,
        /// Evaluated payload values.
        values: Vec<Value>,
    },
    /// Computational work of `units` in `class`.
    Compute {
        /// Workload class.
        class: CostClass,
        /// Work units (non-negative).
        units: u64,
    },
    /// A log line.
    Log(String),
    /// A timer was armed.
    SetTimer {
        /// Timer name.
        name: String,
        /// Duration in simulation time units.
        duration: u64,
    },
    /// A timer was cancelled.
    CancelTimer {
        /// Timer name.
        name: String,
    },
    /// A named counter was incremented.
    Count {
        /// Counter name.
        counter: String,
        /// Signed increment (counters may be decremented).
        amount: i64,
    },
}

/// A small name→value binding set, stored as a flat vector.
///
/// Process variable and signal-parameter sets are tiny (a handful of
/// names), so a linear scan over a `Vec` beats a `HashMap`: no hashing
/// per lookup, no rehash on clone, and — the hot-path property the
/// simulator relies on — [`Scope::set`] on an existing name reuses the
/// stored key, so steady-state variable updates never allocate.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct Scope {
    entries: Vec<(String, Value)>,
}

impl Scope {
    /// An empty scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Looks up a binding by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Binds `name` to `value`, replacing an existing binding in place
    /// (the stored key is reused — no allocation for repeat names).
    pub fn set(&mut self, name: &str, value: Value) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = value,
            None => self.entries.push((name.to_owned(), value)),
        }
    }

    /// Removes every binding, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no names are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }
}

impl Index<&str> for Scope {
    type Output = Value;

    /// # Panics
    ///
    /// Panics when `name` is unbound (test ergonomics, like map
    /// indexing).
    fn index(&self, name: &str) -> &Value {
        self.get(name)
            .unwrap_or_else(|| panic!("no binding named `{name}`"))
    }
}

/// Evaluation environment: process-local variables plus the parameters of
/// the triggering signal.
#[derive(Clone, Default, Debug)]
pub struct Env {
    /// Named process-local variables.
    pub vars: Scope,
    /// Named parameters of the signal that triggered the transition.
    pub params: Scope,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Sets a variable, returning `self` for chaining in tests.
    pub fn with_var(mut self, name: impl Into<String>, value: impl Into<Value>) -> Env {
        self.vars.set(&name.into(), value.into());
        self
    }

    /// Sets a signal parameter, returning `self` for chaining in tests.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<Value>) -> Env {
        self.params.set(&name.into(), value.into());
        self
    }
}

/// Executes a statement list in `env`, pushing effects into `effects` and
/// adding the execution weight of every evaluated expression/statement to
/// `weight` (the simulator converts weight to cycles).
///
/// # Errors
///
/// Propagates expression-evaluation errors and reports loops exceeding
/// their `max_iter` bound.
pub fn execute(
    statements: &[Statement],
    env: &mut Env,
    effects: &mut Vec<Effect>,
    weight: &mut u64,
) -> Result<()> {
    for statement in statements {
        *weight += 1;
        match statement {
            Statement::Assign { var, expr } => {
                let v = expr.eval(env)?;
                *weight += expr.weight();
                env.vars.set(var, v);
            }
            Statement::Send { port, signal, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(env)?);
                    *weight += a.weight();
                }
                effects.push(Effect::Send {
                    port: port.clone(),
                    signal: *signal,
                    values,
                });
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                *weight += cond.weight();
                if cond.eval(env)?.is_truthy() {
                    execute(then_branch, env, effects, weight)?;
                } else {
                    execute(else_branch, env, effects, weight)?;
                }
            }
            Statement::While {
                cond,
                body,
                max_iter,
            } => {
                let mut iterations = 0u32;
                loop {
                    *weight += cond.weight();
                    if !cond.eval(env)?.is_truthy() {
                        break;
                    }
                    if iterations >= *max_iter {
                        return Err(Error::Action(format!(
                            "while loop exceeded its bound of {max_iter} iterations"
                        )));
                    }
                    iterations += 1;
                    execute(body, env, effects, weight)?;
                }
            }
            Statement::Compute { class, amount } => {
                let units = amount
                    .eval(env)?
                    .as_int()
                    .ok_or_else(|| Error::Action("compute amount must evaluate to Int".into()))?;
                *weight += amount.weight();
                effects.push(Effect::Compute {
                    class: *class,
                    units: units.max(0) as u64,
                });
            }
            Statement::Log { message, args } => {
                let mut rendered = String::with_capacity(message.len());
                let mut vals = args.iter();
                let mut rest = message.as_str();
                while let Some(pos) = rest.find("{}") {
                    rendered.push_str(&rest[..pos]);
                    match vals.next() {
                        Some(a) => {
                            let v = a.eval(env)?;
                            *weight += a.weight();
                            rendered.push_str(&v.to_string());
                        }
                        None => rendered.push_str("{}"),
                    }
                    rest = &rest[pos + 2..];
                }
                rendered.push_str(rest);
                effects.push(Effect::Log(rendered));
            }
            Statement::SetTimer { name, duration } => {
                let d = duration
                    .eval(env)?
                    .as_int()
                    .ok_or_else(|| Error::Action("timer duration must evaluate to Int".into()))?;
                *weight += duration.weight();
                effects.push(Effect::SetTimer {
                    name: name.clone(),
                    duration: d.max(0) as u64,
                });
            }
            Statement::CancelTimer { name } => {
                effects.push(Effect::CancelTimer { name: name.clone() });
            }
            Statement::Count { counter, amount } => {
                let n = amount
                    .eval(env)?
                    .as_int()
                    .ok_or_else(|| Error::Action("count amount must evaluate to Int".into()))?;
                *weight += amount.weight();
                effects.push(Effect::Count {
                    counter: counter.clone(),
                    amount: n,
                });
            }
        }
    }
    Ok(())
}

/// Infers the static data type of an expression where possible (literals
/// and builtins have known types; variables/parameters are `None`).
pub fn static_type(expr: &Expr) -> Option<DataType> {
    match expr {
        Expr::Lit(v) => Some(v.data_type()),
        Expr::Var(_) | Expr::Param(_) => None,
        Expr::Unary(UnaryOp::Not, _) => Some(DataType::Bool),
        Expr::Unary(UnaryOp::Neg, _) => Some(DataType::Int),
        Expr::Binary(op, l, r) => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => Some(DataType::Bool),
            BinOp::Add => match (static_type(l), static_type(r)) {
                (Some(DataType::Bytes), _) | (_, Some(DataType::Bytes)) => Some(DataType::Bytes),
                (Some(DataType::Str), _) | (_, Some(DataType::Str)) => Some(DataType::Str),
                (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                _ => None,
            },
            _ => Some(DataType::Int),
        },
        Expr::Call(b, _) => Some(match b {
            Builtin::Len
            | Builtin::ByteAt
            | Builtin::UnpackInt
            | Builtin::Crc32
            | Builtin::Min
            | Builtin::Max => DataType::Int,
            Builtin::Slice | Builtin::Concat | Builtin::PackInt | Builtin::Fill => DataType::Bytes,
        }),
    }
}

/// Stable code: a variable is read but never assigned anywhere in the
/// behaviour and is not a machine variable.
pub const E_UNBOUND_VAR: &str = "E0316";
/// Stable code: `send` argument count differs from the signal's parameter
/// list.
pub const E_SEND_ARITY: &str = "E0317";
/// Stable code: statically-known type mismatch (a non-Bool guard or
/// condition, or a non-Int operand of an arithmetic operator).
pub const E_TYPE_MISMATCH: &str = "E0318";

/// Flow-insensitively type-checks every program of a state machine: entry
/// actions, transition actions, and guards.
///
/// The check is deliberately conservative — it only reports what must fail
/// at runtime regardless of control flow:
///
/// * **E0316** — a variable read that no statement anywhere in the
///   behaviour assigns and that is not a declared machine variable. Signal
///   parameters (`$x`) are exempt: their binding depends on the triggering
///   signal.
/// * **E0317** — a `send` whose argument count differs from the signal's
///   declared parameter list.
/// * **E0318** — an `if`/`while` condition or transition guard whose
///   static type is known and is not `Bool`, or an arithmetic operand
///   whose static type is known and is not `Int`.
///
/// Diagnostics carry no element attribution; callers (the well-formedness
/// checker) attach the owning class.
pub fn type_check(
    model: &crate::model::Model,
    machine: &crate::statemachine::StateMachine,
) -> DiagnosticBag {
    let mut bag = DiagnosticBag::new();
    let mut programs: Vec<&[Statement]> = Vec::new();
    for (_, state) in machine.states() {
        programs.push(state.entry());
    }
    let mut guards: Vec<&Expr> = Vec::new();
    for (_, transition) in machine.transitions() {
        programs.push(transition.actions());
        if let Some(guard) = transition.guard() {
            guards.push(guard);
        }
    }
    // The flow-insensitive binding set: declared machine variables plus
    // every name any statement assigns, anywhere in the behaviour.
    let mut bound: HashSet<&str> = machine
        .variables()
        .iter()
        .map(|v| v.name.as_str())
        .collect();
    for program in &programs {
        collect_assigned(program, &mut bound);
    }
    let cx = CheckCx {
        model,
        machine_name: machine.name(),
        bound,
    };
    for program in &programs {
        cx.check_statements(program, &mut bag);
    }
    for guard in guards {
        cx.check_expr(guard, &mut bag);
        if let Some(t) = static_type(guard) {
            if t != DataType::Bool {
                bag.push(Diagnostic::error(
                    E_TYPE_MISMATCH,
                    format!(
                        "guard `{guard}` in behaviour `{}` has type {t:?}, expected Bool",
                        cx.machine_name
                    ),
                ));
            }
        }
    }
    bag
}

fn collect_assigned<'a>(program: &'a [Statement], bound: &mut HashSet<&'a str>) {
    for statement in program {
        match statement {
            Statement::Assign { var, .. } => {
                bound.insert(var.as_str());
            }
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_assigned(then_branch, bound);
                collect_assigned(else_branch, bound);
            }
            Statement::While { body, .. } => collect_assigned(body, bound),
            _ => {}
        }
    }
}

struct CheckCx<'a> {
    model: &'a crate::model::Model,
    machine_name: &'a str,
    bound: HashSet<&'a str>,
}

impl CheckCx<'_> {
    fn check_statements(&self, program: &[Statement], bag: &mut DiagnosticBag) {
        for statement in program {
            match statement {
                Statement::Assign { expr, .. } => self.check_expr(expr, bag),
                Statement::Send { signal, args, .. } => {
                    let sig = self.model.signal(*signal);
                    if args.len() != sig.params().len() {
                        bag.push(Diagnostic::error(
                            E_SEND_ARITY,
                            format!(
                                "send of `{}` in behaviour `{}` passes {} arguments, signal declares {}",
                                sig.name(),
                                self.machine_name,
                                args.len(),
                                sig.params().len()
                            ),
                        ));
                    }
                    for arg in args {
                        self.check_expr(arg, bag);
                    }
                }
                Statement::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.check_condition(cond, "if", bag);
                    self.check_statements(then_branch, bag);
                    self.check_statements(else_branch, bag);
                }
                Statement::While { cond, body, .. } => {
                    self.check_condition(cond, "while", bag);
                    self.check_statements(body, bag);
                }
                Statement::Compute { amount, .. } => self.check_expr(amount, bag),
                Statement::Log { args, .. } => {
                    for arg in args {
                        self.check_expr(arg, bag);
                    }
                }
                Statement::SetTimer { duration, .. } => self.check_expr(duration, bag),
                Statement::CancelTimer { .. } => {}
                Statement::Count { amount, .. } => self.check_expr(amount, bag),
            }
        }
    }

    fn check_condition(&self, cond: &Expr, keyword: &str, bag: &mut DiagnosticBag) {
        self.check_expr(cond, bag);
        if let Some(t) = static_type(cond) {
            if t != DataType::Bool {
                bag.push(Diagnostic::error(
                    E_TYPE_MISMATCH,
                    format!(
                        "`{keyword}` condition `{cond}` in behaviour `{}` has type {t:?}, expected Bool",
                        self.machine_name
                    ),
                ));
            }
        }
    }

    fn check_expr(&self, expr: &Expr, bag: &mut DiagnosticBag) {
        match expr {
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Var(name) => {
                if !self.bound.contains(name.as_str()) {
                    bag.push(Diagnostic::error(
                        E_UNBOUND_VAR,
                        format!(
                            "variable `{name}` in behaviour `{}` is never assigned and is not a machine variable",
                            self.machine_name
                        ),
                    ));
                }
            }
            Expr::Unary(op, inner) => {
                self.check_expr(inner, bag);
                let expected = match op {
                    UnaryOp::Not => DataType::Bool,
                    UnaryOp::Neg => DataType::Int,
                };
                if let Some(t) = static_type(inner) {
                    if t != expected {
                        bag.push(Diagnostic::error(
                            E_TYPE_MISMATCH,
                            format!(
                                "operand of `{}` in behaviour `{}` has type {t:?}, expected {expected:?}",
                                if *op == UnaryOp::Not { "!" } else { "-" },
                                self.machine_name
                            ),
                        ));
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                self.check_expr(lhs, bag);
                self.check_expr(rhs, bag);
                // Arithmetic/bitwise operators need Int operands (Add also
                // concatenates strings and byte buffers, so it is exempt).
                let needs_int = matches!(
                    op,
                    BinOp::Sub
                        | BinOp::Mul
                        | BinOp::Div
                        | BinOp::Mod
                        | BinOp::BitAnd
                        | BinOp::BitOr
                        | BinOp::BitXor
                        | BinOp::Shl
                        | BinOp::Shr
                );
                if needs_int {
                    for side in [lhs, rhs] {
                        if let Some(t) = static_type(side) {
                            if t != DataType::Int {
                                bag.push(Diagnostic::error(
                                    E_TYPE_MISMATCH,
                                    format!(
                                        "operand `{side}` of `{}` in behaviour `{}` has type {t:?}, expected Int",
                                        op.token(),
                                        self.machine_name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Expr::Call(_, args) => {
                for arg in args {
                    self.check_expr(arg, bag);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(expr: &Expr) -> Value {
        expr.eval(&Env::new()).expect("eval")
    }

    #[test]
    fn arithmetic() {
        let e = Expr::int(2)
            .bin(BinOp::Add, Expr::int(3))
            .bin(BinOp::Mul, Expr::int(4));
        assert_eq!(eval(&e), Value::Int(20));
        let e = Expr::int(7).bin(BinOp::Mod, Expr::int(3));
        assert_eq!(eval(&e), Value::Int(1));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::int(1).bin(BinOp::Div, Expr::int(0));
        assert!(e.eval(&Env::new()).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::int(1)
            .bin(BinOp::Lt, Expr::int(2))
            .bin(BinOp::And, Expr::bool(true));
        assert_eq!(eval(&e), Value::Bool(true));
        // Short-circuit: rhs would divide by zero.
        let e = Expr::bool(false).bin(BinOp::And, Expr::int(1).bin(BinOp::Div, Expr::int(0)));
        assert_eq!(eval(&e), Value::Bool(false));
    }

    #[test]
    fn variables_and_params() {
        let env = Env::new().with_var("x", 10i64).with_param("len", 4i64);
        let e = Expr::var("x").bin(BinOp::Add, Expr::param("len"));
        assert_eq!(e.eval(&env).unwrap(), Value::Int(14));
        assert!(Expr::var("missing").eval(&env).is_err());
    }

    #[test]
    fn bytes_builtins() {
        let env = Env::new().with_var("buf", vec![1u8, 2, 3, 4, 5]);
        let len = Expr::call(Builtin::Len, vec![Expr::var("buf")]);
        assert_eq!(len.eval(&env).unwrap(), Value::Int(5));
        let sl = Expr::call(
            Builtin::Slice,
            vec![Expr::var("buf"), Expr::int(1), Expr::int(3)],
        );
        assert_eq!(sl.eval(&env).unwrap(), Value::Bytes(vec![2, 3]));
        // Slice clamps out-of-range bounds.
        let sl = Expr::call(
            Builtin::Slice,
            vec![Expr::var("buf"), Expr::int(3), Expr::int(99)],
        );
        assert_eq!(sl.eval(&env).unwrap(), Value::Bytes(vec![4, 5]));
    }

    #[test]
    fn pack_unpack_round_trip() {
        let packed = Expr::call(Builtin::PackInt, vec![Expr::int(0xABCD), Expr::int(2)]);
        let v = eval(&packed);
        assert_eq!(v, Value::Bytes(vec![0xAB, 0xCD]));
        let unpacked = Expr::call(Builtin::UnpackInt, vec![Expr::Lit(v)]);
        assert_eq!(eval(&unpacked), Value::Int(0xABCD));
    }

    #[test]
    fn crc32_known_answer() {
        // CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bitwise(b""), 0);
    }

    #[test]
    fn bytes_concat_via_plus() {
        let e = Expr::Lit(Value::Bytes(vec![1])).bin(BinOp::Add, Expr::Lit(Value::Bytes(vec![2])));
        assert_eq!(eval(&e), Value::Bytes(vec![1, 2]));
    }

    #[test]
    fn execute_assign_and_send() {
        let sig = SignalId::from_index(0);
        let prog = vec![
            Statement::Assign {
                var: "n".into(),
                expr: Expr::int(3),
            },
            Statement::Send {
                port: "pOut".into(),
                signal: sig,
                args: vec![Expr::var("n")],
            },
        ];
        let mut env = Env::new();
        let mut effects = Vec::new();
        let mut weight = 0;
        execute(&prog, &mut env, &mut effects, &mut weight).unwrap();
        assert_eq!(env.vars["n"], Value::Int(3));
        assert_eq!(
            effects,
            vec![Effect::Send {
                port: "pOut".into(),
                signal: sig,
                values: vec![Value::Int(3)],
            }]
        );
        assert!(weight > 0);
    }

    #[test]
    fn execute_if_else() {
        let prog = vec![Statement::If {
            cond: Expr::var("flag"),
            then_branch: vec![Statement::Assign {
                var: "out".into(),
                expr: Expr::int(1),
            }],
            else_branch: vec![Statement::Assign {
                var: "out".into(),
                expr: Expr::int(2),
            }],
        }];
        let mut env = Env::new().with_var("flag", false);
        let mut fx = Vec::new();
        let mut w = 0;
        execute(&prog, &mut env, &mut fx, &mut w).unwrap();
        assert_eq!(env.vars["out"], Value::Int(2));
    }

    #[test]
    fn while_loop_runs_and_bounds() {
        let prog = vec![Statement::While {
            cond: Expr::var("i").bin(BinOp::Lt, Expr::int(5)),
            body: vec![Statement::Assign {
                var: "i".into(),
                expr: Expr::var("i").bin(BinOp::Add, Expr::int(1)),
            }],
            max_iter: 100,
        }];
        let mut env = Env::new().with_var("i", 0i64);
        let mut fx = Vec::new();
        let mut w = 0;
        execute(&prog, &mut env, &mut fx, &mut w).unwrap();
        assert_eq!(env.vars["i"], Value::Int(5));

        // Unbounded loop trips the iteration guard instead of hanging.
        let prog = vec![Statement::While {
            cond: Expr::bool(true),
            body: vec![],
            max_iter: 10,
        }];
        let err = execute(&prog, &mut env, &mut fx, &mut w).unwrap_err();
        assert!(err.to_string().contains("bound"));
    }

    #[test]
    fn compute_and_timers() {
        let prog = vec![
            Statement::Compute {
                class: CostClass::Bit,
                amount: Expr::int(128),
            },
            Statement::SetTimer {
                name: "beacon".into(),
                duration: Expr::int(1000),
            },
            Statement::CancelTimer {
                name: "beacon".into(),
            },
        ];
        let mut env = Env::new();
        let mut fx = Vec::new();
        let mut w = 0;
        execute(&prog, &mut env, &mut fx, &mut w).unwrap();
        assert_eq!(
            fx,
            vec![
                Effect::Compute {
                    class: CostClass::Bit,
                    units: 128
                },
                Effect::SetTimer {
                    name: "beacon".into(),
                    duration: 1000
                },
                Effect::CancelTimer {
                    name: "beacon".into()
                },
            ]
        );
    }

    #[test]
    fn count_evaluates_amount_in_env() {
        let prog = vec![Statement::Count {
            counter: "arq.retries".into(),
            amount: Expr::var("n").bin(BinOp::Add, Expr::int(1)),
        }];
        let mut env = Env::new().with_var("n", 2i64);
        let mut fx = Vec::new();
        let mut w = 0;
        execute(&prog, &mut env, &mut fx, &mut w).unwrap();
        assert_eq!(
            fx,
            vec![Effect::Count {
                counter: "arq.retries".into(),
                amount: 3,
            }]
        );
        assert!(w > 1, "counting charges expression weight");
    }

    #[test]
    fn log_interpolation() {
        let prog = vec![Statement::Log {
            message: "sent {} frames of {} bytes".into(),
            args: vec![Expr::int(3), Expr::int(512)],
        }];
        let mut env = Env::new();
        let mut fx = Vec::new();
        let mut w = 0;
        execute(&prog, &mut env, &mut fx, &mut w).unwrap();
        assert_eq!(fx, vec![Effect::Log("sent 3 frames of 512 bytes".into())]);
    }

    #[test]
    fn display_forms() {
        let e = Expr::var("x").bin(BinOp::Add, Expr::int(1));
        assert_eq!(e.to_string(), "(x + 1)");
        let e = Expr::call(Builtin::Crc32, vec![Expr::param("pdu")]);
        assert_eq!(e.to_string(), "crc32($pdu)");
    }

    #[test]
    fn static_types() {
        assert_eq!(static_type(&Expr::int(1)), Some(DataType::Int));
        assert_eq!(
            static_type(&Expr::int(1).bin(BinOp::Lt, Expr::int(2))),
            Some(DataType::Bool)
        );
        assert_eq!(
            static_type(&Expr::call(Builtin::Fill, vec![Expr::int(0), Expr::int(4)])),
            Some(DataType::Bytes)
        );
        assert_eq!(static_type(&Expr::var("x")), None);
    }

    #[test]
    fn builtin_names_round_trip() {
        for b in [
            Builtin::Len,
            Builtin::Slice,
            Builtin::Concat,
            Builtin::ByteAt,
            Builtin::PackInt,
            Builtin::UnpackInt,
            Builtin::Crc32,
            Builtin::Min,
            Builtin::Max,
            Builtin::Fill,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
    }

    #[test]
    fn cost_class_names_round_trip() {
        for c in [
            CostClass::Control,
            CostClass::Dsp,
            CostClass::Bit,
            CostClass::Mem,
        ] {
            assert_eq!(CostClass::from_name(c.name()), Some(c));
        }
    }

    mod type_checking {
        use super::super::*;
        use crate::model::Model;
        use crate::statemachine::{StateMachine, Trigger};

        fn machine_with(actions: Vec<Statement>, guard: Option<Expr>) -> (Model, StateMachine) {
            let model = Model::new("M");
            let mut sm = StateMachine::new("B");
            let s = sm.add_state("S0");
            sm.set_initial(s);
            sm.add_transition(s, s, Trigger::Completion, guard, actions);
            (model, sm)
        }

        #[test]
        fn clean_behaviour_passes() {
            let (model, mut sm) = machine_with(
                vec![
                    Statement::Assign {
                        var: "n".into(),
                        expr: Expr::var("n").bin(BinOp::Add, Expr::int(1)),
                    },
                    Statement::If {
                        cond: Expr::var("n").bin(BinOp::Lt, Expr::var("limit")),
                        then_branch: vec![],
                        else_branch: vec![],
                    },
                ],
                Some(Expr::bool(true)),
            );
            sm.add_variable("limit", DataType::Int, Value::Int(10));
            let bag = type_check(&model, &sm);
            assert!(bag.is_empty(), "{bag}");
        }

        #[test]
        fn unbound_variable_flagged() {
            let (model, sm) = machine_with(
                vec![Statement::Assign {
                    var: "x".into(),
                    expr: Expr::var("never_set"),
                }],
                None,
            );
            let bag = type_check(&model, &sm);
            assert_eq!(bag.len(), 1, "{bag}");
            assert_eq!(bag.first().unwrap().code, E_UNBOUND_VAR);
        }

        #[test]
        fn signal_params_are_exempt() {
            let (model, sm) = machine_with(
                vec![Statement::Assign {
                    var: "x".into(),
                    expr: Expr::param("payload"),
                }],
                None,
            );
            assert!(type_check(&model, &sm).is_empty());
        }

        #[test]
        fn send_arity_mismatch_flagged() {
            let mut model = Model::new("M");
            let sig = model.add_signal("Ping"); // zero parameters
            let mut sm = StateMachine::new("B");
            let s = sm.add_state("S0");
            sm.set_initial(s);
            sm.add_transition(
                s,
                s,
                Trigger::Completion,
                None,
                vec![Statement::Send {
                    port: "p".into(),
                    signal: sig,
                    args: vec![Expr::int(1)],
                }],
            );
            let bag = type_check(&model, &sm);
            assert_eq!(bag.len(), 1, "{bag}");
            assert_eq!(bag.first().unwrap().code, E_SEND_ARITY);
        }

        #[test]
        fn non_bool_condition_and_guard_flagged() {
            let (model, sm) = machine_with(
                vec![Statement::If {
                    cond: Expr::int(1),
                    then_branch: vec![],
                    else_branch: vec![],
                }],
                Some(Expr::int(2).bin(BinOp::Add, Expr::int(2))),
            );
            let bag = type_check(&model, &sm);
            assert_eq!(bag.error_count(), 2, "{bag}");
            assert!(bag.iter().all(|d| d.code == E_TYPE_MISMATCH));
        }

        #[test]
        fn arithmetic_on_bool_literal_flagged() {
            let (model, sm) = machine_with(
                vec![Statement::Assign {
                    var: "x".into(),
                    expr: Expr::bool(true).bin(BinOp::Mul, Expr::int(2)),
                }],
                None,
            );
            let bag = type_check(&model, &sm);
            assert_eq!(bag.len(), 1, "{bag}");
            assert_eq!(bag.first().unwrap().code, E_TYPE_MISMATCH);
        }

        #[test]
        fn unknown_condition_types_are_not_flagged() {
            // `$p` and bare variables have unknown static type; the checker
            // must stay quiet rather than guess.
            let (model, sm) = machine_with(
                vec![
                    Statement::Assign {
                        var: "flag".into(),
                        expr: Expr::int(0),
                    },
                    Statement::While {
                        cond: Expr::var("flag"),
                        body: vec![],
                        max_iter: 8,
                    },
                ],
                Some(Expr::param("ready")),
            );
            assert!(type_check(&model, &sm).is_empty());
        }
    }
}
