//! Model well-formedness checking.
//!
//! [`check_model`] verifies the structural invariants that every model must
//! satisfy regardless of profile (profile-specific design rules live in the
//! `tut-profile` crate). Violations are collected rather than failing fast,
//! so a designer sees every problem at once.

use std::collections::HashSet;

use crate::ids::{ClassId, ElementRef};
use crate::model::Model;

/// A single well-formedness violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The element the violation is about.
    pub element: ElementRef,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.element, self.message)
    }
}

/// Checks every structural invariant of `model` and returns all violations
/// (empty when the model is well-formed).
///
/// Checked invariants:
///
/// 1. Names of classes, signals, and packages are unique.
/// 2. Part role names are unique within their owner.
/// 3. Port names are unique within their owner.
/// 4. Connector ends reference ports that exist on the referenced part's
///    type (or on the owner itself for delegation ends), and the parts
///    belong to the connector's owner.
/// 5. Connected port pairs are compatible: every signal required by one end
///    is provided by the other (delegation ends pass signals through).
/// 6. Composition is acyclic (a class cannot transitively contain itself).
/// 7. Every active class has a behaviour and it passes
///    [`crate::statemachine::StateMachine::check`]; signal triggers refer to
///    signals the class's ports provide.
/// 8. Generalisation is acyclic.
pub fn check_model(model: &Model) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_unique_names(model, &mut violations);
    check_parts_and_ports(model, &mut violations);
    check_connectors(model, &mut violations);
    check_composition_cycles(model, &mut violations);
    check_behaviors(model, &mut violations);
    check_generalisation_cycles(model, &mut violations);
    violations
}

fn check_unique_names(model: &Model, violations: &mut Vec<Violation>) {
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, class) in model.classes() {
        if !seen.insert(class.name()) {
            violations.push(Violation {
                element: id.into(),
                message: format!("duplicate class name `{}`", class.name()),
            });
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, sig) in model.signals() {
        if !seen.insert(sig.name()) {
            violations.push(Violation {
                element: id.into(),
                message: format!("duplicate signal name `{}`", sig.name()),
            });
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, pkg) in model.packages() {
        if !seen.insert(pkg.name()) {
            violations.push(Violation {
                element: id.into(),
                message: format!("duplicate package name `{}`", pkg.name()),
            });
        }
    }
}

fn check_parts_and_ports(model: &Model, violations: &mut Vec<Violation>) {
    for (class_id, class) in model.classes() {
        let mut seen: HashSet<&str> = HashSet::new();
        for &part in class.parts() {
            let p = model.property(part);
            if !seen.insert(p.name()) {
                violations.push(Violation {
                    element: part.into(),
                    message: format!(
                        "duplicate part name `{}` in class `{}`",
                        p.name(),
                        class.name()
                    ),
                });
            }
            if p.multiplicity() == 0 {
                violations.push(Violation {
                    element: part.into(),
                    message: format!("part `{}` has multiplicity 0", p.name()),
                });
            }
        }
        let mut seen: HashSet<&str> = HashSet::new();
        for &port in class.ports() {
            let p = model.port(port);
            if !seen.insert(p.name()) {
                violations.push(Violation {
                    element: port.into(),
                    message: format!(
                        "duplicate port name `{}` on class `{}`",
                        p.name(),
                        class.name()
                    ),
                });
            }
            let _ = class_id;
        }
    }
}

fn check_connectors(model: &Model, violations: &mut Vec<Violation>) {
    for (conn_id, conn) in model.connectors() {
        let owner = conn.owner();
        let mut end_signals: Vec<(HashSet<_>, HashSet<_>)> = Vec::new();
        for end in conn.ends() {
            let port = model.port(end.port);
            match end.part {
                Some(part) => {
                    let p = model.property(part);
                    if p.owner() != owner {
                        violations.push(Violation {
                            element: conn_id.into(),
                            message: format!(
                                "connector `{}` references part `{}` that belongs to another class",
                                conn.name(),
                                p.name()
                            ),
                        });
                    }
                    if port.owner() != p.type_() {
                        violations.push(Violation {
                            element: conn_id.into(),
                            message: format!(
                                "connector `{}` end port `{}` is not a port of part type `{}`",
                                conn.name(),
                                port.name(),
                                model.class(p.type_()).name()
                            ),
                        });
                    }
                }
                None => {
                    if port.owner() != owner {
                        violations.push(Violation {
                            element: conn_id.into(),
                            message: format!(
                                "connector `{}` delegation end port `{}` is not on the owning class",
                                conn.name(),
                                port.name()
                            ),
                        });
                    }
                }
            }
            end_signals.push((
                port.required().iter().copied().collect(),
                port.provided().iter().copied().collect(),
            ));
        }
        // Assembly compatibility (skip for delegation connectors, which
        // relay rather than terminate signals). Ports may serve several
        // connectors, each carrying a subset of the port's signals, so the
        // rule is: the connector must carry at least one signal — some
        // signal required by one end is provided by the other.
        let is_delegation = conn.ends().iter().any(|e| e.part.is_none());
        if !is_delegation {
            let (req_a, prov_a) = &end_signals[0];
            let (req_b, prov_b) = &end_signals[1];
            let carries_ab = req_a.intersection(prov_b).count();
            let carries_ba = req_b.intersection(prov_a).count();
            let any_required = !req_a.is_empty() || !req_b.is_empty();
            if any_required && carries_ab + carries_ba == 0 {
                violations.push(Violation {
                    element: conn_id.into(),
                    message: format!(
                        "connector `{}` carries no signal: nothing required by one end is provided by the other",
                        conn.name()
                    ),
                });
            }
        }
    }
}

fn check_composition_cycles(model: &Model, violations: &mut Vec<Violation>) {
    // DFS over the "contains a part of type" relation.
    fn visit(
        model: &Model,
        class: ClassId,
        stack: &mut Vec<ClassId>,
        done: &mut HashSet<ClassId>,
        violations: &mut Vec<Violation>,
    ) {
        if done.contains(&class) {
            return;
        }
        if stack.contains(&class) {
            violations.push(Violation {
                element: class.into(),
                message: format!(
                    "composition cycle: class `{}` transitively contains itself",
                    model.class(class).name()
                ),
            });
            return;
        }
        stack.push(class);
        for &part in model.class(class).parts() {
            visit(model, model.property(part).type_(), stack, done, violations);
        }
        stack.pop();
        done.insert(class);
    }
    let mut done = HashSet::new();
    for (id, _) in model.classes() {
        visit(model, id, &mut Vec::new(), &mut done, violations);
    }
}

fn check_behaviors(model: &Model, violations: &mut Vec<Violation>) {
    for (class_id, class) in model.classes() {
        match class.behavior() {
            Some(sm_id) => {
                let sm = model.state_machine(sm_id);
                if let Err(err) = sm.check() {
                    violations.push(Violation {
                        element: class_id.into(),
                        message: err.to_string(),
                    });
                }
                // Signal triggers must be receivable through some port.
                let provided: HashSet<_> = class
                    .ports()
                    .iter()
                    .flat_map(|&p| model.port(p).provided().iter().copied())
                    .collect();
                for sig in sm.input_alphabet() {
                    if !provided.contains(&sig) {
                        violations.push(Violation {
                            element: class_id.into(),
                            message: format!(
                                "behaviour of `{}` consumes signal `{}` that no port provides",
                                class.name(),
                                model.signal(sig).name()
                            ),
                        });
                    }
                }
            }
            None => {
                if class.is_active() {
                    violations.push(Violation {
                        element: class_id.into(),
                        message: format!(
                            "active class `{}` has no classifier behaviour",
                            class.name()
                        ),
                    });
                }
            }
        }
    }
}

fn check_generalisation_cycles(model: &Model, violations: &mut Vec<Violation>) {
    for (id, _) in model.classes() {
        let mut slow = id;
        let mut fast = id;
        loop {
            fast = match model.class(fast).general() {
                Some(g) => g,
                None => break,
            };
            fast = match model.class(fast).general() {
                Some(g) => g,
                None => break,
            };
            slow = model.class(slow).general().expect("slow lags fast");
            if slow == fast {
                violations.push(Violation {
                    element: id.into(),
                    message: format!(
                        "generalisation cycle involving class `{}`",
                        model.class(id).name()
                    ),
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConnectorEnd;
    use crate::statemachine::{StateMachine, Trigger};

    #[test]
    fn clean_model_has_no_violations() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let worker = m.add_class("Worker");
        let part = m.add_part(top, "w", worker);
        let sig = m.add_signal("S");
        let pin = m.add_port(worker, "in");
        let pout = m.add_port(top, "out");
        m.port_mut(pin).add_provided(sig);
        m.port_mut(pout).add_required(sig);
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: None,
                port: pout,
            },
            ConnectorEnd {
                part: Some(part),
                port: pin,
            },
        );
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S0");
        sm.set_initial(s);
        sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
        m.add_state_machine(worker, sm);
        assert_eq!(check_model(&m), vec![]);
    }

    #[test]
    fn duplicate_names_reported() {
        let mut m = Model::new("M");
        m.add_class("Same");
        m.add_class("Same");
        m.add_signal("S");
        m.add_signal("S");
        let v = check_model(&m);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("duplicate class name"));
    }

    #[test]
    fn incompatible_connector_reported() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let a = m.add_class("A");
        let b = m.add_class("B");
        let pa = m.add_part(top, "a", a);
        let pb = m.add_part(top, "b", b);
        let sig = m.add_signal("S");
        let out = m.add_port(a, "out");
        let inp = m.add_port(b, "in");
        m.port_mut(out).add_required(sig);
        // `in` does not provide S.
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: Some(pa),
                port: out,
            },
            ConnectorEnd {
                part: Some(pb),
                port: inp,
            },
        );
        let v = check_model(&m);
        assert!(v.iter().any(|x| x.message.contains("carries no signal")));

        // Providing the signal fixes it.
        m.port_mut(inp).add_provided(sig);
        assert!(check_model(&m).is_empty());
    }

    #[test]
    fn connector_port_on_wrong_class_reported() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let a = m.add_class("A");
        let part = m.add_part(top, "a", a);
        let stray = m.add_class("Stray");
        let stray_port = m.add_port(stray, "p");
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: Some(part),
                port: stray_port,
            },
            ConnectorEnd {
                part: Some(part),
                port: stray_port,
            },
        );
        let v = check_model(&m);
        assert!(v
            .iter()
            .any(|x| x.message.contains("not a port of part type")));
    }

    #[test]
    fn composition_cycle_reported() {
        let mut m = Model::new("M");
        let a = m.add_class("A");
        let b = m.add_class("B");
        m.add_part(a, "b", b);
        m.add_part(b, "a", a);
        let v = check_model(&m);
        assert!(v.iter().any(|x| x.message.contains("composition cycle")));
    }

    #[test]
    fn behaviour_consuming_unprovided_signal_reported() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        let sig = m.add_signal("S");
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S0");
        sm.set_initial(s);
        sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
        m.add_state_machine(c, sm);
        let v = check_model(&m);
        assert!(v.iter().any(|x| x.message.contains("no port provides")));
    }

    #[test]
    fn generalisation_cycle_reported() {
        let mut m = Model::new("M");
        let a = m.add_class("A");
        let b = m.add_class("B");
        m.class_mut(a).set_general(Some(b));
        m.class_mut(b).set_general(Some(a));
        let v = check_model(&m);
        assert!(v.iter().any(|x| x.message.contains("generalisation cycle")));
    }

    #[test]
    fn active_class_without_behaviour_reported() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        m.class_mut(c).set_active(true);
        let v = check_model(&m);
        assert!(v
            .iter()
            .any(|x| x.message.contains("no classifier behaviour")));
    }
}
