//! Model well-formedness checking.
//!
//! [`check_model`] verifies the structural invariants that every model must
//! satisfy regardless of profile (profile-specific design rules live in the
//! `tut-profile` crate). Findings are collected into a
//! [`DiagnosticBag`] rather than failing fast, so a designer sees every
//! problem at once, and each carries a stable `E03xx` code plus the display
//! form of the offending element (drivers that know where elements were
//! declared use it to attach source spans).

use std::collections::HashSet;

use tut_diag::{Diagnostic, DiagnosticBag};

use crate::ids::{ClassId, ElementRef};
use crate::model::Model;

/// Duplicate class name.
pub const E_DUP_CLASS: &str = "E0301";
/// Duplicate signal name.
pub const E_DUP_SIGNAL: &str = "E0302";
/// Duplicate package name.
pub const E_DUP_PACKAGE: &str = "E0303";
/// Duplicate part role name within one class.
pub const E_DUP_PART: &str = "E0304";
/// Part with multiplicity zero.
pub const E_ZERO_MULTIPLICITY: &str = "E0305";
/// Duplicate port name on one class.
pub const E_DUP_PORT: &str = "E0306";
/// Connector references a part owned by another class.
pub const E_CONNECTOR_FOREIGN_PART: &str = "E0307";
/// Connector end port is not a port of the part's type.
pub const E_CONNECTOR_BAD_PORT: &str = "E0308";
/// Delegation end port is not on the owning class.
pub const E_DELEGATION_BAD_PORT: &str = "E0309";
/// Assembly connector carries no signal.
pub const E_CONNECTOR_NO_SIGNAL: &str = "E0310";
/// Composition cycle.
pub const E_COMPOSITION_CYCLE: &str = "E0311";
/// State machine failed its structural check.
pub const E_BAD_STATE_MACHINE: &str = "E0312";
/// Behaviour consumes a signal no port provides.
pub const E_UNPROVIDED_TRIGGER: &str = "E0313";
/// Active class without classifier behaviour.
pub const E_ACTIVE_NO_BEHAVIOUR: &str = "E0314";
/// Generalisation cycle.
pub const E_GENERALISATION_CYCLE: &str = "E0315";

fn violation(code: &'static str, element: impl Into<ElementRef>, message: String) -> Diagnostic {
    Diagnostic::error(code, message).with_element(element.into().to_string())
}

/// Checks every structural invariant of `model` and returns all findings
/// (empty when the model is well-formed). Includes the flow-insensitive
/// action type-check ([`crate::action::type_check`]) over every behaviour.
///
/// Checked invariants:
///
/// 1. Names of classes, signals, and packages are unique
///    (`E0301`–`E0303`).
/// 2. Part role names are unique within their owner and have nonzero
///    multiplicity (`E0304`, `E0305`).
/// 3. Port names are unique within their owner (`E0306`).
/// 4. Connector ends reference ports that exist on the referenced part's
///    type (or on the owner itself for delegation ends), and the parts
///    belong to the connector's owner (`E0307`–`E0309`).
/// 5. Connected port pairs are compatible: every signal required by one end
///    is provided by the other (delegation ends pass signals through)
///    (`E0310`).
/// 6. Composition is acyclic (`E0311`).
/// 7. Every active class has a behaviour and it passes
///    [`crate::statemachine::StateMachine::check`]; signal triggers refer to
///    signals the class's ports provide; the behaviour's action programs
///    type-check (`E0312`–`E0314`, `E0316`–`E0318`).
/// 8. Generalisation is acyclic (`E0315`).
pub fn check_model(model: &Model) -> DiagnosticBag {
    let mut bag = DiagnosticBag::new();
    check_unique_names(model, &mut bag);
    check_parts_and_ports(model, &mut bag);
    check_connectors(model, &mut bag);
    check_composition_cycles(model, &mut bag);
    check_behaviors(model, &mut bag);
    check_generalisation_cycles(model, &mut bag);
    bag
}

/// Pass 1: unique class/signal/package names (`E0301`–`E0303`).
///
/// The passes below are public so the incremental front end can run (and
/// cache) each one as its own query; [`check_model`] composes them in a
/// fixed order and whole-model callers should keep using it.
pub fn check_unique_names(model: &Model, bag: &mut DiagnosticBag) {
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, class) in model.classes() {
        if !seen.insert(class.name()) {
            bag.push(violation(
                E_DUP_CLASS,
                id,
                format!("duplicate class name `{}`", class.name()),
            ));
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, sig) in model.signals() {
        if !seen.insert(sig.name()) {
            bag.push(violation(
                E_DUP_SIGNAL,
                id,
                format!("duplicate signal name `{}`", sig.name()),
            ));
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for (id, pkg) in model.packages() {
        if !seen.insert(pkg.name()) {
            bag.push(violation(
                E_DUP_PACKAGE,
                id,
                format!("duplicate package name `{}`", pkg.name()),
            ));
        }
    }
}

/// Pass 2: part/port invariants (`E0304`–`E0306`) for every class, in
/// class order.
pub fn check_parts_and_ports(model: &Model, bag: &mut DiagnosticBag) {
    for (id, _) in model.classes() {
        check_parts_and_ports_of(model, id, bag);
    }
}

/// Pass 2 restricted to one class: duplicate part names, zero
/// multiplicity, duplicate port names. Reads only the class itself and
/// the properties/ports it owns, so the incremental front end caches it
/// per class.
pub fn check_parts_and_ports_of(model: &Model, class_id: ClassId, bag: &mut DiagnosticBag) {
    let class = model.class(class_id);
    {
        let mut seen: HashSet<&str> = HashSet::new();
        for &part in class.parts() {
            let p = model.property(part);
            if !seen.insert(p.name()) {
                bag.push(violation(
                    E_DUP_PART,
                    part,
                    format!(
                        "duplicate part name `{}` in class `{}`",
                        p.name(),
                        class.name()
                    ),
                ));
            }
            if p.multiplicity() == 0 {
                bag.push(violation(
                    E_ZERO_MULTIPLICITY,
                    part,
                    format!("part `{}` has multiplicity 0", p.name()),
                ));
            }
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for &port in class.ports() {
        let p = model.port(port);
        if !seen.insert(p.name()) {
            bag.push(violation(
                E_DUP_PORT,
                port,
                format!(
                    "duplicate port name `{}` on class `{}`",
                    p.name(),
                    class.name()
                ),
            ));
        }
    }
}

/// Pass 3: connector end/compatibility invariants (`E0307`–`E0310`).
pub fn check_connectors(model: &Model, bag: &mut DiagnosticBag) {
    for (conn_id, conn) in model.connectors() {
        let owner = conn.owner();
        let mut end_signals: Vec<(HashSet<_>, HashSet<_>)> = Vec::new();
        for end in conn.ends() {
            let port = model.port(end.port);
            match end.part {
                Some(part) => {
                    let p = model.property(part);
                    if p.owner() != owner {
                        bag.push(violation(
                            E_CONNECTOR_FOREIGN_PART,
                            conn_id,
                            format!(
                                "connector `{}` references part `{}` that belongs to another class",
                                conn.name(),
                                p.name()
                            ),
                        ));
                    }
                    if port.owner() != p.type_() {
                        bag.push(violation(
                            E_CONNECTOR_BAD_PORT,
                            conn_id,
                            format!(
                                "connector `{}` end port `{}` is not a port of part type `{}`",
                                conn.name(),
                                port.name(),
                                model.class(p.type_()).name()
                            ),
                        ));
                    }
                }
                None => {
                    if port.owner() != owner {
                        bag.push(violation(
                            E_DELEGATION_BAD_PORT,
                            conn_id,
                            format!(
                                "connector `{}` delegation end port `{}` is not on the owning class",
                                conn.name(),
                                port.name()
                            ),
                        ));
                    }
                }
            }
            end_signals.push((
                port.required().iter().copied().collect(),
                port.provided().iter().copied().collect(),
            ));
        }
        // Assembly compatibility (skip for delegation connectors, which
        // relay rather than terminate signals). Ports may serve several
        // connectors, each carrying a subset of the port's signals, so the
        // rule is: the connector must carry at least one signal — some
        // signal required by one end is provided by the other.
        let is_delegation = conn.ends().iter().any(|e| e.part.is_none());
        if !is_delegation {
            let (req_a, prov_a) = &end_signals[0];
            let (req_b, prov_b) = &end_signals[1];
            let carries_ab = req_a.intersection(prov_b).count();
            let carries_ba = req_b.intersection(prov_a).count();
            let any_required = !req_a.is_empty() || !req_b.is_empty();
            if any_required && carries_ab + carries_ba == 0 {
                bag.push(violation(
                    E_CONNECTOR_NO_SIGNAL,
                    conn_id,
                    format!(
                        "connector `{}` carries no signal: nothing required by one end is provided by the other",
                        conn.name()
                    ),
                ));
            }
        }
    }
}

/// Pass 4: composition acyclicity (`E0311`).
pub fn check_composition_cycles(model: &Model, bag: &mut DiagnosticBag) {
    // DFS over the "contains a part of type" relation.
    fn visit(
        model: &Model,
        class: ClassId,
        stack: &mut Vec<ClassId>,
        done: &mut HashSet<ClassId>,
        bag: &mut DiagnosticBag,
    ) {
        if done.contains(&class) {
            return;
        }
        if stack.contains(&class) {
            bag.push(violation(
                E_COMPOSITION_CYCLE,
                class,
                format!(
                    "composition cycle: class `{}` transitively contains itself",
                    model.class(class).name()
                ),
            ));
            return;
        }
        stack.push(class);
        for &part in model.class(class).parts() {
            visit(model, model.property(part).type_(), stack, done, bag);
        }
        stack.pop();
        done.insert(class);
    }
    let mut done = HashSet::new();
    for (id, _) in model.classes() {
        visit(model, id, &mut Vec::new(), &mut done, bag);
    }
}

/// Pass 5: behaviour invariants (`E0312`–`E0314`, plus the action
/// type-check's `E0316`–`E0318`) for every class, in class order.
pub fn check_behaviors(model: &Model, bag: &mut DiagnosticBag) {
    for (class_id, _) in model.classes() {
        check_behavior_of(model, class_id, bag);
    }
}

/// Pass 5 restricted to one class: structural state-machine check,
/// trigger/port coverage, and the flow-insensitive action type-check.
/// Reads the class, its ports, its own state machine, and the signal
/// table, so the incremental front end caches it per class keyed on the
/// class's behaviour segment.
pub fn check_behavior_of(model: &Model, class_id: ClassId, bag: &mut DiagnosticBag) {
    let class = model.class(class_id);
    match class.behavior() {
        Some(sm_id) => {
            let sm = model.state_machine(sm_id);
            if let Err(err) = sm.check() {
                bag.push(violation(E_BAD_STATE_MACHINE, class_id, err.to_string()));
            }
            // Signal triggers must be receivable through some port.
            let provided: HashSet<_> = class
                .ports()
                .iter()
                .flat_map(|&p| model.port(p).provided().iter().copied())
                .collect();
            for sig in sm.input_alphabet() {
                if !provided.contains(&sig) {
                    bag.push(violation(
                        E_UNPROVIDED_TRIGGER,
                        class_id,
                        format!(
                            "behaviour of `{}` consumes signal `{}` that no port provides",
                            class.name(),
                            model.signal(sig).name()
                        ),
                    ));
                }
            }
            // Flow-insensitive action type-check (E0316–E0318),
            // attributed to the owning class.
            let element = ElementRef::from(class_id).to_string();
            for mut diag in crate::action::type_check(model, sm) {
                diag.element = Some(element.clone());
                bag.push(diag);
            }
        }
        None => {
            if class.is_active() {
                bag.push(violation(
                    E_ACTIVE_NO_BEHAVIOUR,
                    class_id,
                    format!(
                        "active class `{}` has no classifier behaviour",
                        class.name()
                    ),
                ));
            }
        }
    }
}

/// Pass 6: generalisation acyclicity (`E0315`).
pub fn check_generalisation_cycles(model: &Model, bag: &mut DiagnosticBag) {
    for (id, _) in model.classes() {
        let mut slow = id;
        let mut fast = id;
        loop {
            fast = match model.class(fast).general() {
                Some(g) => g,
                None => break,
            };
            fast = match model.class(fast).general() {
                Some(g) => g,
                None => break,
            };
            slow = model.class(slow).general().expect("slow lags fast");
            if slow == fast {
                bag.push(violation(
                    E_GENERALISATION_CYCLE,
                    id,
                    format!(
                        "generalisation cycle involving class `{}`",
                        model.class(id).name()
                    ),
                ));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConnectorEnd;
    use crate::statemachine::{StateMachine, Trigger};

    #[test]
    fn clean_model_has_no_violations() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let worker = m.add_class("Worker");
        let part = m.add_part(top, "w", worker);
        let sig = m.add_signal("S");
        let pin = m.add_port(worker, "in");
        let pout = m.add_port(top, "out");
        m.port_mut(pin).add_provided(sig);
        m.port_mut(pout).add_required(sig);
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: None,
                port: pout,
            },
            ConnectorEnd {
                part: Some(part),
                port: pin,
            },
        );
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S0");
        sm.set_initial(s);
        sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
        m.add_state_machine(worker, sm);
        let bag = check_model(&m);
        assert!(bag.is_empty(), "{bag}");
    }

    #[test]
    fn duplicate_names_reported() {
        let mut m = Model::new("M");
        m.add_class("Same");
        m.add_class("Same");
        m.add_signal("S");
        m.add_signal("S");
        let bag = check_model(&m);
        assert_eq!(bag.len(), 2);
        let codes: Vec<_> = bag.iter().map(|d| d.code).collect();
        assert_eq!(codes, [E_DUP_CLASS, E_DUP_SIGNAL]);
        assert!(bag.iter().all(|d| d.element.is_some()));
    }

    #[test]
    fn incompatible_connector_reported() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let a = m.add_class("A");
        let b = m.add_class("B");
        let pa = m.add_part(top, "a", a);
        let pb = m.add_part(top, "b", b);
        let sig = m.add_signal("S");
        let out = m.add_port(a, "out");
        let inp = m.add_port(b, "in");
        m.port_mut(out).add_required(sig);
        // `in` does not provide S.
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: Some(pa),
                port: out,
            },
            ConnectorEnd {
                part: Some(pb),
                port: inp,
            },
        );
        let bag = check_model(&m);
        assert!(bag.iter().any(|d| d.code == E_CONNECTOR_NO_SIGNAL), "{bag}");

        // Providing the signal fixes it.
        m.port_mut(inp).add_provided(sig);
        assert!(check_model(&m).is_empty());
    }

    #[test]
    fn connector_port_on_wrong_class_reported() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let a = m.add_class("A");
        let part = m.add_part(top, "a", a);
        let stray = m.add_class("Stray");
        let stray_port = m.add_port(stray, "p");
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: Some(part),
                port: stray_port,
            },
            ConnectorEnd {
                part: Some(part),
                port: stray_port,
            },
        );
        let bag = check_model(&m);
        assert!(bag.iter().any(|d| d.code == E_CONNECTOR_BAD_PORT), "{bag}");
    }

    #[test]
    fn composition_cycle_reported() {
        let mut m = Model::new("M");
        let a = m.add_class("A");
        let b = m.add_class("B");
        m.add_part(a, "b", b);
        m.add_part(b, "a", a);
        let bag = check_model(&m);
        assert!(bag.iter().any(|d| d.code == E_COMPOSITION_CYCLE), "{bag}");
    }

    #[test]
    fn behaviour_consuming_unprovided_signal_reported() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        let sig = m.add_signal("S");
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S0");
        sm.set_initial(s);
        sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
        m.add_state_machine(c, sm);
        let bag = check_model(&m);
        assert!(bag.iter().any(|d| d.code == E_UNPROVIDED_TRIGGER), "{bag}");
    }

    #[test]
    fn generalisation_cycle_reported() {
        let mut m = Model::new("M");
        let a = m.add_class("A");
        let b = m.add_class("B");
        m.class_mut(a).set_general(Some(b));
        m.class_mut(b).set_general(Some(a));
        let bag = check_model(&m);
        assert!(
            bag.iter().any(|d| d.code == E_GENERALISATION_CYCLE),
            "{bag}"
        );
    }

    #[test]
    fn active_class_without_behaviour_reported() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        m.class_mut(c).set_active(true);
        let bag = check_model(&m);
        assert!(bag.iter().any(|d| d.code == E_ACTIVE_NO_BEHAVIOUR), "{bag}");
    }

    #[test]
    fn action_type_errors_surface_with_class_attribution() {
        use crate::action::{Expr, Statement, E_UNBOUND_VAR};
        let mut m = Model::new("M");
        let c = m.add_class("C");
        let mut sm = StateMachine::new("B");
        let s = sm.add_state("S0");
        sm.set_initial(s);
        sm.add_transition(
            s,
            s,
            Trigger::Completion,
            None,
            vec![Statement::Assign {
                var: "x".into(),
                expr: Expr::var("ghost"),
            }],
        );
        m.add_state_machine(c, sm);
        let bag = check_model(&m);
        let finding = bag
            .iter()
            .find(|d| d.code == E_UNBOUND_VAR)
            .unwrap_or_else(|| panic!("no unbound-var finding in {bag}"));
        assert_eq!(
            finding.element.as_deref(),
            Some(ElementRef::from(c).to_string().as_str())
        );
    }
}
