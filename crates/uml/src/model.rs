//! The UML model arena: packages, classes, parts, ports, connectors,
//! signals, and dependencies.
//!
//! A [`Model`] owns every element in flat vectors and hands out typed ids
//! ([`crate::ids`]). Elements never hold references to each other — only
//! ids — so the whole model is a plain value: `Clone`, `Send`, `Sync`, and
//! serialisable.

use std::fmt;

use crate::ids::{
    ClassId, ConnectorId, DependencyId, ElementRef, PackageId, PortId, PropertyId, SignalId,
    StateMachineId,
};
use crate::statemachine::StateMachine;
use crate::value::DataType;

/// A UML package: a namespace for classes.
#[derive(Clone, PartialEq, Debug)]
pub struct Package {
    name: String,
    parent: Option<PackageId>,
}

impl Package {
    /// The package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning package, if nested.
    pub fn parent(&self) -> Option<PackageId> {
        self.parent
    }
}

/// A typed attribute of a class (becomes a process-local variable for
/// active classes).
#[derive(Clone, PartialEq, Debug)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute data type.
    pub data_type: DataType,
}

/// A UML class.
///
/// Active classes ("functional components" in the paper) carry behaviour
/// via a [`StateMachine`]; passive classes ("structural components") only
/// have composite structure.
#[derive(Clone, PartialEq, Debug)]
pub struct Class {
    name: String,
    package: Option<PackageId>,
    is_active: bool,
    attributes: Vec<Attribute>,
    parts: Vec<PropertyId>,
    ports: Vec<PortId>,
    behavior: Option<StateMachineId>,
    general: Option<ClassId>,
}

impl Class {
    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning package, if any.
    pub fn package(&self) -> Option<PackageId> {
        self.package
    }

    /// Whether the class is active (has its own thread of control).
    pub fn is_active(&self) -> bool {
        self.is_active
    }

    /// Marks the class active or passive.
    pub fn set_active(&mut self, active: bool) {
        self.is_active = active;
    }

    /// The class attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Adds an attribute.
    pub fn add_attribute(&mut self, name: impl Into<String>, data_type: DataType) {
        self.attributes.push(Attribute {
            name: name.into(),
            data_type,
        });
    }

    /// The composite-structure parts owned by this class.
    pub fn parts(&self) -> &[PropertyId] {
        &self.parts
    }

    /// The ports on this class.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// The classifier behaviour (state machine), if the class is active.
    pub fn behavior(&self) -> Option<StateMachineId> {
        self.behavior
    }

    /// The generalisation (superclass), if any. Used for stereotype
    /// specialisation at the model level.
    pub fn general(&self) -> Option<ClassId> {
        self.general
    }

    /// Sets the superclass.
    pub fn set_general(&mut self, general: Option<ClassId>) {
        self.general = general;
    }
}

/// A property: a composite-structure part (a class instance playing a role
/// inside another class, e.g. `mng : Management` in Figure 5).
#[derive(Clone, PartialEq, Debug)]
pub struct Property {
    name: String,
    owner: ClassId,
    type_: ClassId,
    multiplicity: u32,
}

impl Property {
    /// The role name of the part.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class whose composite structure contains this part.
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// The class this part is an instance of.
    pub fn type_(&self) -> ClassId {
        self.type_
    }

    /// The multiplicity (number of instances; 1 for scalar parts).
    pub fn multiplicity(&self) -> u32 {
        self.multiplicity
    }
}

/// A port: an interaction point on a class through which signals flow.
#[derive(Clone, PartialEq, Debug)]
pub struct Port {
    name: String,
    owner: ClassId,
    provided: Vec<SignalId>,
    required: Vec<SignalId>,
}

impl Port {
    /// The port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class the port sits on.
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// Signals this port can receive.
    pub fn provided(&self) -> &[SignalId] {
        &self.provided
    }

    /// Signals this port can emit.
    pub fn required(&self) -> &[SignalId] {
        &self.required
    }

    /// Declares that the port can receive `signal`.
    pub fn add_provided(&mut self, signal: SignalId) {
        if !self.provided.contains(&signal) {
            self.provided.push(signal);
        }
    }

    /// Declares that the port can emit `signal`.
    pub fn add_required(&mut self, signal: SignalId) {
        if !self.required.contains(&signal) {
            self.required.push(signal);
        }
    }
}

/// One end of a connector: a port, optionally qualified by the part it
/// belongs to. `part == None` means the port sits on the boundary of the
/// class that owns the connector (a delegation connector end).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConnectorEnd {
    /// The part whose port is connected, or `None` for the owning class's
    /// own boundary port.
    pub part: Option<PropertyId>,
    /// The connected port.
    pub port: PortId,
}

/// A connector between two ports in a composite structure.
#[derive(Clone, PartialEq, Debug)]
pub struct Connector {
    name: String,
    owner: ClassId,
    ends: [ConnectorEnd; 2],
}

impl Connector {
    /// The connector name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class whose composite structure owns this connector.
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// Both connector ends.
    pub fn ends(&self) -> [ConnectorEnd; 2] {
        self.ends
    }
}

/// A parameter of a signal.
#[derive(Clone, PartialEq, Debug)]
pub struct SignalParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub data_type: DataType,
}

/// A signal type: an asynchronous message with typed parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct Signal {
    name: String,
    params: Vec<SignalParam>,
}

impl Signal {
    /// The signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal parameters, in declaration order.
    pub fn params(&self) -> &[SignalParam] {
        &self.params
    }

    /// Appends a parameter.
    pub fn add_param(&mut self, name: impl Into<String>, data_type: DataType) {
        self.params.push(SignalParam {
            name: name.into(),
            data_type,
        });
    }
}

/// A UML dependency between two elements. TUT-Profile stereotypes
/// dependencies to express process grouping (`«ProcessGrouping»`) and
/// platform mapping (`«PlatformMapping»`).
#[derive(Clone, PartialEq, Debug)]
pub struct Dependency {
    name: String,
    client: ElementRef,
    supplier: ElementRef,
}

impl Dependency {
    /// The dependency name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dependent element (arrow tail).
    pub fn client(&self) -> ElementRef {
        self.client
    }

    /// The element depended upon (arrow head).
    pub fn supplier(&self) -> ElementRef {
        self.supplier
    }
}

/// A complete UML model: the arena of all elements.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Model {
    name: String,
    packages: Vec<Package>,
    classes: Vec<Class>,
    properties: Vec<Property>,
    ports: Vec<Port>,
    connectors: Vec<Connector>,
    signals: Vec<Signal>,
    dependencies: Vec<Dependency>,
    state_machines: Vec<StateMachine>,
}

macro_rules! accessors {
    ($get:ident, $get_mut:ident, $iter:ident, $field:ident, $ty:ty, $id:ty, $kind:literal) => {
        /// Returns the element for `id`.
        ///
        /// # Panics
        ///
        /// Panics if `id` does not belong to this model.
        pub fn $get(&self, id: $id) -> &$ty {
            &self.$field[id.index()]
        }

        /// Returns the element for `id`, mutably.
        ///
        /// # Panics
        ///
        /// Panics if `id` does not belong to this model.
        pub fn $get_mut(&mut self, id: $id) -> &mut $ty {
            &mut self.$field[id.index()]
        }

        /// Iterates over all elements of this kind with their ids.
        pub fn $iter(&self) -> impl Iterator<Item = ($id, &$ty)> + '_ {
            self.$field
                .iter()
                .enumerate()
                .map(|(i, e)| (<$id>::from_index(i), e))
        }
    };
}

impl Model {
    /// Creates an empty model with the given name.
    pub fn new(name: impl Into<String>) -> Model {
        Model {
            name: name.into(),
            ..Model::default()
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    accessors!(
        package,
        package_mut,
        packages,
        packages,
        Package,
        PackageId,
        "package"
    );
    accessors!(class, class_mut, classes, classes, Class, ClassId, "class");
    accessors!(
        property,
        property_mut,
        properties,
        properties,
        Property,
        PropertyId,
        "property"
    );
    accessors!(port, port_mut, ports, ports, Port, PortId, "port");
    accessors!(
        connector,
        connector_mut,
        connectors,
        connectors,
        Connector,
        ConnectorId,
        "connector"
    );
    accessors!(signal, signal_mut, signals, signals, Signal, SignalId, "signal");
    accessors!(
        dependency,
        dependency_mut,
        dependencies,
        dependencies,
        Dependency,
        DependencyId,
        "dependency"
    );
    accessors!(
        state_machine,
        state_machine_mut,
        state_machines,
        state_machines,
        StateMachine,
        StateMachineId,
        "state machine"
    );

    /// Adds a top-level package.
    pub fn add_package(&mut self, name: impl Into<String>) -> PackageId {
        self.add_package_in(None, name)
    }

    /// Adds a package nested under `parent`.
    pub fn add_package_in(
        &mut self,
        parent: Option<PackageId>,
        name: impl Into<String>,
    ) -> PackageId {
        let id = PackageId::from_index(self.packages.len());
        self.packages.push(Package {
            name: name.into(),
            parent,
        });
        id
    }

    /// Adds a class outside any package.
    pub fn add_class(&mut self, name: impl Into<String>) -> ClassId {
        self.add_class_in(None, name)
    }

    /// Adds a class inside `package`.
    pub fn add_class_in(&mut self, package: Option<PackageId>, name: impl Into<String>) -> ClassId {
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(Class {
            name: name.into(),
            package,
            is_active: false,
            attributes: Vec::new(),
            parts: Vec::new(),
            ports: Vec::new(),
            behavior: None,
            general: None,
        });
        id
    }

    /// Adds a composite-structure part named `name` of type `type_` inside
    /// `owner`.
    pub fn add_part(
        &mut self,
        owner: ClassId,
        name: impl Into<String>,
        type_: ClassId,
    ) -> PropertyId {
        let id = PropertyId::from_index(self.properties.len());
        self.properties.push(Property {
            name: name.into(),
            owner,
            type_,
            multiplicity: 1,
        });
        self.classes[owner.index()].parts.push(id);
        id
    }

    /// Adds a port named `name` on `owner`.
    pub fn add_port(&mut self, owner: ClassId, name: impl Into<String>) -> PortId {
        let id = PortId::from_index(self.ports.len());
        self.ports.push(Port {
            name: name.into(),
            owner,
            provided: Vec::new(),
            required: Vec::new(),
        });
        self.classes[owner.index()].ports.push(id);
        id
    }

    /// Adds a connector inside the composite structure of `owner`.
    pub fn add_connector(
        &mut self,
        owner: ClassId,
        name: impl Into<String>,
        a: ConnectorEnd,
        b: ConnectorEnd,
    ) -> ConnectorId {
        let id = ConnectorId::from_index(self.connectors.len());
        self.connectors.push(Connector {
            name: name.into(),
            owner,
            ends: [a, b],
        });
        id
    }

    /// Adds a signal type.
    pub fn add_signal(&mut self, name: impl Into<String>) -> SignalId {
        let id = SignalId::from_index(self.signals.len());
        self.signals.push(Signal {
            name: name.into(),
            params: Vec::new(),
        });
        id
    }

    /// Adds a dependency from `client` to `supplier`.
    pub fn add_dependency(
        &mut self,
        name: impl Into<String>,
        client: impl Into<ElementRef>,
        supplier: impl Into<ElementRef>,
    ) -> DependencyId {
        let id = DependencyId::from_index(self.dependencies.len());
        self.dependencies.push(Dependency {
            name: name.into(),
            client: client.into(),
            supplier: supplier.into(),
        });
        id
    }

    /// Adds a state machine as the classifier behaviour of `owner`, marking
    /// the class active.
    pub fn add_state_machine(&mut self, owner: ClassId, sm: StateMachine) -> StateMachineId {
        let id = StateMachineId::from_index(self.state_machines.len());
        self.state_machines.push(sm);
        let class = &mut self.classes[owner.index()];
        class.behavior = Some(id);
        class.is_active = true;
        id
    }

    /// Finds a class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.classes()
            .find(|(_, c)| c.name() == name)
            .map(|(id, _)| id)
    }

    /// Finds a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals()
            .find(|(_, s)| s.name() == name)
            .map(|(id, _)| id)
    }

    /// Finds a part of `owner` by role name.
    pub fn find_part(&self, owner: ClassId, name: &str) -> Option<PropertyId> {
        self.class(owner)
            .parts()
            .iter()
            .copied()
            .find(|&p| self.property(p).name() == name)
    }

    /// Finds a port of `owner` by name.
    pub fn find_port(&self, owner: ClassId, name: &str) -> Option<PortId> {
        self.class(owner)
            .ports()
            .iter()
            .copied()
            .find(|&p| self.port(p).name() == name)
    }

    /// Finds a package by name.
    pub fn find_package(&self, name: &str) -> Option<PackageId> {
        self.packages()
            .find(|(_, p)| p.name() == name)
            .map(|(id, _)| id)
    }

    /// The connectors owned by the composite structure of `owner`.
    pub fn connectors_of(&self, owner: ClassId) -> impl Iterator<Item = (ConnectorId, &Connector)> {
        self.connectors().filter(move |(_, c)| c.owner() == owner)
    }

    /// The fully qualified name of a class (`Package::Class`).
    pub fn qualified_class_name(&self, id: ClassId) -> String {
        let class = self.class(id);
        let mut segments = vec![class.name().to_owned()];
        let mut pkg = class.package();
        while let Some(p) = pkg {
            let package = self.package(p);
            segments.push(package.name().to_owned());
            pkg = package.parent();
        }
        segments.reverse();
        segments.join("::")
    }

    /// Human-readable display name for any element reference.
    pub fn display_name(&self, element: ElementRef) -> String {
        match element {
            ElementRef::Class(id) => self.class(id).name().to_owned(),
            ElementRef::Property(id) => {
                let p = self.property(id);
                format!("{}:{}", p.name(), self.class(p.type_()).name())
            }
            ElementRef::Port(id) => self.port(id).name().to_owned(),
            ElementRef::Connector(id) => self.connector(id).name().to_owned(),
            ElementRef::Dependency(id) => {
                let d = self.dependency(id);
                if d.name().is_empty() {
                    format!("dep({} -> {})", d.client(), d.supplier())
                } else {
                    d.name().to_owned()
                }
            }
            ElementRef::Signal(id) => self.signal(id).name().to_owned(),
            ElementRef::Package(id) => self.package(id).name().to_owned(),
        }
    }

    /// Total number of elements of all kinds (model size metric used by the
    /// parsing benchmarks).
    pub fn element_count(&self) -> usize {
        self.packages.len()
            + self.classes.len()
            + self.properties.len()
            + self.ports.len()
            + self.connectors.len()
            + self.signals.len()
            + self.dependencies.len()
            + self.state_machines.len()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model `{}` ({} classes, {} parts, {} ports, {} connectors, {} signals, {} dependencies, {} state machines)",
            self.name,
            self.classes.len(),
            self.properties.len(),
            self.ports.len(),
            self.connectors.len(),
            self.signals.len(),
            self.dependencies.len(),
            self.state_machines.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_composite_structure() {
        let mut m = Model::new("M");
        let pkg = m.add_package("App");
        let top = m.add_class_in(Some(pkg), "Top");
        let worker = m.add_class_in(Some(pkg), "Worker");
        let part_a = m.add_part(top, "a", worker);
        let part_b = m.add_part(top, "b", worker);
        let out = m.add_port(worker, "out");
        let inp = m.add_port(worker, "in");
        let sig = m.add_signal("Data");
        m.signal_mut(sig).add_param("payload", DataType::Bytes);
        m.port_mut(out).add_required(sig);
        m.port_mut(inp).add_provided(sig);
        let conn = m.add_connector(
            top,
            "a2b",
            ConnectorEnd {
                part: Some(part_a),
                port: out,
            },
            ConnectorEnd {
                part: Some(part_b),
                port: inp,
            },
        );

        assert_eq!(m.class(top).parts().len(), 2);
        assert_eq!(m.property(part_a).type_(), worker);
        assert_eq!(m.connector(conn).ends()[0].part, Some(part_a));
        assert_eq!(m.connectors_of(top).count(), 1);
        assert_eq!(m.qualified_class_name(top), "App::Top");
        assert_eq!(m.element_count(), 9);
    }

    #[test]
    fn lookups_by_name() {
        let mut m = Model::new("M");
        let c = m.add_class("Alpha");
        let p = m.add_port(c, "north");
        assert_eq!(m.find_class("Alpha"), Some(c));
        assert_eq!(m.find_class("Beta"), None);
        assert_eq!(m.find_port(c, "north"), Some(p));
        assert_eq!(m.find_port(c, "south"), None);
    }

    #[test]
    fn dependencies_between_parts() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        let g = m.add_class("G");
        let part = m.add_part(c, "x", c);
        let dep = m.add_dependency("grouping", part, g);
        assert_eq!(m.dependency(dep).client(), ElementRef::Property(part));
        assert_eq!(m.dependency(dep).supplier(), ElementRef::Class(g));
        assert!(m
            .display_name(ElementRef::Dependency(dep))
            .contains("grouping"));
    }

    #[test]
    fn nested_packages_qualify_names() {
        let mut m = Model::new("M");
        let outer = m.add_package("Outer");
        let inner = m.add_package_in(Some(outer), "Inner");
        let c = m.add_class_in(Some(inner), "Leaf");
        assert_eq!(m.qualified_class_name(c), "Outer::Inner::Leaf");
    }

    #[test]
    fn ports_dedupe_signal_lists() {
        let mut m = Model::new("M");
        let c = m.add_class("C");
        let p = m.add_port(c, "p");
        let s = m.add_signal("S");
        m.port_mut(p).add_provided(s);
        m.port_mut(p).add_provided(s);
        assert_eq!(m.port(p).provided().len(), 1);
    }

    #[test]
    fn model_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<Model>();
    }

    #[test]
    fn display_summarises_counts() {
        let mut m = Model::new("X");
        m.add_class("A");
        let text = m.to_string();
        assert!(text.contains("model `X`"));
        assert!(text.contains("1 classes"));
    }
}
