//! Deterministic diagram renderings.
//!
//! The paper presents its models as UML diagrams (Figures 4–8). This module
//! regenerates the same information as plain text and as Graphviz DOT:
//!
//! * [`class_diagram`] — the class hierarchy with composition associations
//!   (Figure 4).
//! * [`composite_structure_diagram`] — parts, ports, and connectors of one
//!   class (Figure 5).
//!
//! Renderings are deterministic (arena order) so they can be asserted on in
//! tests and diffed across runs. Stereotype annotations are supplied by the
//! caller through a labelling closure, keeping this crate independent of
//! the profile layer.

use std::fmt::Write as _;

use crate::ids::{ClassId, ElementRef};
use crate::model::Model;

/// Options for diagram rendering.
pub struct DiagramOptions<'a> {
    /// Returns the guillemet label (e.g. `«ApplicationComponent»`) for an
    /// element, or `None` for unstereotyped elements.
    pub stereotype_label: Box<dyn Fn(ElementRef) -> Option<String> + 'a>,
}

impl Default for DiagramOptions<'_> {
    fn default() -> Self {
        DiagramOptions {
            stereotype_label: Box::new(|_| None),
        }
    }
}

impl std::fmt::Debug for DiagramOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiagramOptions").finish_non_exhaustive()
    }
}

impl<'a> DiagramOptions<'a> {
    /// Creates options that label elements with the given closure.
    pub fn with_labels(label: impl Fn(ElementRef) -> Option<String> + 'a) -> Self {
        DiagramOptions {
            stereotype_label: Box::new(label),
        }
    }

    fn label(&self, element: impl Into<ElementRef>) -> String {
        match (self.stereotype_label)(element.into()) {
            Some(s) => format!("\u{ab}{s}\u{bb} "),
            None => String::new(),
        }
    }
}

/// Renders a textual class diagram rooted at `root`: the class, its parts'
/// types (composition), and recursively their structures.
pub fn class_diagram(model: &Model, root: ClassId, options: &DiagramOptions<'_>) -> String {
    let mut out = String::new();
    let mut visited = vec![false; model.classes().count()];
    render_class(model, root, options, 0, &mut out, &mut visited);
    out
}

fn render_class(
    model: &Model,
    class_id: ClassId,
    options: &DiagramOptions<'_>,
    depth: usize,
    out: &mut String,
    visited: &mut [bool],
) {
    let class = model.class(class_id);
    let indent = "  ".repeat(depth);
    let kind = if class.is_active() {
        "active"
    } else {
        "passive"
    };
    let _ = writeln!(
        out,
        "{indent}{}class {} ({kind})",
        options.label(class_id),
        model.qualified_class_name(class_id),
    );
    if std::mem::replace(&mut visited[class_id.index()], true) {
        return;
    }
    for &part in class.parts() {
        let p = model.property(part);
        let _ = writeln!(
            out,
            "{indent}  {}part {} : {}",
            options.label(part),
            p.name(),
            model.class(p.type_()).name()
        );
        render_class(model, p.type_(), options, depth + 2, out, visited);
    }
}

/// Renders the composite-structure diagram of `owner` as text: each part
/// with its ports, then each connector with both ends and the signals it
/// carries.
pub fn composite_structure_diagram(
    model: &Model,
    owner: ClassId,
    options: &DiagramOptions<'_>,
) -> String {
    let mut out = String::new();
    let class = model.class(owner);
    let _ = writeln!(
        out,
        "composite structure of {}{}",
        options.label(owner),
        class.name()
    );
    for &port in class.ports() {
        let _ = writeln!(out, "  boundary port {}", model.port(port).name());
    }
    for &part in class.parts() {
        let p = model.property(part);
        let part_class = model.class(p.type_());
        let _ = writeln!(
            out,
            "  {}part {} : {}",
            options.label(part),
            p.name(),
            part_class.name()
        );
        for &port in part_class.ports() {
            let _ = writeln!(out, "    port {}", model.port(port).name());
        }
    }
    for (_, conn) in model.connectors_of(owner) {
        let [a, b] = conn.ends();
        let fmt_end = |end: crate::model::ConnectorEnd| match end.part {
            Some(part) => format!(
                "{}.{}",
                model.property(part).name(),
                model.port(end.port).name()
            ),
            None => format!("self.{}", model.port(end.port).name()),
        };
        let mut signals: Vec<&str> = Vec::new();
        for end in [a, b] {
            for &sig in model.port(end.port).required() {
                let name = model.signal(sig).name();
                if !signals.contains(&name) {
                    signals.push(name);
                }
            }
        }
        let _ = writeln!(
            out,
            "  connector {}: {} <-> {} [{}]",
            conn.name(),
            fmt_end(a),
            fmt_end(b),
            signals.join(", ")
        );
    }
    out
}

/// Renders the composite structure of `owner` as Graphviz DOT (one node per
/// part, one edge per connector).
pub fn composite_structure_dot(
    model: &Model,
    owner: ClassId,
    options: &DiagramOptions<'_>,
) -> String {
    let mut out = String::new();
    let class = model.class(owner);
    let _ = writeln!(out, "digraph \"{}\" {{", class.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for &part in class.parts() {
        let p = model.property(part);
        let label = options.label(part);
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}{} : {}\"];",
            p.name(),
            label.replace('"', "'"),
            p.name(),
            model.class(p.type_()).name()
        );
    }
    for (_, conn) in model.connectors_of(owner) {
        let [a, b] = conn.ends();
        let end_name = |end: crate::model::ConnectorEnd| match end.part {
            Some(part) => model.property(part).name().to_owned(),
            None => class.name().to_owned(),
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [dir=both, label=\"{}\"];",
            end_name(a),
            end_name(b),
            conn.name()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConnectorEnd;

    fn sample() -> (Model, ClassId) {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let worker = m.add_class("Worker");
        let part_a = m.add_part(top, "a", worker);
        let part_b = m.add_part(top, "b", worker);
        let sig = m.add_signal("Data");
        let pout = m.add_port(worker, "out");
        let pin = m.add_port(worker, "in");
        m.port_mut(pout).add_required(sig);
        m.port_mut(pin).add_provided(sig);
        m.add_connector(
            top,
            "a2b",
            ConnectorEnd {
                part: Some(part_a),
                port: pout,
            },
            ConnectorEnd {
                part: Some(part_b),
                port: pin,
            },
        );
        (m, top)
    }

    #[test]
    fn class_diagram_lists_parts() {
        let (m, top) = sample();
        let text = class_diagram(&m, top, &DiagramOptions::default());
        assert!(text.contains("class Top"));
        assert!(text.contains("part a : Worker"));
        assert!(text.contains("part b : Worker"));
        // Worker structure is rendered only once despite two parts.
        assert_eq!(text.matches("class Worker").count(), 2); // header per part
    }

    #[test]
    fn composite_structure_lists_connectors_and_signals() {
        let (m, top) = sample();
        let text = composite_structure_diagram(&m, top, &DiagramOptions::default());
        assert!(text.contains("connector a2b: a.out <-> b.in [Data]"));
        assert!(text.contains("part a : Worker"));
    }

    #[test]
    fn stereotype_labels_appear() {
        let (m, top) = sample();
        let options = DiagramOptions::with_labels(|e| match e {
            ElementRef::Class(_) => Some("Application".to_owned()),
            _ => None,
        });
        let text = class_diagram(&m, top, &options);
        assert!(text.contains("\u{ab}Application\u{bb} class Top"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (m, top) = sample();
        let dot = composite_structure_dot(&m, top, &DiagramOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn delegation_connector_renders_self_end() {
        let mut m = Model::new("M");
        let top = m.add_class("Top");
        let inner = m.add_class("Inner");
        let part = m.add_part(top, "i", inner);
        let boundary = m.add_port(top, "p");
        let inner_port = m.add_port(inner, "q");
        m.add_connector(
            top,
            "deleg",
            ConnectorEnd {
                part: None,
                port: boundary,
            },
            ConnectorEnd {
                part: Some(part),
                port: inner_port,
            },
        );
        let text = composite_structure_diagram(&m, top, &DiagramOptions::default());
        assert!(text.contains("self.p <-> i.q"));
    }
}
