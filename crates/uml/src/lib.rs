//! A from-scratch UML 2.0 metamodel subset for embedded-system design.
//!
//! This crate is the modelling substrate of the TUT-Profile reproduction
//! (Kukkala et al., *UML 2.0 Profile for Embedded System Design*, DATE 2005).
//! It implements the parts of UML 2.0 the paper relies on:
//!
//! * **Kernel** — packages, classes, properties (parts), ports, connectors,
//!   signals, dependencies ([`model::Model`] and friends).
//! * **Composite structures** — parts typed by classes, ports on classes and
//!   parts, connectors between part/port pairs (Figure 5 of the paper).
//! * **Behaviour** — statecharts as asynchronous communicating Extended
//!   Finite State Machines ([`statemachine::StateMachine`]) with a small
//!   action language ([`action`]) used both by the simulator and the C code
//!   generator.
//! * **Interchange** — an XMI-flavoured XML serialisation ([`xmi`]) on top of
//!   a tiny self-contained XML reader/writer ([`xml`]).
//! * **Diagrams** — deterministic text and Graphviz renderings of class and
//!   composite-structure diagrams ([`diagram`]), used to regenerate the
//!   paper's figures.
//!
//! The model is stored in a flat arena keyed by typed ids (see [`ids`]), so a
//! [`model::Model`] is `Clone + Send + Sync`, cheap to snapshot, and easy to
//! serialise — there are no `Rc` cycles.
//!
//! # Example
//!
//! ```
//! use tut_uml::model::Model;
//!
//! let mut model = Model::new("Tiny");
//! let sig = model.add_signal("Ping");
//! let class = model.add_class("Echo");
//! model.class_mut(class).set_active(true);
//! let port = model.add_port(class, "pIn");
//! model.port_mut(port).add_provided(sig);
//! assert_eq!(model.class(class).name(), "Echo");
//! assert!(model.class(class).is_active());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod diagram;
pub mod error;
pub mod ids;
pub mod instances;
pub mod model;
pub mod outline;
pub mod statemachine;
pub mod textual;
pub mod validate;
pub mod value;
pub mod xmi;
pub mod xml;

pub use error::{Error, Result};
pub use ids::{
    ClassId, ConnectorId, DependencyId, PackageId, PortId, PropertyId, SignalId, StateId,
    StateMachineId, TransitionId,
};
pub use model::Model;
pub use value::{DataType, Value};
