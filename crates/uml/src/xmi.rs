//! XMI-flavoured XML interchange for [`Model`]s.
//!
//! [`to_xml`] serialises a model to an XML document; [`from_xml`] parses it
//! back. The round trip is exact: `from_xml(&to_xml(&m)) == m` (checked by
//! property tests in the crate's test suite). The profiling tool in
//! `tut-profiling` consumes this format, mirroring the paper's flow where
//! the TCL scripts parse the XML dump of the TAU model (§4.4).
//!
//! The format follows XMI conventions loosely (`xmi:XMI` root,
//! `packagedElement` with `xmi:type`) but is self-describing rather than
//! schema-exact — the paper's tooling was equally tool-specific.
//!
//! # Textual action attributes
//!
//! The writer serialises statements and expressions structurally, but the
//! reader additionally accepts the designer-facing textual notation inline:
//! an `<entry>`, `<actions>`, or `<guard>` element may carry a `text`
//! attribute holding [`crate::textual`] source instead of structural
//! children. [`read_model`] parses such attributes with statement-level
//! error recovery and maps the resulting diagnostics' spans back into the
//! enclosing document, so a syntax error inside an action string is
//! reported at its real line and column in the `.xml` file. (Offsets drift
//! after an XML entity reference inside the attribute, since spans index
//! the unescaped text; plain action source needs none.)

use std::collections::HashMap;

use tut_diag::{Diagnostic, DiagnosticBag, Span};

use crate::action::{BinOp, Builtin, CostClass, Expr, Statement, UnaryOp};
use crate::error::{Error, Result};
use crate::ids::{ClassId, ElementRef, PackageId, PortId, PropertyId, SignalId, StateId};
use crate::model::{ConnectorEnd, Model};
use crate::statemachine::{StateMachine, Trigger};
use crate::textual;
use crate::value::{DataType, Value};
use crate::xml::XmlNode;

/// XMI structure error code (lenient reading surfaces these as
/// diagnostics through the check driver).
pub const E_XMI_STRUCTURE: &str = "E0102";

/// Serialises a model to an XML string.
pub fn to_xml(model: &Model) -> String {
    to_xml_node(model).to_xml_string()
}

/// Parses a model from an XML string produced by [`to_xml`].
///
/// # Errors
///
/// Returns [`Error::XmlSyntax`] on malformed XML and
/// [`Error::XmiStructure`] when the XML does not describe a valid model.
pub fn from_xml(text: &str) -> Result<Model> {
    from_xml_node(&XmlNode::parse(text)?)
}

/// Maps element display forms (e.g. `"class3"`, `"port0"`) to the span of
/// the XML start tag that declared them.
///
/// Model-level diagnostics carry only an element attribution (the display
/// form); a driver that read the model from a document uses this index to
/// attach real source locations to them.
#[derive(Clone, Debug, Default)]
pub struct SpanIndex {
    entries: HashMap<String, Span>,
}

impl SpanIndex {
    /// The declaration span of an element, by display form.
    pub fn get(&self, element: &str) -> Option<Span> {
        self.entries
            .get(element)
            .copied()
            .filter(|s| *s != Span::NONE)
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records (or replaces) the declaration span of an element. The
    /// incremental front end uses this to rebuild the index from an
    /// outline scan without re-parsing the whole document.
    pub fn insert(&mut self, element: impl Into<String>, span: Span) {
        self.entries.insert(element.into(), span);
    }
}

/// Serialises a model to an [`XmlNode`] tree.
pub fn to_xml_node(model: &Model) -> XmlNode {
    let mut root = XmlNode::new("xmi:XMI");
    root.set_attr("xmlns:xmi", "http://schema.omg.org/spec/XMI/2.1");
    root.set_attr("xmlns:uml", "http://schema.omg.org/spec/UML/2.0");
    let doc = root.add_child(XmlNode::new("uml:Model"));
    doc.set_attr("name", model.name());

    for (id, pkg) in model.packages() {
        let node = doc.add_child(packaged("uml:Package", &id.to_string(), pkg.name()));
        if let Some(parent) = pkg.parent() {
            node.set_attr("parent", parent.to_string());
        }
    }
    for (id, sig) in model.signals() {
        let node = doc.add_child(packaged("uml:Signal", &id.to_string(), sig.name()));
        for param in sig.params() {
            let p = node.add_child(XmlNode::new("ownedParameter"));
            p.set_attr("name", &param.name);
            p.set_attr("type", param.data_type.name());
        }
    }
    for (id, class) in model.classes() {
        let node = doc.add_child(packaged("uml:Class", &id.to_string(), class.name()));
        node.set_attr("isActive", bool_str(class.is_active()));
        if let Some(pkg) = class.package() {
            node.set_attr("package", pkg.to_string());
        }
        if let Some(general) = class.general() {
            node.set_attr("general", general.to_string());
        }
        if let Some(behavior) = class.behavior() {
            node.set_attr("classifierBehavior", behavior.to_string());
        }
        for attr in class.attributes() {
            let a = node.add_child(XmlNode::new("ownedAttribute"));
            a.set_attr("name", &attr.name);
            a.set_attr("type", attr.data_type.name());
        }
    }
    for (id, prop) in model.properties() {
        let node = doc.add_child(packaged("uml:Property", &id.to_string(), prop.name()));
        node.set_attr("owner", prop.owner().to_string());
        node.set_attr("classType", prop.type_().to_string());
        node.set_attr("multiplicity", prop.multiplicity().to_string());
    }
    for (id, port) in model.ports() {
        let node = doc.add_child(packaged("uml:Port", &id.to_string(), port.name()));
        node.set_attr("owner", port.owner().to_string());
        for sig in port.provided() {
            node.add_child(XmlNode::new("provided"))
                .set_attr("signal", sig.to_string());
        }
        for sig in port.required() {
            node.add_child(XmlNode::new("required"))
                .set_attr("signal", sig.to_string());
        }
    }
    for (id, conn) in model.connectors() {
        let node = doc.add_child(packaged("uml:Connector", &id.to_string(), conn.name()));
        node.set_attr("owner", conn.owner().to_string());
        for end in conn.ends() {
            let e = node.add_child(XmlNode::new("end"));
            if let Some(part) = end.part {
                e.set_attr("part", part.to_string());
            }
            e.set_attr("port", end.port.to_string());
        }
    }
    for (id, dep) in model.dependencies() {
        let node = doc.add_child(packaged("uml:Dependency", &id.to_string(), dep.name()));
        node.set_attr("client", element_ref_str(dep.client()));
        node.set_attr("supplier", element_ref_str(dep.supplier()));
    }
    // State machines are serialised after classes; the owning class is
    // recovered from the class's `classifierBehavior` attribute.
    for (id, sm) in model.state_machines() {
        let node = doc.add_child(packaged("uml:StateMachine", &id.to_string(), sm.name()));
        for var in sm.variables() {
            let v = node.add_child(XmlNode::new("variable"));
            v.set_attr("name", &var.name);
            v.set_attr("type", var.data_type.name());
            v.add_child(encode_value(&var.init));
        }
        for (sid, state) in sm.states() {
            let s = node.add_child(XmlNode::new("state"));
            s.set_attr("xmi:id", sid.to_string());
            s.set_attr("name", state.name());
            if !state.entry().is_empty() {
                let entry = s.add_child(XmlNode::new("entry"));
                for statement in state.entry() {
                    entry.add_child(encode_statement(statement));
                }
            }
        }
        if let Some(initial) = sm.initial() {
            node.add_child(XmlNode::new("initial"))
                .set_attr("state", initial.to_string());
        }
        for (_, t) in sm.transitions() {
            let tn = node.add_child(XmlNode::new("transition"));
            tn.set_attr("source", t.source().to_string());
            tn.set_attr("target", t.target().to_string());
            let trig = tn.add_child(XmlNode::new("trigger"));
            match t.trigger() {
                Trigger::Signal(sig) => {
                    trig.set_attr("kind", "signal");
                    trig.set_attr("signal", sig.to_string());
                }
                Trigger::Timer(name) => {
                    trig.set_attr("kind", "timer");
                    trig.set_attr("timer", name.as_str());
                }
                Trigger::Completion => {
                    trig.set_attr("kind", "completion");
                }
            }
            if let Some(guard) = t.guard() {
                tn.add_child(XmlNode::new("guard"))
                    .add_child(encode_expr(guard));
            }
            if !t.actions().is_empty() {
                let actions = tn.add_child(XmlNode::new("actions"));
                for statement in t.actions() {
                    actions.add_child(encode_statement(statement));
                }
            }
        }
    }
    root
}

/// Reconstructs a model from an [`XmlNode`] tree.
///
/// # Errors
///
/// Returns [`Error::XmiStructure`] when required elements or attributes
/// are missing or malformed.
pub fn from_xml_node(root: &XmlNode) -> Result<Model> {
    let mut bag = DiagnosticBag::new();
    let (model, _) = read_model(root, &mut bag)?;
    if let Some(first) = bag.iter().find(|d| d.is_error()) {
        return Err(Error::Action(first.to_string()));
    }
    Ok(model)
}

/// Reconstructs a model from an [`XmlNode`] tree, recovering from errors
/// in embedded textual action language.
///
/// This is the lenient counterpart of [`from_xml_node`]: `<entry>`,
/// `<actions>`, and `<guard>` elements may carry the designer-facing
/// textual notation in a `text` attribute, and parse errors inside it are
/// pushed into `bag` as spanned diagnostics (located in the enclosing
/// document) instead of aborting the read. Broken statements are dropped;
/// the surviving model is returned together with a [`SpanIndex`] mapping
/// element display forms to their declaration spans.
///
/// # Errors
///
/// Returns [`Error::XmiStructure`] when required elements or attributes
/// are missing or malformed — structural damage still fails fast because
/// nothing downstream can interpret a half-decoded element.
pub fn read_model(root: &XmlNode, bag: &mut DiagnosticBag) -> Result<(Model, SpanIndex)> {
    if root.name != "xmi:XMI" {
        return Err(Error::XmiStructure(format!(
            "expected root `xmi:XMI`, found `{}`",
            root.name
        )));
    }
    let doc = root.required_child("uml:Model")?;
    let mut model = Model::new(doc.required_attr("name")?);

    let mut index = SpanIndex::default();
    for node in doc.children_named("packagedElement") {
        if let Some(id) = node.attr("xmi:id") {
            index.entries.insert(id.to_owned(), node.span);
        }
    }

    let typed = |ty: &'static str| {
        doc.children_named("packagedElement")
            .filter(move |n| n.attr("xmi:type") == Some(ty))
    };

    for node in typed("uml:Package") {
        let parent = node
            .attr("parent")
            .map(|s| parse_id(s, "pkg").map(PackageId::from_index))
            .transpose()?;
        let id = model.add_package_in(parent, node.required_attr("name")?);
        check_id(node, &id.to_string())?;
    }
    for node in typed("uml:Signal") {
        let id = model.add_signal(node.required_attr("name")?);
        check_id(node, &id.to_string())?;
        for param in node.children_named("ownedParameter") {
            model
                .signal_mut(id)
                .add_param(param.required_attr("name")?, parse_type(param)?);
        }
    }
    // Classes: first pass creates them; `general` / `classifierBehavior`
    // may point forward so they are resolved afterwards.
    let mut class_fixups: Vec<(ClassId, Option<usize>, bool)> = Vec::new();
    for node in typed("uml:Class") {
        let package = node
            .attr("package")
            .map(|s| parse_id(s, "pkg").map(PackageId::from_index))
            .transpose()?;
        let id = model.add_class_in(package, node.required_attr("name")?);
        check_id(node, &id.to_string())?;
        for attr in node.children_named("ownedAttribute") {
            model
                .class_mut(id)
                .add_attribute(attr.required_attr("name")?, parse_type(attr)?);
        }
        let general = node
            .attr("general")
            .map(|s| parse_id(s, "class"))
            .transpose()?;
        let active = node.attr("isActive") == Some("true");
        class_fixups.push((id, general, active));
    }
    for (id, general, active) in &class_fixups {
        let class = model.class_mut(*id);
        class.set_general(general.map(ClassId::from_index));
        class.set_active(*active);
    }
    for node in typed("uml:Property") {
        let owner = ClassId::from_index(parse_id(node.required_attr("owner")?, "class")?);
        let type_ = ClassId::from_index(parse_id(node.required_attr("classType")?, "class")?);
        let id = model.add_part(owner, node.required_attr("name")?, type_);
        check_id(node, &id.to_string())?;
    }
    for node in typed("uml:Port") {
        let owner = ClassId::from_index(parse_id(node.required_attr("owner")?, "class")?);
        let id = model.add_port(owner, node.required_attr("name")?);
        check_id(node, &id.to_string())?;
        for p in node.children_named("provided") {
            let sig = SignalId::from_index(parse_id(p.required_attr("signal")?, "sig")?);
            model.port_mut(id).add_provided(sig);
        }
        for r in node.children_named("required") {
            let sig = SignalId::from_index(parse_id(r.required_attr("signal")?, "sig")?);
            model.port_mut(id).add_required(sig);
        }
    }
    for node in typed("uml:Connector") {
        let owner = ClassId::from_index(parse_id(node.required_attr("owner")?, "class")?);
        let ends: Vec<&XmlNode> = node.children_named("end").collect();
        if ends.len() != 2 {
            return Err(Error::XmiStructure(format!(
                "connector `{}` must have exactly 2 ends, found {}",
                node.attr("name").unwrap_or(""),
                ends.len()
            )));
        }
        let mut decoded = Vec::with_capacity(2);
        for end in ends {
            let part = end
                .attr("part")
                .map(|s| parse_id(s, "prop").map(PropertyId::from_index))
                .transpose()?;
            let port = PortId::from_index(parse_id(end.required_attr("port")?, "port")?);
            decoded.push(ConnectorEnd { part, port });
        }
        let id = model.add_connector(owner, node.required_attr("name")?, decoded[0], decoded[1]);
        check_id(node, &id.to_string())?;
    }
    for node in typed("uml:Dependency") {
        let client = parse_element_ref(node.required_attr("client")?)?;
        let supplier = parse_element_ref(node.required_attr("supplier")?)?;
        let id = model.add_dependency(node.attr("name").unwrap_or(""), client, supplier);
        check_id(node, &id.to_string())?;
    }
    // State machines: re-attach via the class `classifierBehavior` attr.
    let mut owners: Vec<Option<ClassId>> = Vec::new();
    for node in typed("uml:Class") {
        if let Some(sm) = node.attr("classifierBehavior") {
            let class = ClassId::from_index(parse_id(node.required_attr("xmi:id")?, "class")?);
            let index = parse_id(sm, "sm")?;
            if owners.len() <= index {
                owners.resize(index + 1, None);
            }
            owners[index] = Some(class);
        }
    }
    for (i, node) in typed("uml:StateMachine").enumerate() {
        let sm = decode_state_machine(node, &model, bag)?;
        let owner = owners.get(i).copied().flatten().ok_or_else(|| {
            Error::XmiStructure(format!("state machine `{}` has no owning class", sm.name()))
        })?;
        model.add_state_machine(owner, sm);
    }
    // add_state_machine forces is_active; restore the serialised flags so
    // the round trip is exact.
    for (id, _, active) in class_fixups {
        model.class_mut(id).set_active(active);
    }
    Ok((model, index))
}

/// Decodes the body of one `uml:StateMachine` packaged element —
/// variables, states (with entry programs), the initial-state marker,
/// and transitions. Recoverable textual-notation errors are pushed into
/// `bag` with spans in the node's coordinate system; `model` supplies
/// the signal table for the textual parser. The caller attaches the
/// returned machine to its owning class.
///
/// This is the per-element unit the incremental front end re-runs when
/// a single state machine's segment changes.
pub fn decode_state_machine(
    node: &XmlNode,
    model: &Model,
    bag: &mut DiagnosticBag,
) -> Result<StateMachine> {
    let mut sm = StateMachine::new(node.required_attr("name")?);
    for var in node.children_named("variable") {
        let value_node = var.children.first().ok_or_else(|| {
            Error::XmiStructure("state-machine variable is missing its init value".into())
        })?;
        sm.add_variable(
            var.required_attr("name")?,
            parse_type(var)?,
            decode_value(value_node)?,
        );
    }
    for state in node.children_named("state") {
        let entry = match state.child("entry") {
            Some(entry) => decode_program(entry, model, bag)?,
            None => Vec::new(),
        };
        let sid = sm.add_state_with_entry(state.required_attr("name")?, entry);
        check_id(state, &sid.to_string())?;
    }
    if let Some(initial) = node.child("initial") {
        sm.set_initial(StateId::from_index(parse_id(
            initial.required_attr("state")?,
            "state",
        )?));
    }
    for t in node.children_named("transition") {
        let source = StateId::from_index(parse_id(t.required_attr("source")?, "state")?);
        let target = StateId::from_index(parse_id(t.required_attr("target")?, "state")?);
        let trig_node = t.required_child("trigger")?;
        let trigger = match trig_node.required_attr("kind")? {
            "signal" => Trigger::Signal(SignalId::from_index(parse_id(
                trig_node.required_attr("signal")?,
                "sig",
            )?)),
            "timer" => Trigger::Timer(trig_node.required_attr("timer")?.to_owned()),
            "completion" => Trigger::Completion,
            other => {
                return Err(Error::XmiStructure(format!(
                    "unknown trigger kind `{other}`"
                )))
            }
        };
        let guard = match t.child("guard") {
            Some(g) => match g.attr("text") {
                Some(text) => match textual::parse_expr(text) {
                    Ok(expr) => Some(expr),
                    Err(err) => {
                        let span = g.attr_span("text").unwrap_or(Span::NONE);
                        bag.push(
                            Diagnostic::error(textual::E_SYNTAX, format!("in guard: {err}"))
                                .with_span(span),
                        );
                        None
                    }
                },
                None => Some(
                    g.children
                        .first()
                        .ok_or_else(|| Error::XmiStructure("empty guard element".into()))
                        .and_then(decode_expr)?,
                ),
            },
            None => None,
        };
        let actions = match t.child("actions") {
            Some(actions) => decode_program(actions, model, bag)?,
            None => Vec::new(),
        };
        sm.add_transition(source, target, trigger, guard, actions);
    }
    Ok(sm)
}

/// Decodes an `<entry>` or `<actions>` element: structural children by
/// default, or textual notation from a `text` attribute with recovery.
fn decode_program(
    parent: &XmlNode,
    model: &Model,
    bag: &mut DiagnosticBag,
) -> Result<Vec<Statement>> {
    match parent.attr("text") {
        Some(text) => {
            let base = parent.attr_span("text").unwrap_or(Span::NONE).start;
            let parsed = textual::parse_program(text, Some(model));
            for mut d in parsed.diagnostics {
                d.span = d.span.map(|s| s.offset(base));
                bag.push(d);
            }
            Ok(parsed.statements)
        }
        None => decode_statements(parent),
    }
}

fn packaged(ty: &str, id: &str, name: &str) -> XmlNode {
    let mut node = XmlNode::new("packagedElement");
    node.set_attr("xmi:type", ty);
    node.set_attr("xmi:id", id);
    node.set_attr("name", name);
    node
}

fn bool_str(v: bool) -> &'static str {
    if v {
        "true"
    } else {
        "false"
    }
}

fn check_id(node: &XmlNode, expected: &str) -> Result<()> {
    let found = node.required_attr("xmi:id")?;
    if found != expected {
        return Err(Error::XmiStructure(format!(
            "element ids must be dense and ordered: expected `{expected}`, found `{found}`"
        )));
    }
    Ok(())
}

fn parse_id(text: &str, prefix: &'static str) -> Result<usize> {
    text.strip_prefix(prefix)
        .and_then(|rest| rest.parse().ok())
        .ok_or_else(|| Error::XmiStructure(format!("malformed `{prefix}` id `{text}`")))
}

fn parse_type(node: &XmlNode) -> Result<DataType> {
    let name = node.required_attr("type")?;
    DataType::from_name(name)
        .ok_or_else(|| Error::XmiStructure(format!("unknown data type `{name}`")))
}

fn element_ref_str(r: ElementRef) -> String {
    r.to_string()
}

/// Parses an element reference from its display form (e.g. `"class3"`,
/// `"prop0"`), the inverse of [`ElementRef`]'s `Display`.
///
/// # Errors
///
/// Returns [`Error::XmiStructure`] for unknown prefixes or malformed
/// indices.
pub fn parse_element_ref(text: &str) -> Result<ElementRef> {
    let split = text
        .char_indices()
        .find(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .ok_or_else(|| Error::XmiStructure(format!("malformed element reference `{text}`")))?;
    let (prefix, digits) = text.split_at(split);
    let index: usize = digits
        .parse()
        .map_err(|_| Error::XmiStructure(format!("malformed element reference `{text}`")))?;
    let r = match prefix {
        "class" => ElementRef::Class(ClassId::from_index(index)),
        "prop" => ElementRef::Property(PropertyId::from_index(index)),
        "port" => ElementRef::Port(PortId::from_index(index)),
        "conn" => ElementRef::Connector(crate::ids::ConnectorId::from_index(index)),
        "dep" => ElementRef::Dependency(crate::ids::DependencyId::from_index(index)),
        "sig" => ElementRef::Signal(SignalId::from_index(index)),
        "pkg" => ElementRef::Package(PackageId::from_index(index)),
        other => {
            return Err(Error::XmiStructure(format!(
                "unknown element reference kind `{other}`"
            )))
        }
    };
    Ok(r)
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return Err(Error::XmiStructure("odd-length hex string".into()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| Error::XmiStructure(format!("bad hex byte `{}`", &text[i..i + 2])))
        })
        .collect()
}

fn encode_value(value: &Value) -> XmlNode {
    let mut node = XmlNode::new("value");
    node.set_attr("type", value.data_type().name());
    match value {
        Value::Int(i) => {
            node.set_attr("data", i.to_string());
        }
        Value::Bool(b) => {
            node.set_attr("data", bool_str(*b));
        }
        Value::Bytes(b) => {
            node.set_attr("data", hex_encode(b));
        }
        Value::Str(s) => {
            node.set_attr("data", s.as_str());
        }
    }
    node
}

fn decode_value(node: &XmlNode) -> Result<Value> {
    let data = node.required_attr("data")?;
    let ty = parse_type(node)?;
    let v = match ty {
        DataType::Int => Value::Int(
            data.parse()
                .map_err(|_| Error::XmiStructure(format!("bad int literal `{data}`")))?,
        ),
        DataType::Bool => Value::Bool(data == "true"),
        DataType::Bytes => Value::Bytes(hex_decode(data)?),
        DataType::Str => Value::Str(data.to_owned()),
    };
    Ok(v)
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::BitAnd => "bitand",
        BinOp::BitOr => "bitor",
        BinOp::BitXor => "bitxor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn binop_from_name(name: &str) -> Result<BinOp> {
    const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::Shr,
    ];
    ALL.into_iter()
        .find(|op| binop_name(*op) == name)
        .ok_or_else(|| Error::XmiStructure(format!("unknown binary operator `{name}`")))
}

/// Encodes an expression as a structural XML subtree.
pub fn encode_expr(expr: &Expr) -> XmlNode {
    match expr {
        Expr::Lit(v) => {
            let mut node = encode_value(v);
            node.name = "lit".into();
            node
        }
        Expr::Var(name) => {
            let mut node = XmlNode::new("var");
            node.set_attr("name", name.as_str());
            node
        }
        Expr::Param(name) => {
            let mut node = XmlNode::new("param");
            node.set_attr("name", name.as_str());
            node
        }
        Expr::Unary(op, e) => {
            let mut node = XmlNode::new("unary");
            node.set_attr(
                "op",
                match op {
                    UnaryOp::Not => "not",
                    UnaryOp::Neg => "neg",
                },
            );
            node.add_child(encode_expr(e));
            node
        }
        Expr::Binary(op, l, r) => {
            let mut node = XmlNode::new("binary");
            node.set_attr("op", binop_name(*op));
            node.add_child(encode_expr(l));
            node.add_child(encode_expr(r));
            node
        }
        Expr::Call(builtin, args) => {
            let mut node = XmlNode::new("call");
            node.set_attr("fn", builtin.name());
            for a in args {
                node.add_child(encode_expr(a));
            }
            node
        }
    }
}

/// Decodes an expression from its structural XML form.
///
/// # Errors
///
/// Returns [`Error::XmiStructure`] for unknown node names, operators, or
/// malformed literals.
pub fn decode_expr(node: &XmlNode) -> Result<Expr> {
    let expr = match node.name.as_str() {
        "lit" => Expr::Lit(decode_value(node)?),
        "var" => Expr::Var(node.required_attr("name")?.to_owned()),
        "param" => Expr::Param(node.required_attr("name")?.to_owned()),
        "unary" => {
            let op = match node.required_attr("op")? {
                "not" => UnaryOp::Not,
                "neg" => UnaryOp::Neg,
                other => {
                    return Err(Error::XmiStructure(format!(
                        "unknown unary operator `{other}`"
                    )))
                }
            };
            let child = node
                .children
                .first()
                .ok_or_else(|| Error::XmiStructure("unary node missing operand".into()))?;
            Expr::Unary(op, Box::new(decode_expr(child)?))
        }
        "binary" => {
            let op = binop_from_name(node.required_attr("op")?)?;
            if node.children.len() != 2 {
                return Err(Error::XmiStructure("binary node needs two operands".into()));
            }
            Expr::Binary(
                op,
                Box::new(decode_expr(&node.children[0])?),
                Box::new(decode_expr(&node.children[1])?),
            )
        }
        "call" => {
            let name = node.required_attr("fn")?;
            let builtin = Builtin::from_name(name)
                .ok_or_else(|| Error::XmiStructure(format!("unknown builtin `{name}`")))?;
            let args = node
                .children
                .iter()
                .map(decode_expr)
                .collect::<Result<Vec<_>>>()?;
            if args.len() != builtin.arity() {
                return Err(Error::XmiStructure(format!(
                    "builtin `{name}` expects {} arguments, found {}",
                    builtin.arity(),
                    args.len()
                )));
            }
            Expr::Call(builtin, args)
        }
        other => {
            return Err(Error::XmiStructure(format!(
                "unknown expression node `{other}`"
            )))
        }
    };
    Ok(expr)
}

/// Encodes a statement as a structural XML subtree.
pub fn encode_statement(statement: &Statement) -> XmlNode {
    match statement {
        Statement::Assign { var, expr } => {
            let mut node = XmlNode::new("assign");
            node.set_attr("var", var.as_str());
            node.add_child(encode_expr(expr));
            node
        }
        Statement::Send { port, signal, args } => {
            let mut node = XmlNode::new("send");
            node.set_attr("port", port.as_str());
            node.set_attr("signal", signal.to_string());
            for a in args {
                node.add_child(encode_expr(a));
            }
            node
        }
        Statement::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut node = XmlNode::new("if");
            node.add_child(XmlNode::new("cond"))
                .add_child(encode_expr(cond));
            let then_node = node.add_child(XmlNode::new("then"));
            for s in then_branch {
                then_node.add_child(encode_statement(s));
            }
            let else_node = node.add_child(XmlNode::new("else"));
            for s in else_branch {
                else_node.add_child(encode_statement(s));
            }
            node
        }
        Statement::While {
            cond,
            body,
            max_iter,
        } => {
            let mut node = XmlNode::new("while");
            node.set_attr("max", max_iter.to_string());
            node.add_child(XmlNode::new("cond"))
                .add_child(encode_expr(cond));
            let body_node = node.add_child(XmlNode::new("body"));
            for s in body {
                body_node.add_child(encode_statement(s));
            }
            node
        }
        Statement::Compute { class, amount } => {
            let mut node = XmlNode::new("compute");
            node.set_attr("class", class.name());
            node.add_child(encode_expr(amount));
            node
        }
        Statement::Log { message, args } => {
            let mut node = XmlNode::new("log");
            node.set_attr("message", message.as_str());
            for a in args {
                node.add_child(encode_expr(a));
            }
            node
        }
        Statement::SetTimer { name, duration } => {
            let mut node = XmlNode::new("settimer");
            node.set_attr("name", name.as_str());
            node.add_child(encode_expr(duration));
            node
        }
        Statement::CancelTimer { name } => {
            let mut node = XmlNode::new("canceltimer");
            node.set_attr("name", name.as_str());
            node
        }
        Statement::Count { counter, amount } => {
            let mut node = XmlNode::new("count");
            node.set_attr("counter", counter.as_str());
            node.add_child(encode_expr(amount));
            node
        }
    }
}

fn decode_statements(parent: &XmlNode) -> Result<Vec<Statement>> {
    parent.children.iter().map(decode_statement).collect()
}

/// Decodes a statement from its structural XML form.
///
/// # Errors
///
/// Returns [`Error::XmiStructure`] for unknown node names or malformed
/// children.
pub fn decode_statement(node: &XmlNode) -> Result<Statement> {
    let statement =
        match node.name.as_str() {
            "assign" => Statement::Assign {
                var: node.required_attr("var")?.to_owned(),
                expr: decode_expr(node.children.first().ok_or_else(|| {
                    Error::XmiStructure("assign node missing expression".into())
                })?)?,
            },
            "send" => Statement::Send {
                port: node.required_attr("port")?.to_owned(),
                signal: SignalId::from_index(parse_id(node.required_attr("signal")?, "sig")?),
                args: node
                    .children
                    .iter()
                    .map(decode_expr)
                    .collect::<Result<_>>()?,
            },
            "if" => {
                let cond_node = node.required_child("cond")?;
                Statement::If {
                    cond: decode_expr(
                        cond_node
                            .children
                            .first()
                            .ok_or_else(|| Error::XmiStructure("if condition is empty".into()))?,
                    )?,
                    then_branch: decode_statements(node.required_child("then")?)?,
                    else_branch: decode_statements(node.required_child("else")?)?,
                }
            }
            "while" => {
                let cond_node = node.required_child("cond")?;
                Statement::While {
                    cond: decode_expr(
                        cond_node.children.first().ok_or_else(|| {
                            Error::XmiStructure("while condition is empty".into())
                        })?,
                    )?,
                    body: decode_statements(node.required_child("body")?)?,
                    max_iter: node
                        .required_attr("max")?
                        .parse()
                        .map_err(|_| Error::XmiStructure("bad while bound".into()))?,
                }
            }
            "compute" => {
                let class_name = node.required_attr("class")?;
                Statement::Compute {
                    class: CostClass::from_name(class_name).ok_or_else(|| {
                        Error::XmiStructure(format!("unknown cost class `{class_name}`"))
                    })?,
                    amount: decode_expr(node.children.first().ok_or_else(|| {
                        Error::XmiStructure("compute node missing amount".into())
                    })?)?,
                }
            }
            "log" => Statement::Log {
                message: node.required_attr("message")?.to_owned(),
                args: node
                    .children
                    .iter()
                    .map(decode_expr)
                    .collect::<Result<_>>()?,
            },
            "settimer" => Statement::SetTimer {
                name: node.required_attr("name")?.to_owned(),
                duration: decode_expr(node.children.first().ok_or_else(|| {
                    Error::XmiStructure("settimer node missing duration".into())
                })?)?,
            },
            "canceltimer" => Statement::CancelTimer {
                name: node.required_attr("name")?.to_owned(),
            },
            "count" => Statement::Count {
                counter: node.required_attr("counter")?.to_owned(),
                amount: decode_expr(
                    node.children
                        .first()
                        .ok_or_else(|| Error::XmiStructure("count node missing amount".into()))?,
                )?,
            },
            other => {
                return Err(Error::XmiStructure(format!(
                    "unknown statement node `{other}`"
                )))
            }
        };
    Ok(statement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{BinOp, Builtin};
    use crate::model::ConnectorEnd;

    fn sample_model() -> Model {
        let mut m = Model::new("Sample");
        let pkg = m.add_package("App");
        let sub = m.add_package_in(Some(pkg), "Inner");
        let sig = m.add_signal("Data");
        m.signal_mut(sig).add_param("payload", DataType::Bytes);
        m.signal_mut(sig).add_param("seq", DataType::Int);
        let top = m.add_class_in(Some(pkg), "Top");
        let worker = m.add_class_in(Some(sub), "Worker");
        m.class_mut(worker).add_attribute("count", DataType::Int);
        m.class_mut(worker).set_general(Some(top));
        let part = m.add_part(top, "w", worker);
        let pin = m.add_port(worker, "in");
        let pout = m.add_port(top, "out");
        m.port_mut(pin).add_provided(sig);
        m.port_mut(pout).add_required(sig);
        m.add_connector(
            top,
            "c",
            ConnectorEnd {
                part: None,
                port: pout,
            },
            ConnectorEnd {
                part: Some(part),
                port: pin,
            },
        );
        m.add_dependency("uses", part, worker);

        let mut sm = StateMachine::new("WorkerBehavior");
        sm.add_variable("n", DataType::Int, Value::Int(0));
        sm.add_variable("buf", DataType::Bytes, Value::Bytes(vec![0xde, 0xad]));
        let idle = sm.add_state("Idle");
        let busy = sm.add_state_with_entry(
            "Busy",
            vec![Statement::Log {
                message: "entered busy".into(),
                args: vec![],
            }],
        );
        sm.set_initial(idle);
        sm.add_transition(
            idle,
            busy,
            Trigger::Signal(sig),
            Some(Expr::param("seq").bin(BinOp::Gt, Expr::int(0))),
            vec![
                Statement::Assign {
                    var: "n".into(),
                    expr: Expr::var("n").bin(BinOp::Add, Expr::int(1)),
                },
                Statement::Send {
                    port: "in".into(),
                    signal: sig,
                    args: vec![
                        Expr::call(Builtin::Fill, vec![Expr::int(0), Expr::int(4)]),
                        Expr::var("n"),
                    ],
                },
                Statement::SetTimer {
                    name: "tick".into(),
                    duration: Expr::int(100),
                },
            ],
        );
        sm.add_transition(busy, idle, Trigger::Timer("tick".into()), None, vec![]);
        sm.add_transition(
            busy,
            busy,
            Trigger::Completion,
            Some(Expr::bool(false)),
            vec![],
        );
        m.add_state_machine(worker, sm);
        m
    }

    #[test]
    fn model_round_trips_exactly() {
        let model = sample_model();
        let text = to_xml(&model);
        let parsed = from_xml(&text).expect("parse back");
        assert_eq!(parsed, model);
    }

    #[test]
    fn inactive_class_with_behaviorless_round_trip() {
        let mut m = Model::new("M");
        m.add_class("Passive");
        let text = to_xml(&m);
        assert_eq!(from_xml(&text).unwrap(), m);
    }

    #[test]
    fn expr_round_trip() {
        let exprs = [
            Expr::int(5),
            Expr::Lit(Value::Bytes(vec![1, 2, 3])),
            Expr::Lit(Value::Str("hi <&> there".into())),
            Expr::var("x"),
            Expr::param("p"),
            Expr::Unary(UnaryOp::Not, Box::new(Expr::bool(true))),
            Expr::var("a").bin(BinOp::Shl, Expr::int(2)),
            Expr::call(Builtin::Crc32, vec![Expr::var("buf")]),
        ];
        for e in exprs {
            let node = encode_expr(&e);
            assert_eq!(decode_expr(&node).unwrap(), e, "round trip of {e}");
        }
    }

    #[test]
    fn statement_round_trip_via_xml_text() {
        let s = Statement::If {
            cond: Expr::var("x").bin(BinOp::Eq, Expr::int(0)),
            then_branch: vec![Statement::Compute {
                class: CostClass::Dsp,
                amount: Expr::int(64),
            }],
            else_branch: vec![Statement::While {
                cond: Expr::bool(false),
                body: vec![
                    Statement::CancelTimer { name: "t".into() },
                    Statement::Count {
                        counter: "arq.tx".into(),
                        amount: Expr::int(1),
                    },
                ],
                max_iter: 8,
            }],
        };
        let text = encode_statement(&s).to_xml_string();
        let node = XmlNode::parse(&text).unwrap();
        assert_eq!(decode_statement(&node).unwrap(), s);
    }

    #[test]
    fn from_xml_rejects_garbage() {
        assert!(from_xml("<xmi:XMI/>").is_err());
        assert!(from_xml("<wrong/>").is_err());
        assert!(from_xml("not xml at all").is_err());
    }

    fn textual_doc(entry: &str, guard: &str, actions: &str) -> String {
        format!(
            r#"<xmi:XMI>
<uml:Model name="M">
<packagedElement xmi:type="uml:Signal" xmi:id="sig0" name="Data">
<ownedParameter name="seq" type="Int"/>
</packagedElement>
<packagedElement xmi:type="uml:Class" xmi:id="class0" name="Worker" isActive="true" classifierBehavior="sm0"/>
<packagedElement xmi:type="uml:Port" xmi:id="port0" name="out" owner="class0">
<required signal="sig0"/>
</packagedElement>
<packagedElement xmi:type="uml:StateMachine" xmi:id="sm0" name="B">
<variable name="n" type="Int"><value type="Int" data="0"/></variable>
<state xmi:id="state0" name="Idle">
<entry text="{entry}"/>
</state>
<initial state="state0"/>
<transition source="state0" target="state0">
<trigger kind="signal" signal="sig0"/>
<guard text="{guard}"/>
<actions text="{actions}"/>
</transition>
</packagedElement>
</uml:Model>
</xmi:XMI>"#
        )
    }

    #[test]
    fn textual_attributes_read_cleanly() {
        let text = textual_doc("n := 1;", "n == 1", "n := n + 1; send out.Data(n);");
        let root = XmlNode::parse(&text).unwrap();
        let mut bag = DiagnosticBag::new();
        let (model, index) = read_model(&root, &mut bag).expect("read");
        assert!(bag.is_empty(), "unexpected diagnostics: {bag}");

        let sm = model.state_machines().next().unwrap().1;
        let (_, t) = sm.transitions().next().unwrap();
        assert!(t.guard().is_some());
        assert_eq!(t.actions().len(), 2);
        assert!(matches!(t.actions()[1], Statement::Send { .. }));

        // The index points at the declaring start tags.
        let class_span = index.get("class0").expect("class0 indexed");
        assert!(text[class_span.start..].starts_with("<packagedElement"));
        assert!(index.get("sm0").is_some());
        assert!(index.get("nonexistent").is_none());
    }

    #[test]
    fn broken_textual_attributes_recover_with_document_spans() {
        let text = textual_doc("n := 1;", "n ==", "n := ; n := 2;");
        let root = XmlNode::parse(&text).unwrap();
        let mut bag = DiagnosticBag::new();
        let (model, _) = read_model(&root, &mut bag).expect("read");

        // One guard error, one actions error; the guard is dropped and the
        // surviving action statement is kept.
        assert_eq!(bag.error_count(), 2);
        assert!(bag.iter().all(|d| d.code == textual::E_SYNTAX));
        let sm = model.state_machines().next().unwrap().1;
        let (_, t) = sm.transitions().next().unwrap();
        assert!(t.guard().is_none());
        assert_eq!(t.actions().len(), 1);

        // Spans land inside the document's attribute values.
        let actions_attr = text.find("n := ;").unwrap();
        let d = bag
            .iter()
            .find(|d| d.span.is_some_and(|s| s.start >= actions_attr))
            .expect("actions diagnostic carries a document span");
        let span = d.span.unwrap();
        assert!(span.start < actions_attr + "n := ;".len());
    }

    #[test]
    fn strict_reader_rejects_broken_textual_attributes() {
        let text = textual_doc("n := ;", "n == 1", "n := 2;");
        let err = from_xml(&text).unwrap_err();
        assert!(err.to_string().contains("E0110"), "got: {err}");
    }

    #[test]
    fn element_ref_parsing() {
        assert_eq!(
            parse_element_ref("class3").unwrap(),
            ElementRef::Class(ClassId::from_index(3))
        );
        assert_eq!(
            parse_element_ref("prop0").unwrap(),
            ElementRef::Property(PropertyId::from_index(0))
        );
        assert!(parse_element_ref("bogus").is_err());
        assert!(parse_element_ref("class").is_err());
    }

    #[test]
    fn hex_round_trip() {
        let bytes = vec![0x00, 0xff, 0x10, 0xab];
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
