//! Experiment A4: profiling-tool throughput — log-file parsing and the
//! combine/analyse stage, as a function of log size.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_profiling_tool(c: &mut Criterion) {
    let system = tut_bench::paper_system();
    let groups = tut_profiling::groups::parse_model_xml(&system.to_xml()).expect("groups");

    let mut group = c.benchmark_group("profiling_tool");
    group.sample_size(10);
    for horizon_ms in [5u64, 20] {
        let report = tut_sim::Simulation::from_system(
            &system,
            tut_sim::SimConfig::with_horizon_ns(horizon_ms * 1_000_000),
        )
        .expect("build")
        .run()
        .expect("run");
        let log_text = report.log.to_text();
        group.throughput(Throughput::Bytes(log_text.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("parse_log", format!("{horizon_ms}ms")),
            &log_text,
            |b, text| b.iter(|| tut_sim::SimLog::parse(text).expect("parse")),
        );
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("{horizon_ms}ms")),
            &log_text,
            |b, text| b.iter(|| tut_profiling::analyze(&groups, text).expect("analyze")),
        );
    }
    group.bench_function("parse_model_xml", |b| {
        let xml = system.to_xml();
        b.iter(|| tut_profiling::groups::parse_model_xml(&xml).expect("groups"))
    });
    group.finish();
}

criterion_group!(benches, bench_profiling_tool);
criterion_main!(benches);
