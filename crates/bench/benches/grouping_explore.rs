//! Experiment A2: grouping quality and cost — the paper's Figure 6
//! grouping vs a worst-case grouping vs the `tut-explore` partitioner,
//! scored by inter-group signal volume (the quantity §4.1 minimises).

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tut_explore::{full_objective, partition, refine, CommGraph, GroupingOptions};

/// The TUTMAC communication graph measured from a profiling run.
fn tutmac_graph() -> CommGraph {
    let system = tut_bench::paper_system();
    let report = tut_bench::profile(&system);
    CommGraph::from_report(&report)
}

fn paper_assignment(graph: &CommGraph) -> Vec<usize> {
    // Figure 6: group1 = {rca, mng, rmng}, group2 = {msduRec, msduDel},
    // group3 = {frag, defrag}, group4 = {crc}; environment -> group 4
    // bucketed separately (group index 4).
    graph
        .nodes()
        .iter()
        .map(|name| match name.as_str() {
            "rca" | "mng" | "rmng" => 0,
            "ui.msduRec" | "ui.msduDel" => 1,
            "dp.frag" | "dp.defrag" => 2,
            "dp.crc" => 3,
            _ => 4, // environment
        })
        .collect()
}

fn worst_assignment(graph: &CommGraph) -> Vec<usize> {
    // Round-robin scatter: communicating neighbours always split.
    (0..graph.len()).map(|i| i % 5).collect()
}

fn bench_grouping(c: &mut Criterion) {
    let graph = tutmac_graph();
    let paper = paper_assignment(&graph);
    let worst = worst_assignment(&graph);
    // Pin the environment processes into their own part so the optimiser
    // solves the same problem the designer did.
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let options = GroupingOptions {
        groups: 5,
        balance_weight: 0.0,
        pinned,
        ..GroupingOptions::default()
    };
    let optimised = partition(&graph, &options);

    println!("\nA2: inter-group signal volume (lower is better)");
    println!("  worst-case scatter : {}", graph.cut_weight(&worst));
    println!("  paper (figure 6)   : {}", graph.cut_weight(&paper));
    println!("  explore partition  : {}", optimised.cut_weight);

    let mut group = c.benchmark_group("grouping");
    group.sample_size(10);
    group.bench_function("partition_tutmac", |b| {
        b.iter(|| partition(&graph, &options))
    });
    group.finish();

    // Scaling on synthetic graphs: rings of communities.
    let mut group = c.benchmark_group("grouping_scaling");
    group.sample_size(10);
    for communities in [4usize, 8, 16] {
        let g = ring_of_communities(communities, 6);
        let options = GroupingOptions {
            groups: communities,
            balance_weight: 0.0,
            annealing_iterations: 5_000,
            ..GroupingOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new(
                "partition",
                format!("{}nodes", communities * per_community()),
            ),
            &g,
            |b, g| b.iter(|| partition(g, &options)),
        );
    }
    group.finish();

    bench_refinement_objective(c);
    bench_thread_scaling(c);
}

fn per_community() -> usize {
    6
}

/// `communities` cliques of `per` nodes (intra-weight 20) joined in a
/// ring by weight-1 bridges.
fn ring_of_communities(communities: usize, per: usize) -> CommGraph {
    let mut g = CommGraph::default();
    for community in 0..communities {
        for node in 0..per {
            g.intern(&format!("c{community}n{node}"));
        }
    }
    for community in 0..communities {
        let base = community * per;
        for a in 0..per {
            for b in (a + 1)..per {
                g.add_edge(base + a, base + b, 20);
            }
        }
        let next = ((community + 1) % communities) * per;
        g.add_edge(base, next, 1);
    }
    g
}

/// The refinement pass priced by a full O(E) objective recompute per
/// candidate move — the pre-incremental baseline, kept here so the
/// speedup of `ObjectiveState` stays measured.
fn refine_full_recompute(
    graph: &CommGraph,
    assignment: &mut [usize],
    groups: usize,
    balance_weight: f64,
) -> f64 {
    let mut current = full_objective(graph, assignment, groups, balance_weight);
    let mut improved = true;
    while improved {
        improved = false;
        for node in 0..graph.len() {
            for group in 0..groups {
                if group == assignment[node] {
                    continue;
                }
                let previous = assignment[node];
                assignment[node] = group;
                let candidate = full_objective(graph, assignment, groups, balance_weight);
                if candidate < current {
                    current = candidate;
                    improved = true;
                } else {
                    assignment[node] = previous;
                }
            }
        }
    }
    current
}

/// Incremental vs full-recompute refinement on the 96-node ring graph.
fn bench_refinement_objective(c: &mut Criterion) {
    let communities = 16;
    let g = ring_of_communities(communities, per_community());
    let scatter: Vec<usize> = (0..g.len()).map(|i| i % communities).collect();
    let options = GroupingOptions {
        groups: communities,
        balance_weight: 0.2,
        annealing_iterations: 0,
        ..GroupingOptions::default()
    };

    // Same start, same result — and the printed ratio is the speedup the
    // incremental objective buys on the refinement phase alone.
    let mut a = scatter.clone();
    let full_value = refine_full_recompute(&g, &mut a, communities, 0.2);
    let mut b = scatter.clone();
    let incremental_value = refine(&g, &mut b, &options);
    assert_eq!(
        full_value.to_bits(),
        incremental_value.to_bits(),
        "both refinement paths must land on the same objective"
    );

    let time = |mut f: Box<dyn FnMut()>| {
        let reps = 10;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let g2 = g.clone();
    let scatter2 = scatter.clone();
    let full_secs = time(Box::new(move || {
        let mut a = scatter2.clone();
        refine_full_recompute(&g2, &mut a, communities, 0.2);
    }));
    let g3 = g.clone();
    let options3 = options.clone();
    let scatter3 = scatter.clone();
    let incremental_secs = time(Box::new(move || {
        let mut a = scatter3.clone();
        refine(&g3, &mut a, &options3);
    }));
    println!("\nA2b: refinement objective, 96-node ring (per refinement pass)");
    println!("  full recompute     : {:>9.3} ms", full_secs * 1e3);
    println!("  incremental        : {:>9.3} ms", incremental_secs * 1e3);
    println!(
        "  speedup            : {:>9.1}x",
        full_secs / incremental_secs
    );

    let mut group = c.benchmark_group("refinement");
    group.sample_size(10);
    group.bench_function("full_recompute", |b| {
        b.iter(|| {
            let mut a = scatter.clone();
            refine_full_recompute(&g, &mut a, communities, 0.2)
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut a = scatter.clone();
            refine(&g, &mut a, &options)
        })
    });
    group.finish();
}

/// Multi-start annealing at 1/2/4 worker threads (8 restarts).
fn bench_thread_scaling(c: &mut Criterion) {
    let communities = 8;
    let g = ring_of_communities(communities, per_community());
    let mut group = c.benchmark_group("grouping_threads");
    group.sample_size(10);
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let options = GroupingOptions {
            groups: communities,
            balance_weight: 0.0,
            annealing_iterations: 20_000,
            restarts: 8,
            threads,
            ..GroupingOptions::default()
        };
        let solution = partition(&g, &options);
        match &reference {
            None => reference = Some(solution),
            Some(expected) => assert_eq!(
                expected, &solution,
                "thread count must not change the solution"
            ),
        }
        group.bench_with_input(
            BenchmarkId::new("partition_8restarts", format!("{threads}threads")),
            &threads,
            |b, _| b.iter(|| partition(&g, &options)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
