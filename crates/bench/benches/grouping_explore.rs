//! Experiment A2: grouping quality and cost — the paper's Figure 6
//! grouping vs a worst-case grouping vs the `tut-explore` partitioner,
//! scored by inter-group signal volume (the quantity §4.1 minimises).

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tut_explore::{partition, CommGraph, GroupingOptions};

/// The TUTMAC communication graph measured from a profiling run.
fn tutmac_graph() -> CommGraph {
    let system = tut_bench::paper_system();
    let report = tut_bench::profile(&system);
    CommGraph::from_report(&report)
}

fn paper_assignment(graph: &CommGraph) -> Vec<usize> {
    // Figure 6: group1 = {rca, mng, rmng}, group2 = {msduRec, msduDel},
    // group3 = {frag, defrag}, group4 = {crc}; environment -> group 4
    // bucketed separately (group index 4).
    graph
        .nodes()
        .iter()
        .map(|name| match name.as_str() {
            "rca" | "mng" | "rmng" => 0,
            "ui.msduRec" | "ui.msduDel" => 1,
            "dp.frag" | "dp.defrag" => 2,
            "dp.crc" => 3,
            _ => 4, // environment
        })
        .collect()
}

fn worst_assignment(graph: &CommGraph) -> Vec<usize> {
    // Round-robin scatter: communicating neighbours always split.
    (0..graph.len()).map(|i| i % 5).collect()
}

fn bench_grouping(c: &mut Criterion) {
    let graph = tutmac_graph();
    let paper = paper_assignment(&graph);
    let worst = worst_assignment(&graph);
    // Pin the environment processes into their own part so the optimiser
    // solves the same problem the designer did.
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let options = GroupingOptions {
        groups: 5,
        balance_weight: 0.0,
        pinned,
        ..GroupingOptions::default()
    };
    let optimised = partition(&graph, &options);

    println!("\nA2: inter-group signal volume (lower is better)");
    println!("  worst-case scatter : {}", graph.cut_weight(&worst));
    println!("  paper (figure 6)   : {}", graph.cut_weight(&paper));
    println!("  explore partition  : {}", optimised.cut_weight);

    let mut group = c.benchmark_group("grouping");
    group.sample_size(10);
    group.bench_function("partition_tutmac", |b| {
        b.iter(|| partition(&graph, &options))
    });
    group.finish();

    // Scaling on synthetic graphs: rings of communities.
    let mut group = c.benchmark_group("grouping_scaling");
    group.sample_size(10);
    for communities in [4usize, 8, 16] {
        let mut g = CommGraph::default();
        let per = 6;
        for community in 0..communities {
            for node in 0..per {
                g.intern(&format!("c{community}n{node}"));
            }
        }
        for community in 0..communities {
            let base = community * per;
            for a in 0..per {
                for b in (a + 1)..per {
                    g.add_edge(base + a, base + b, 20);
                }
            }
            let next = ((community + 1) % communities) * per;
            g.add_edge(base, next, 1);
        }
        let options = GroupingOptions {
            groups: communities,
            balance_weight: 0.0,
            annealing_iterations: 5_000,
            ..GroupingOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("partition", format!("{}nodes", communities * per)),
            &g,
            |b, g| b.iter(|| partition(g, &options)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
