//! Experiment A7: CRC-32 in "hardware" (table-driven accelerator model)
//! vs the bitwise software reference — the computation the paper offloads
//! to `accelerator1`.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tut_platform::Crc32Accelerator;
use tut_uml::action::crc32_bitwise;

fn bench_crc(c: &mut Criterion) {
    let accelerator = Crc32Accelerator::new();
    let mut group = c.benchmark_group("crc32");
    for size in [64usize, 256, 1500] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("software_bitwise", size), &data, |b, d| {
            b.iter(|| crc32_bitwise(d))
        });
        group.bench_with_input(BenchmarkId::new("hardware_table", size), &data, |b, d| {
            b.iter(|| accelerator.compute(d))
        });
    }
    group.finish();

    // Modelled hardware timing (cycles) for the paper's frame sizes.
    println!(
        "\nA7: modelled accelerator cycles: 256B frame = {} cycles, 1500B MSDU = {} cycles",
        accelerator.cycles(256),
        accelerator.cycles(1500)
    );
}

criterion_group!(benches, bench_crc);
criterion_main!(benches);
