//! Experiment P1: simulation hot-path throughput — a full TUTMAC run
//! (events/sec), log rendering, and log parsing. The `repro bench` item
//! reports the same run as a one-shot figure; this bench gives the
//! calibrated per-case numbers.

use tut_bench::microbench::{criterion_group, criterion_main, Criterion, Throughput};
use tut_sim::{SimConfig, Simulation};

fn bench_sim_hotpath(c: &mut Criterion) {
    let system = tut_bench::paper_system();
    let horizon_ns = 5_000_000u64;
    let reference = Simulation::from_system(&system, SimConfig::with_horizon_ns(horizon_ns))
        .expect("build")
        .run()
        .expect("run");
    let records = reference.log.len() as u64;
    let text = reference.log.to_text();

    let mut group = c.benchmark_group("sim_hotpath");
    group.sample_size(10);

    group.throughput(Throughput::Elements(records));
    group.bench_function("tutmac_run_5ms", |b| {
        b.iter(|| {
            Simulation::from_system(&system, SimConfig::with_horizon_ns(horizon_ns))
                .expect("build")
                .run()
                .expect("run")
        })
    });

    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("log_to_text_5ms", |b| b.iter(|| reference.log.to_text()));
    group.bench_function("log_parse_5ms", |b| {
        b.iter(|| tut_sim::SimLog::parse(&text).expect("parse"))
    });
    group.finish();
}

criterion_group!(benches, bench_sim_hotpath);
criterion_main!(benches);
