//! Experiment A8 (supplementary): code-generation throughput on the full
//! TUTMAC model — the Figure 2 "code generation" stage.

use tut_bench::microbench::{criterion_group, criterion_main, Criterion};

fn bench_codegen(c: &mut Criterion) {
    let system = tut_bench::paper_system();
    let mut group = c.benchmark_group("codegen");
    group.sample_size(20);
    group.bench_function("generate_tutmac_project", |b| {
        b.iter(|| tut_codegen::generate_project(&system).expect("generate"))
    });
    group.finish();

    let files = tut_codegen::generate_project(&system).expect("generate");
    let lines: usize = files.iter().map(|f| f.contents.lines().count()).sum();
    println!(
        "\nA8: generated {} files, {} lines of C for TUTMAC",
        files.len(),
        lines
    );
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
