//! Experiment A9: the RTOS scheduling model (the paper's named future
//! work) on the TUTMAC case study — dispatch policy and context-switch
//! cost vs protocol response times.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tut_sim::config::{SchedPolicy, Scheduler};
use tut_sim::SimConfig;

fn run(policy: SchedPolicy, context_switch_cycles: u64) -> tut_sim::SimReport {
    let system = tut_bench::paper_system();
    let config = SimConfig {
        scheduler: Scheduler {
            policy,
            context_switch_cycles,
        },
        ..SimConfig::with_horizon_ns(10_000_000)
    };
    tut_sim::Simulation::from_system(&system, config)
        .expect("build")
        .run()
        .expect("run")
}

fn bench_rtos(c: &mut Criterion) {
    println!("\nA9: TUTMAC under RTOS scheduling variants (10 ms of traffic)");
    println!(
        "{:<28} {:>14} {:>16} {:>14}",
        "variant", "total cycles", "rca mean wait", "rca max wait"
    );
    for (label, policy, ctx) in [
        ("priority, free switch", SchedPolicy::Priority, 0u64),
        ("priority, 200-cyc switch", SchedPolicy::Priority, 200),
        ("round-robin, free switch", SchedPolicy::RoundRobin, 0),
        ("round-robin, 200-cyc switch", SchedPolicy::RoundRobin, 200),
    ] {
        let report = run(policy, ctx);
        let rca = report.process("rca").expect("rca stats");
        println!(
            "{label:<28} {:>14} {:>13.0} ns {:>11} ns",
            report.total_cycles(),
            rca.mean_queue_wait_ns(),
            rca.max_queue_wait_ns
        );
    }

    let mut group = c.benchmark_group("rtos");
    group.sample_size(10);
    for policy in [SchedPolicy::Priority, SchedPolicy::RoundRobin] {
        group.bench_with_input(
            BenchmarkId::new("simulate_10ms", format!("{policy:?}")),
            &policy,
            |b, &policy| b.iter(|| run(policy, 200).total_steps),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rtos);
criterion_main!(benches);
