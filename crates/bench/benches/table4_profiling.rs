//! Experiment: Table 4 — the full design-and-profiling pipeline
//! (model → XML → groups; model → simulation → log; combine → report)
//! at increasing simulation horizons.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let system = tut_bench::paper_system();
    let mut group = c.benchmark_group("table4_pipeline");
    group.sample_size(10);
    for horizon_ms in [2u64, 5, 10] {
        group.bench_with_input(
            BenchmarkId::new("profile_system", format!("{horizon_ms}ms")),
            &horizon_ms,
            |b, &ms| {
                b.iter(|| {
                    tut_profiling::profile_system(
                        &system,
                        tut_sim::SimConfig::with_horizon_ns(ms * 1_000_000),
                    )
                    .expect("pipeline")
                })
            },
        );
    }
    group.finish();

    // Stage split: simulation alone vs analysis alone.
    let mut group = c.benchmark_group("table4_stages");
    group.sample_size(10);
    group.bench_function("simulate_10ms", |b| {
        b.iter(|| {
            tut_sim::Simulation::from_system(
                &system,
                tut_sim::SimConfig::with_horizon_ns(10_000_000),
            )
            .expect("build")
            .run()
            .expect("run")
        })
    });
    let report =
        tut_sim::Simulation::from_system(&system, tut_sim::SimConfig::with_horizon_ns(10_000_000))
            .expect("build")
            .run()
            .expect("run");
    let log_text = report.log.to_text();
    let groups = tut_profiling::groups::parse_model_xml(&system.to_xml()).expect("groups");
    group.bench_function("analyze_10ms_log", |b| {
        b.iter(|| tut_profiling::analyze(&groups, &log_text).expect("analyze"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
