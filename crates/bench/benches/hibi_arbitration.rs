//! Experiment A1: HIBI arbitration schemes under contention — priority
//! vs round-robin vs TDMA on one saturated segment (cycle-accurate), plus
//! the reservation-layer transfer throughput.

use tut_bench::microbench::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use tut_hibi::arbiter::{simulate_contention, ContentionConfig};
use tut_hibi::topology::{Arbitration, NetworkBuilder, SegmentConfig, WrapperConfig};

fn bench_contention(c: &mut Criterion) {
    let config = ContentionConfig {
        agents: 4,
        cycles: 100_000,
        burst_words: 16,
        period_cycles: 50, // saturated
        max_time: 16,
    };
    // Print the qualitative comparison once; Criterion measures the cost.
    println!("\nA1: single-segment contention, 4 agents, saturated load");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "scheme", "words", "mean wait", "max wait", "fairness"
    );
    for scheme in [
        Arbitration::Priority,
        Arbitration::RoundRobin,
        Arbitration::Tdma,
    ] {
        let report = simulate_contention(scheme, config);
        println!(
            "{:<12} {:>12} {:>12.1} {:>10} {:>10.3}",
            scheme.to_string(),
            report.total_words,
            report.mean_wait(),
            report.max_wait(),
            report.fairness
        );
    }

    let mut group = c.benchmark_group("hibi_contention");
    group.sample_size(20);
    for scheme in [
        Arbitration::Priority,
        Arbitration::RoundRobin,
        Arbitration::Tdma,
    ] {
        group.bench_with_input(
            BenchmarkId::new("simulate", scheme.to_string()),
            &scheme,
            |b, &scheme| b.iter(|| simulate_contention(scheme, config)),
        );
    }
    group.finish();
}

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("hibi_transfers");
    for arbitration in [Arbitration::Priority, Arbitration::RoundRobin] {
        group.bench_with_input(
            BenchmarkId::new("1000_transfers", arbitration.to_string()),
            &arbitration,
            |b, &arbitration| {
                b.iter_batched(
                    || {
                        let mut builder = NetworkBuilder::new();
                        let seg = builder.add_segment(
                            "seg",
                            SegmentConfig {
                                arbitration,
                                ..SegmentConfig::default()
                            },
                        );
                        let a0 = builder.add_agent(seg, WrapperConfig::new(1));
                        let a1 = builder.add_agent(seg, WrapperConfig::new(2));
                        (builder.build().expect("network"), a0, a1)
                    },
                    |(mut network, a0, a1)| {
                        let mut t = 0;
                        for i in 0..1000u64 {
                            let result = network.transfer(a0, a1, 64 + (i % 512), t);
                            t = result.completion_ns;
                        }
                        t
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_contention, bench_transfers);
criterion_main!(benches);
