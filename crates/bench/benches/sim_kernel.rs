//! Experiment A6: simulation-kernel throughput — run-to-completion steps
//! per second as the process count grows (synthetic token-ring
//! applications, all processes on one processor).

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tut_profile::application::ProcessType;
use tut_profile::platform::ComponentKind;
use tut_profile::SystemModel;
use tut_uml::action::{CostClass, Expr, Statement};
use tut_uml::model::ConnectorEnd;
use tut_uml::statemachine::{StateMachine, Trigger};

/// A ring of `n` processes passing a token; the first process injects it.
fn token_ring(n: usize) -> SystemModel {
    let mut s = SystemModel::new(format!("Ring{n}"));
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();
    let token = s.model.add_signal("Token");
    s.model
        .signal_mut(token)
        .add_param("hops", tut_uml::DataType::Int);

    let mut parts = Vec::new();
    let mut ports = Vec::new();
    for i in 0..n {
        let class = s.model.add_class(format!("Node{i}"));
        s.apply(class, |t| t.application_component).unwrap();
        let pin = s.model.add_port(class, "in");
        let pout = s.model.add_port(class, "out");
        s.model.port_mut(pin).add_provided(token);
        s.model.port_mut(pout).add_required(token);
        let mut sm = StateMachine::new(format!("Node{i}B"));
        let run = if i == 0 {
            sm.add_state_with_entry(
                "Run",
                vec![Statement::Send {
                    port: "out".into(),
                    signal: token,
                    args: vec![Expr::int(0)],
                }],
            )
        } else {
            sm.add_state("Run")
        };
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Signal(token),
            None,
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(10),
                },
                Statement::Send {
                    port: "out".into(),
                    signal: token,
                    args: vec![Expr::param("hops").bin(tut_uml::action::BinOp::Add, Expr::int(1))],
                },
            ],
        );
        s.model.add_state_machine(class, sm);
        let part = s.model.add_part(top, format!("n{i}"), class);
        s.apply(part, |t| t.application_process).unwrap();
        parts.push(part);
        ports.push((pin, pout));
    }
    for i in 0..n {
        let next = (i + 1) % n;
        s.model.add_connector(
            top,
            format!("ring{i}"),
            ConnectorEnd {
                part: Some(parts[i]),
                port: ports[i].1,
            },
            ConnectorEnd {
                part: Some(parts[next]),
                port: ports[next].0,
            },
        );
    }
    // One group on one processor: pure kernel throughput.
    let group = s.add_process_group("ring", false, ProcessType::General);
    for &part in &parts {
        s.assign_to_group(part, group);
    }
    let platform = s.model.add_class("Plat");
    s.apply(platform, |t| t.platform).unwrap();
    let cpu = s.add_platform_component("Cpu", ComponentKind::General, 1000, 1.0, 0.1);
    let instance = s.add_platform_instance(platform, "cpu", cpu, 1, 0);
    s.map_group(group, instance, false);
    s
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let system = token_ring(n);
        let config = tut_sim::SimConfig {
            max_time_ns: u64::MAX / 2,
            max_steps: 20_000,
            ..tut_sim::SimConfig::default()
        };
        group.throughput(Throughput::Elements(20_000));
        group.bench_with_input(
            BenchmarkId::new("steps_20k", format!("{n}proc")),
            &system,
            |b, system| {
                b.iter(|| {
                    tut_sim::Simulation::from_system(system, config.clone())
                        .expect("build")
                        .run()
                        .expect("run")
                        .total_steps
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_kernel);
criterion_main!(benches);
