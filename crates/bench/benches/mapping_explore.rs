//! Experiment A3: mapping quality — the paper's Figure 8 mapping vs
//! all-on-one-processor vs the exhaustive-search optimum, scored by the
//! bottleneck processing-element busy time over a fixed workload.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tut_bench::{bottleneck_busy_ns, system_with_mapping, MappingVariant};
use tut_explore::mapping::{MappingOptions, MappingProblem, PeInfo};
use tut_profile::application::ProcessType;
use tut_profile::platform::ComponentKind;
use tut_sim::SimConfig;
use tut_trace::SplitMix64;

fn bench_mapping(c: &mut Criterion) {
    let config = SimConfig::with_horizon_ns(10_000_000);
    println!("\nA3: bottleneck busy time over 10 ms of protocol traffic (lower is better)");
    for variant in MappingVariant::ALL {
        let system = system_with_mapping(variant);
        let busy = bottleneck_busy_ns(&system, config.clone());
        println!("  {:<22}: {busy} ns", variant.label());
    }

    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    group.bench_function("optimise_exhaustive", |b| {
        let system = tut_bench::paper_system();
        let report = tut_bench::profile(&system);
        let (problem, _, _) =
            tut_explore::mapping::problem_from_system(&system, &report).expect("problem");
        let options = tut_explore::mapping::MappingOptions::default();
        b.iter(|| tut_explore::optimise_mapping(&problem, &options))
    });
    group.bench_function("evaluate_by_simulation", |b| {
        let system = system_with_mapping(MappingVariant::Paper);
        b.iter(|| bottleneck_busy_ns(&system, SimConfig::with_horizon_ns(2_000_000)))
    });
    group.finish();

    bench_parallel_search(c);
}

/// A synthetic problem big enough to make the exhaustive search hurt:
/// `groups` groups over 5 elements (5^8 ≈ 390k candidates at 8 groups).
fn synthetic_problem(groups: usize) -> MappingProblem {
    let mut rng = SplitMix64::new(0xBE7C_4A5E);
    let kinds = [
        ProcessType::General,
        ProcessType::Dsp,
        ProcessType::Hardware,
    ];
    let pe_kinds = [
        ComponentKind::General,
        ComponentKind::General,
        ComponentKind::Dsp,
        ComponentKind::Dsp,
        ComponentKind::HwAccelerator,
    ];
    let pes = pe_kinds.len();
    let mut comm = vec![vec![0u64; groups]; groups];
    for (g, row) in comm.iter_mut().enumerate() {
        for (h, cell) in row.iter_mut().enumerate() {
            if g != h {
                *cell = rng.next_below(100);
            }
        }
    }
    let mut distance = vec![vec![0u64; pes]; pes];
    for (a, row) in distance.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            if a != b {
                *cell = 1 + rng.next_below(2);
            }
        }
    }
    MappingProblem {
        group_names: (0..groups).map(|g| format!("g{g}")).collect(),
        group_cycles: (0..groups)
            .map(|_| 1_000 + rng.next_below(50_000))
            .collect(),
        group_kinds: (0..groups).map(|_| kinds[rng.next_index(3)]).collect(),
        comm,
        pes: (0..pes)
            .map(|i| PeInfo {
                frequency_mhz: 50 + 50 * (i as u64 % 2),
                kind: pe_kinds[i],
            })
            .collect(),
        distance,
    }
}

/// Exhaustive search at 1/2/4 worker threads, plus the pin-collapse
/// effect on the enumerated space.
fn bench_parallel_search(c: &mut Criterion) {
    let problem = synthetic_problem(8);
    let mut group = c.benchmark_group("mapping_threads");
    group.sample_size(10);
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let options = MappingOptions {
            threads,
            ..MappingOptions::default()
        };
        let solution = tut_explore::optimise_mapping(&problem, &options);
        match &reference {
            None => reference = Some(solution),
            Some(expected) => assert_eq!(
                expected, &solution,
                "thread count must not change the solution"
            ),
        }
        group.bench_with_input(
            BenchmarkId::new("optimise_5pe_8groups", format!("{threads}threads")),
            &threads,
            |b, _| b.iter(|| tut_explore::optimise_mapping(&problem, &options)),
        );
    }
    // Pinning 2 of the 8 groups shrinks the space 25x (5^8 -> 5^6): the
    // collapse is a bigger lever than any thread count.
    let pinned = MappingOptions {
        pinned: vec![(0, 4), (7, 0)],
        ..MappingOptions::default()
    };
    group.bench_function("optimise_5pe_8groups_2pinned", |b| {
        b.iter(|| tut_explore::optimise_mapping(&problem, &pinned))
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
