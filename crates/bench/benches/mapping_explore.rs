//! Experiment A3: mapping quality — the paper's Figure 8 mapping vs
//! all-on-one-processor vs the exhaustive-search optimum, scored by the
//! bottleneck processing-element busy time over a fixed workload.

use tut_bench::microbench::{criterion_group, criterion_main, Criterion};
use tut_bench::{bottleneck_busy_ns, system_with_mapping, MappingVariant};
use tut_sim::SimConfig;

fn bench_mapping(c: &mut Criterion) {
    let config = SimConfig::with_horizon_ns(10_000_000);
    println!("\nA3: bottleneck busy time over 10 ms of protocol traffic (lower is better)");
    for variant in MappingVariant::ALL {
        let system = system_with_mapping(variant);
        let busy = bottleneck_busy_ns(&system, config.clone());
        println!("  {:<22}: {busy} ns", variant.label());
    }

    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    group.bench_function("optimise_exhaustive", |b| {
        let system = tut_bench::paper_system();
        let report = tut_bench::profile(&system);
        let (problem, _, _) =
            tut_explore::mapping::problem_from_system(&system, &report).expect("problem");
        let options = tut_explore::mapping::MappingOptions::default();
        b.iter(|| tut_explore::optimise_mapping(&problem, &options))
    });
    group.bench_function("evaluate_by_simulation", |b| {
        let system = system_with_mapping(MappingVariant::Paper);
        b.iter(|| bottleneck_busy_ns(&system, SimConfig::with_horizon_ns(2_000_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
