//! Experiment A5: model interchange throughput — XMI serialisation and
//! parsing, scaling with model size.

use tut_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tut_uml::model::ConnectorEnd;
use tut_uml::Model;

/// A synthetic model with `n` classes in a communication chain.
fn synthetic_model(n: usize) -> Model {
    let mut m = Model::new(format!("Synthetic{n}"));
    let sig = m.add_signal("Data");
    m.signal_mut(sig)
        .add_param("payload", tut_uml::DataType::Bytes);
    let top = m.add_class("Top");
    let mut previous: Option<(tut_uml::PropertyId, tut_uml::PortId)> = None;
    for i in 0..n {
        let class = m.add_class(format!("Stage{i}"));
        let pin = m.add_port(class, "in");
        let pout = m.add_port(class, "out");
        m.port_mut(pin).add_provided(sig);
        m.port_mut(pout).add_required(sig);
        let part = m.add_part(top, format!("s{i}"), class);
        if let Some((prev_part, prev_out)) = previous {
            m.add_connector(
                top,
                format!("w{i}"),
                ConnectorEnd {
                    part: Some(prev_part),
                    port: prev_out,
                },
                ConnectorEnd {
                    part: Some(part),
                    port: pin,
                },
            );
        }
        previous = Some((part, pout));
    }
    m
}

fn bench_model_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_interchange");
    group.sample_size(20);
    for n in [10usize, 100, 500] {
        let model = synthetic_model(n);
        let xml = tut_uml::xmi::to_xml(&model);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("serialize", n), &model, |b, m| {
            b.iter(|| tut_uml::xmi::to_xml(m))
        });
        group.bench_with_input(BenchmarkId::new("parse", n), &xml, |b, text| {
            b.iter(|| tut_uml::xmi::from_xml(text).expect("parse"))
        });
    }
    // The real case-study model with the full profile application.
    let system = tut_bench::paper_system();
    let xml = system.to_xml();
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("tutmac_roundtrip", |b| {
        b.iter(|| tut_profile::SystemModel::from_xml(&xml).expect("parse"))
    });
    group.finish();
}

criterion_group!(benches, bench_model_parse);
criterion_main!(benches);
