//! The `repro check` driver: one-shot spanned diagnostics over a model
//! document.
//!
//! Runs the whole front end over an XML model/system document — XML parse,
//! model decode (with statement-level recovery inside embedded textual
//! action language), profile application, UML well-formedness, the
//! TUT-Profile rule catalogue, and a code-generation dry run — and
//! aggregates every finding into one severity-sorted
//! [`DiagnosticBag`]. Model-level findings that carry only an element
//! attribution are given document spans through the
//! [`SpanIndex`](tut_uml::xmi::SpanIndex) built while reading, so the
//! report points at real lines and columns of the input file.

use tut_diag::{render_bag_json, render_bag_text, Diagnostic, DiagnosticBag, SourceMap, Span};
use tut_profile::{SystemModel, TutProfile};
use tut_profile_core::interchange::{applications_from_xml_node, E_PROFILE_INTERCHANGE};
use tut_profile_core::Applications;
use tut_trace::perf;
use tut_uml::error::{Error, E_XML_SYNTAX};
use tut_uml::xmi::{self, E_XMI_STRUCTURE};
use tut_uml::xml::XmlNode;

/// The outcome of checking one document: its source map plus every
/// finding, severity-sorted.
#[derive(Debug)]
pub struct CheckReport {
    source: SourceMap,
    bag: DiagnosticBag,
}

impl CheckReport {
    /// The findings.
    pub fn bag(&self) -> &DiagnosticBag {
        &self.bag
    }

    /// The source the findings refer to.
    pub fn source(&self) -> &SourceMap {
        &self.source
    }

    /// True when at least one error-severity finding fired. This drives
    /// the exit contract: errors → nonzero, warnings only → zero.
    pub fn has_errors(&self) -> bool {
        self.bag.has_errors()
    }

    /// Rustc-style text rendering with source excerpts.
    pub fn render_text(&self) -> String {
        render_bag_text(&self.bag, Some(&self.source))
    }

    /// Machine-readable single-line JSON rendering.
    pub fn render_json(&self) -> String {
        render_bag_json(&self.bag, Some(&self.source))
    }
}

/// Checks a document given as text. `name` labels the source in the
/// report (usually the file path).
pub fn check_source(name: &str, text: &str) -> CheckReport {
    let source = SourceMap::new(name, text);
    let mut bag = DiagnosticBag::new();
    run_stages(text, &mut bag);
    bag.sort();
    CheckReport { source, bag }
}

/// Checks the serialised paper case-study system — the clean baseline
/// that `repro check` runs when no path is given.
pub fn check_paper_system() -> CheckReport {
    let system = crate::paper_system();
    check_source("paper-system.xml", &system.to_xml())
}

fn run_stages(text: &str, bag: &mut DiagnosticBag) {
    // Front-end phases are cold (once per document), so the scoped
    // profiler spans here go through the dynamically-gated module entry
    // points; with profiling off each is a flag load.
    let _check_span = perf::enter_named("check.run");

    // Stage 1: XML parse. A syntax error here leaves nothing to analyse.
    let stage_span = perf::enter_named("check.parse_xml");
    let root = match XmlNode::parse(text) {
        Ok(root) => root,
        Err(Error::XmlSyntax {
            offset, message, ..
        }) => {
            bag.push(Diagnostic::error(E_XML_SYNTAX, message).with_span(Span::point(offset)));
            return;
        }
        Err(e) => {
            bag.push(Diagnostic::error(E_XML_SYNTAX, e.to_string()));
            return;
        }
    };

    // Stage 2: model decode. Embedded textual action language recovers
    // statement-by-statement into `bag`; structural damage stops here.
    let stage_span = stage_span.then_named("check.xmi_decode");
    let (model, index) = match xmi::read_model(&root, bag) {
        Ok(v) => v,
        Err(e) => {
            bag.push(Diagnostic::error(E_XMI_STRUCTURE, e.to_string()));
            return;
        }
    };

    // Stage 3: profile application. A broken subtree degrades to "no
    // applications" so the UML checks still run.
    let stage_span = stage_span.then_named("check.profile_apply");
    let tut = TutProfile::new();
    let apps = match root.child("profileApplication") {
        Some(node) => match applications_from_xml_node(tut.profile(), node) {
            Ok(apps) => apps,
            Err(e) => {
                let mut d = Diagnostic::error(E_PROFILE_INTERCHANGE, e.to_string());
                if node.span != Span::NONE {
                    d = d.with_span(node.span);
                }
                bag.push(d);
                Applications::new()
            }
        },
        None => Applications::new(),
    };
    let system = SystemModel { tut, model, apps };

    // Stage 4: well-formedness (incl. action type-check) + profile rules.
    // Findings carry element attributions; resolve them to declaration
    // spans so the renderer can excerpt the document.
    let stage_span = stage_span.then_named("check.model_rules");
    let mut findings = system.check();
    for d in findings.iter_mut() {
        if d.span.is_none() {
            if let Some(element) = &d.element {
                d.span = index.get(element);
            }
        }
    }
    bag.merge(findings);

    // Stage 5: codegen dry run — the generated files are discarded, only
    // the structural prerequisites are checked.
    let _stage_span = stage_span.then_named("check.codegen_dry_run");
    if let Err(e) = tut_codegen::generate_project(&system) {
        bag.push(Diagnostic::error(e.code(), e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_paper_system_has_no_errors() {
        let report = check_paper_system();
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn xml_syntax_error_is_spanned() {
        let report = check_source("broken.xml", "<xmi:XMI><uml:Model name=");
        assert!(report.has_errors());
        let d = report.bag().first().unwrap();
        assert_eq!(d.code, E_XML_SYNTAX);
        assert!(d.span.is_some());
        assert!(report.render_text().contains("broken.xml:1:"));
    }

    #[test]
    fn structure_error_reported_with_code() {
        let report = check_source("bad.xml", "<xmi:XMI><wrong/></xmi:XMI>");
        assert!(report.has_errors());
        assert_eq!(report.bag().first().unwrap().code, E_XMI_STRUCTURE);
    }

    #[test]
    fn json_rendering_is_single_line() {
        let report = check_source("bad.xml", "<xmi:XMI>");
        let json = report.render_json();
        assert_eq!(json.lines().count(), 1);
        assert!(json.starts_with("{\"summary\""));
    }
}
