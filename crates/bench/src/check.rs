//! The `repro check` driver: one-shot spanned diagnostics over a model
//! document.
//!
//! Runs the whole front end over an XML model/system document — XML parse,
//! model decode (with statement-level recovery inside embedded textual
//! action language), profile application, UML well-formedness, the
//! TUT-Profile rule catalogue, and a code-generation dry run — and
//! aggregates every finding into one severity-sorted
//! [`DiagnosticBag`]. Model-level findings that carry only an element
//! attribution are given document spans through the
//! [`SpanIndex`](tut_uml::xmi::SpanIndex) built while reading, so the
//! report points at real lines and columns of the input file.

use tut_diag::{render_bag_json, render_bag_text, Diagnostic, DiagnosticBag, SourceMap, Span};
use tut_profile::{SystemModel, TutProfile};
use tut_profile_core::interchange::{applications_from_xml_node, E_PROFILE_INTERCHANGE};
use tut_profile_core::Applications;
use tut_trace::perf;
use tut_uml::error::{Error, E_XML_SYNTAX};
use tut_uml::xmi::{self, E_XMI_STRUCTURE};
use tut_uml::xml::XmlNode;

/// The outcome of checking one document: its source map plus every
/// finding, severity-sorted.
#[derive(Debug)]
pub struct CheckReport {
    source: SourceMap,
    bag: DiagnosticBag,
}

impl CheckReport {
    /// The findings.
    pub fn bag(&self) -> &DiagnosticBag {
        &self.bag
    }

    /// The source the findings refer to.
    pub fn source(&self) -> &SourceMap {
        &self.source
    }

    /// True when at least one error-severity finding fired. This drives
    /// the exit contract: errors → nonzero, warnings only → zero.
    pub fn has_errors(&self) -> bool {
        self.bag.has_errors()
    }

    /// Rustc-style text rendering with source excerpts.
    pub fn render_text(&self) -> String {
        render_bag_text(&self.bag, Some(&self.source))
    }

    /// Machine-readable single-line JSON rendering.
    pub fn render_json(&self) -> String {
        render_bag_json(&self.bag, Some(&self.source))
    }
}

/// Checks a document given as text. `name` labels the source in the
/// report (usually the file path).
pub fn check_source(name: &str, text: &str) -> CheckReport {
    let source = SourceMap::new(name, text);
    let mut bag = DiagnosticBag::new();
    run_stages(text, &mut bag);
    bag.sort();
    CheckReport { source, bag }
}

/// Checks the serialised paper case-study system — the clean baseline
/// that `repro check` runs when no path is given.
pub fn check_paper_system() -> CheckReport {
    let system = crate::paper_system();
    check_source("paper-system.xml", &system.to_xml())
}

fn run_stages(text: &str, bag: &mut DiagnosticBag) {
    // Front-end phases are cold (once per document), so the scoped
    // profiler spans here go through the dynamically-gated module entry
    // points; with profiling off each is a flag load.
    let _check_span = perf::enter_named("check.run");

    // Stage 1: XML parse. A syntax error here leaves nothing to analyse.
    let stage_span = perf::enter_named("check.parse_xml");
    let root = match XmlNode::parse(text) {
        Ok(root) => root,
        Err(Error::XmlSyntax {
            offset, message, ..
        }) => {
            bag.push(Diagnostic::error(E_XML_SYNTAX, message).with_span(Span::point(offset)));
            return;
        }
        Err(e) => {
            bag.push(Diagnostic::error(E_XML_SYNTAX, e.to_string()));
            return;
        }
    };

    // Stage 2: model decode. Embedded textual action language recovers
    // statement-by-statement into `bag`; structural damage stops here.
    let stage_span = stage_span.then_named("check.xmi_decode");
    let (model, index) = match xmi::read_model(&root, bag) {
        Ok(v) => v,
        Err(e) => {
            bag.push(Diagnostic::error(E_XMI_STRUCTURE, e.to_string()));
            return;
        }
    };

    // Stage 3: profile application. A broken subtree degrades to "no
    // applications" so the UML checks still run.
    let stage_span = stage_span.then_named("check.profile_apply");
    let tut = TutProfile::new();
    let apps = match root.child("profileApplication") {
        Some(node) => match applications_from_xml_node(tut.profile(), node) {
            Ok(apps) => apps,
            Err(e) => {
                let mut d = Diagnostic::error(E_PROFILE_INTERCHANGE, e.to_string());
                if node.span != Span::NONE {
                    d = d.with_span(node.span);
                }
                bag.push(d);
                Applications::new()
            }
        },
        None => Applications::new(),
    };
    let system = SystemModel { tut, model, apps };

    // Stage 4: well-formedness (incl. action type-check) + profile rules.
    // Findings carry element attributions; resolve them to declaration
    // spans so the renderer can excerpt the document.
    let stage_span = stage_span.then_named("check.model_rules");
    let mut findings = system.check();
    for d in findings.iter_mut() {
        if d.span.is_none() {
            if let Some(element) = &d.element {
                d.span = index.get(element);
            }
        }
    }
    bag.merge(findings);

    // Stage 5: codegen dry run — the generated files are discarded, only
    // the structural prerequisites are checked.
    let stage_span = stage_span.then_named("check.codegen_dry_run");
    if let Some(d) = tut_codegen::dry_run_diagnostic(&system) {
        bag.push(d);
    }

    // Stage 6: simulation-setup dry run — lowering the platform for the
    // simulator re-derives every tagged value with checked conversions,
    // so attributes outside the representable range of the engine (and
    // the HIBI RTL it models) surface here as spanned E0410 findings
    // instead of truncating silently at simulation time. Errors without
    // a stable diagnostic code (no application, missing behaviour, …)
    // are structural conditions the model rules already cover and are
    // not re-reported.
    let _stage_span = stage_span.then_named("check.sim_setup");
    if let Some(mut d) = tut_sim::setup_diagnostic(&system, tut_sim::SimConfig::default()) {
        if let Some(element) = &d.element {
            if let Some(span) = index.get(element) {
                d.span = Some(span);
            }
        }
        bag.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_profile::application::ProcessType;
    use tut_profile::platform::ComponentKind;
    use tut_uml::action::{CostClass, Expr, Statement};
    use tut_uml::statemachine::{StateMachine, Trigger};

    /// A small simulatable system whose HIBI segment declares a
    /// `DataWidth` wider than the engine (or the RTL it models) can
    /// represent — the shape `fixtures/check_param_range.xml` was
    /// serialised from.
    fn wide_segment_system() -> SystemModel {
        use tut_profile_core::TagValue;
        let mut s = SystemModel::new("WideBus");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let comp = s.model.add_class("Ticker");
        s.apply(comp, |t| t.application_component).unwrap();
        let mut sm = StateMachine::new("B");
        let run = sm.add_state_with_entry(
            "Run",
            vec![Statement::SetTimer {
                name: "tick".into(),
                duration: Expr::int(1000),
            }],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("tick".into()),
            None,
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(100),
                },
                Statement::SetTimer {
                    name: "tick".into(),
                    duration: Expr::int(1000),
                },
            ],
        );
        s.model.add_state_machine(comp, sm);
        let part = s.model.add_part(top, "ticker", comp);
        s.apply(part, |t| t.application_process).unwrap();
        let group = s.add_process_group("group1", false, ProcessType::General);
        s.assign_to_group(part, group);

        let platform = s.model.add_class("Plat");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let seg_class = s.model.add_class("Seg");
        s.apply_with(
            seg_class,
            |t| t.hibi_segment,
            [
                // u32::MAX is 4294967295; this cannot be lowered.
                ("DataWidth", TagValue::Int(5_000_000_000)),
                ("Frequency", TagValue::Int(100)),
                ("Arbitration", TagValue::Enum("priority".into())),
            ],
        )
        .unwrap();
        s.model.add_part(platform, "seg1", seg_class);
        let group_class = s.model.find_class("group1").unwrap();
        s.map_group(group_class, cpu, false);
        s
    }

    #[test]
    fn clean_paper_system_has_no_errors() {
        let report = check_paper_system();
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn sim_setup_dry_run_reports_param_range_with_span() {
        let system = wide_segment_system();
        let report = check_source("wide.xml", &system.to_xml());
        assert!(report.has_errors(), "{}", report.render_text());
        let d = report
            .bag()
            .iter()
            .find(|d| d.code == tut_sim::E_PARAM_RANGE)
            .unwrap_or_else(|| panic!("no E0410 finding:\n{}", report.render_text()));
        assert!(d.message.contains("DataWidth"), "{}", d.message);
        assert!(d.span.is_some(), "E0410 resolves to a document span");
        assert!(report.render_text().contains("E0410"));
    }

    #[test]
    fn param_range_fixture_is_detected() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/fixtures/check_param_range.xml"
        );
        let text = std::fs::read_to_string(path).expect("committed fixture present");
        let report = check_source("check_param_range.xml", &text);
        assert!(report.has_errors(), "{}", report.render_text());
        assert!(
            report
                .bag()
                .iter()
                .any(|d| d.code == tut_sim::E_PARAM_RANGE),
            "fixture must trip E0410:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn xml_syntax_error_is_spanned() {
        let report = check_source("broken.xml", "<xmi:XMI><uml:Model name=");
        assert!(report.has_errors());
        let d = report.bag().first().unwrap();
        assert_eq!(d.code, E_XML_SYNTAX);
        assert!(d.span.is_some());
        assert!(report.render_text().contains("broken.xml:1:"));
    }

    #[test]
    fn structure_error_reported_with_code() {
        let report = check_source("bad.xml", "<xmi:XMI><wrong/></xmi:XMI>");
        assert!(report.has_errors());
        assert_eq!(report.bag().first().unwrap().code, E_XMI_STRUCTURE);
    }

    #[test]
    fn json_rendering_is_single_line() {
        let report = check_source("bad.xml", "<xmi:XMI>");
        let json = report.render_json();
        assert_eq!(json.lines().count(), 1);
        assert!(json.starts_with("{\"summary\""));
    }
}
