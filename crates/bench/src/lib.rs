//! Shared harness code for the benchmark suite and the table/figure
//! reproduction binary (`repro`).
//!
//! See `DESIGN.md` §4 for the experiment index: every table and figure of
//! the paper maps to a `repro` subcommand here, and every
//! performance-bearing question to a Criterion bench under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tut_profile::SystemModel;
use tut_profiling::ProfilingReport;
use tut_sim::SimConfig;
use tutmac::{TutmacConfig, TutmacHandles};

/// Builds the paper's case-study system with default calibration.
///
/// # Panics
///
/// Panics if the builder fails (a bug, covered by the tutmac tests).
pub fn paper_system() -> SystemModel {
    tutmac::build_tutmac_system(&TutmacConfig::default()).expect("tutmac builds")
}

/// Builds the paper system together with its element handles.
///
/// # Panics
///
/// Panics if the builder fails.
pub fn paper_system_with_handles() -> (SystemModel, TutmacHandles) {
    tutmac::model::build_with_handles(&TutmacConfig::default()).expect("tutmac builds")
}

/// The simulation horizon used by the Table 4 reproduction (20 ms of
/// protocol time).
pub fn table4_config() -> SimConfig {
    SimConfig::with_horizon_ns(20_000_000)
}

/// Mapping variants compared by the mapping-exploration experiment (A3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MappingVariant {
    /// The paper's Figure 8 mapping (as built).
    Paper,
    /// Everything (including the CRC group) on `processor1`.
    AllOnProcessor1,
    /// The assignment found by `tut-explore`'s exhaustive search.
    Optimised,
}

impl MappingVariant {
    /// All variants in report order.
    pub const ALL: [MappingVariant; 3] = [
        MappingVariant::Paper,
        MappingVariant::AllOnProcessor1,
        MappingVariant::Optimised,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MappingVariant::Paper => "paper (fig. 8)",
            MappingVariant::AllOnProcessor1 => "all-on-processor1",
            MappingVariant::Optimised => "explore-optimised",
        }
    }
}

/// Returns the paper system remapped according to `variant`.
///
/// # Panics
///
/// Panics on internal pipeline failures (covered by tests).
pub fn system_with_mapping(variant: MappingVariant) -> SystemModel {
    let (mut system, handles) = paper_system_with_handles();
    match variant {
        MappingVariant::Paper => system,
        MappingVariant::AllOnProcessor1 => {
            // group4's mapping is fixed (accelerator); the rest moves.
            let groups = [
                handles.groups[0],
                handles.groups[1],
                handles.groups[2],
                handles.groups[3],
            ];
            let instances = vec![
                handles.processors[0],
                handles.processors[1],
                handles.processors[2],
                handles.accelerator,
            ];
            tut_explore::apply::apply_mapping(&mut system, &groups, &instances, &[0, 0, 0, 0]);
            system
        }
        MappingVariant::Optimised => {
            let report = tut_profiling::profile_system(&system, table4_config()).expect("profile");
            let (problem, groups, instances) =
                tut_explore::mapping::problem_from_system(&system, &report).expect("problem");
            // Pin group4 where its Fixed mapping already holds it.
            let acc_index = instances
                .iter()
                .position(|&p| p == handles.accelerator)
                .expect("accelerator instance present");
            let options = tut_explore::mapping::MappingOptions {
                pinned: vec![(3, acc_index)],
                ..Default::default()
            };
            let solution = tut_explore::optimise_mapping(&problem, &options);
            tut_explore::apply::apply_mapping(
                &mut system,
                &groups,
                &instances,
                &solution.assignment,
            );
            system
        }
    }
}

/// Profiles a system with the Table 4 horizon.
///
/// # Panics
///
/// Panics if the pipeline fails.
pub fn profile(system: &SystemModel) -> ProfilingReport {
    tut_profiling::profile_system(system, table4_config()).expect("profiling pipeline")
}

/// The bottleneck processing-element busy time of a simulation — the
/// makespan-style score the mapping experiment compares.
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn bottleneck_busy_ns(system: &SystemModel, config: SimConfig) -> u64 {
    let report = tut_sim::Simulation::from_system(system, config)
        .expect("simulation builds")
        .run()
        .expect("simulation runs");
    report
        .pes
        .iter()
        .filter(|(_, s)| !s.is_env)
        .map(|(_, s)| s.busy_ns)
        .max()
        .unwrap_or(0)
}

pub mod benchcheck;
pub mod check;
pub mod faultsweep;
pub mod figures;
pub mod incremental;
pub mod jobs;
pub mod microbench;
pub mod profile_cmd;
pub mod simbench;
pub mod watch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_variants_build_and_differ() {
        let paper = system_with_mapping(MappingVariant::Paper);
        let all_one = system_with_mapping(MappingVariant::AllOnProcessor1);
        assert_ne!(paper.apps, all_one.apps);
    }

    #[test]
    fn optimised_mapping_is_no_worse_than_all_on_one() {
        let config = SimConfig::with_horizon_ns(5_000_000);
        let all_one = bottleneck_busy_ns(
            &system_with_mapping(MappingVariant::AllOnProcessor1),
            config.clone(),
        );
        let optimised = bottleneck_busy_ns(&system_with_mapping(MappingVariant::Optimised), config);
        assert!(
            optimised <= all_one,
            "optimised {optimised} should not exceed all-on-one {all_one}"
        );
    }
}
