//! The fault-injection reliability campaign: sweep the channel bit-error
//! rate over the TUTMAC case study and measure what the ARQ machinery
//! delivers (experiment R1 in `EXPERIMENTS.md`).
//!
//! Each point runs the full profiling pipeline under a seeded
//! [`FaultPlan`], so every figure below comes out of the same log-file
//! boundary the paper's tooling used: `arq.*` counters are `CNT` records
//! counted by the `rca` process itself, fault totals are `FAULT` records
//! written by the engine.

use tut_faults::{FaultConfig, FaultPlan};
use tut_profiling::{ProfilingError, ProfilingReport};
use tut_sim::SimConfig;
use tut_trace::{perf, Progress};

/// The BER points of the full sweep, weakest to strongest.
pub const SWEEP_BERS: [f64; 5] = [0.0, 1e-6, 1e-5, 1e-4, 1e-3];

/// The seed every reproduction run uses (the campaign is deterministic:
/// same seed + same BER = same table).
pub const SWEEP_SEED: u64 = 0x7071;

/// One row of the reliability table.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepPoint {
    /// Channel bit-error rate of this run.
    pub ber: f64,
    /// Frames the ARQ sender transmitted (`arq.tx`).
    pub tx: i64,
    /// Frames acknowledged by the receiving terminal (`arq.acked`).
    pub acked: i64,
    /// Retransmissions (`arq.retries`).
    pub retries: i64,
    /// Frames abandoned after the retry cap (`arq.gave_up`).
    pub gave_up: i64,
    /// Transfers the fault model corrupted in flight.
    pub corrupted: u64,
    /// Simulated horizon of the run (ns).
    pub horizon_ns: u64,
    /// Acknowledged payload bytes (delivered fragments × fragment size).
    pub goodput_bytes: u64,
}

impl SweepPoint {
    /// Fraction of transmitted frames that were acknowledged.
    pub fn delivery_ratio(&self) -> f64 {
        if self.tx == 0 {
            0.0
        } else {
            self.acked as f64 / self.tx as f64
        }
    }

    /// Mean retransmissions per transmitted frame.
    pub fn mean_retries(&self) -> f64 {
        if self.tx == 0 {
            0.0
        } else {
            self.retries as f64 / self.tx as f64
        }
    }

    /// Acknowledged payload throughput in Mbit/s of simulated time.
    pub fn goodput_mbps(&self) -> f64 {
        if self.horizon_ns == 0 {
            0.0
        } else {
            (self.goodput_bytes as f64 * 8.0) / (self.horizon_ns as f64 / 1000.0)
        }
    }
}

/// Extracts a [`SweepPoint`] from a profiling report.
fn point_from_report(ber: f64, fragment_bytes: i64, report: &ProfilingReport) -> SweepPoint {
    let acked = report.counter_total("arq.acked");
    SweepPoint {
        ber,
        tx: report.counter_total("arq.tx"),
        acked,
        retries: report.counter_total("arq.retries"),
        gave_up: report.counter_total("arq.gave_up"),
        corrupted: report.faults.corrupted,
        horizon_ns: report.horizon_ns,
        goodput_bytes: (acked.max(0) as u64) * (fragment_bytes.max(0) as u64),
    }
}

/// Runs one BER point of the campaign on the paper system.
///
/// # Errors
///
/// Propagates any failure of the profiling pipeline; a broken case-study
/// model surfaces as [`ProfilingError::Model`].
pub fn run_point(ber: f64, seed: u64, config: SimConfig) -> Result<SweepPoint, ProfilingError> {
    run_point_threads(ber, seed, config, 1)
}

/// [`run_point`] with the simulation stage on `lp_threads` workers of
/// the conservative parallel kernel (1 = serial engine). The merged
/// parallel log is bit-identical to serial, so the point is the same at
/// any thread count — the knob only spends host parallelism.
///
/// # Errors
///
/// Propagates any failure of the profiling pipeline; a broken case-study
/// model surfaces as [`ProfilingError::Model`].
pub fn run_point_threads(
    ber: f64,
    seed: u64,
    config: SimConfig,
    lp_threads: usize,
) -> Result<SweepPoint, ProfilingError> {
    let _point_span = perf::enter_named("fault_sweep.point");
    let tutmac_config = tutmac::TutmacConfig::default();
    let system = tutmac::build_tutmac_system(&tutmac_config)
        .map_err(|e| ProfilingError::Model(format!("tutmac case study failed to build: {e}")))?;
    let mut plan = FaultPlan::new(FaultConfig::with_ber(seed, ber));
    let report = if lp_threads > 1 {
        tut_profiling::profile_system_parallel(&system, config, lp_threads, &plan)
    } else {
        tut_profiling::profile_system_with_faults(
            &system,
            config,
            &mut plan,
            &mut tut_trace::NoopSink,
        )
    }?;
    Ok(point_from_report(
        ber,
        tutmac_config.fragment_bytes,
        &report,
    ))
}

/// Runs the full campaign over [`SWEEP_BERS`].
///
/// # Errors
///
/// Propagates the first failed point.
pub fn run_sweep(config: &SimConfig) -> Result<Vec<SweepPoint>, ProfilingError> {
    run_sweep_threads(config, 1)
}

/// Runs the full campaign over [`SWEEP_BERS`] on a budget of `threads`
/// workers (0 = all cores).
///
/// The budget is split between the two layers of parallelism: up to one
/// sweep worker per BER point (each filling a disjoint slice of the
/// result vector, exactly like `tut_explore::parallel`), and any surplus
/// divided evenly among the workers as intra-run LP threads for the
/// conservative parallel kernel. Both layers are bit-identical to their
/// serial counterparts, so the output is the same table at any thread
/// count.
///
/// # Errors
///
/// Propagates the first failed point (in BER order).
pub fn run_sweep_threads(
    config: &SimConfig,
    threads: usize,
) -> Result<Vec<SweepPoint>, ProfilingError> {
    run_sweep_observed(config, threads, &Progress::disabled())
}

/// [`run_sweep_threads`] plus host observability: every BER point becomes
/// a `fault_sweep.point` self-profiler frame and ticks `progress` when it
/// finishes, so long sweeps show a live stderr heartbeat. Observation
/// never changes the table.
///
/// # Errors
///
/// Propagates the first failed point (in BER order).
pub fn run_sweep_observed(
    config: &SimConfig,
    threads: usize,
    progress: &Progress,
) -> Result<Vec<SweepPoint>, ProfilingError> {
    // One thread budget for both layers: outer sweep workers first (one
    // per point at most), then the surplus as LP threads inside each run.
    // An oversubscribed budget (more workers than logical CPUs) only
    // adds coordination cost for time-sliced "parallelism", so it falls
    // back to the serial sweep instead.
    let budget = if sweep_falls_back_to_serial(threads) {
        1
    } else {
        tut_explore::parallel::resolve_threads(threads)
    };
    let outer = budget.min(SWEEP_BERS.len()).max(1);
    let lp_threads = (budget / outer).max(1);
    if outer <= 1 {
        return SWEEP_BERS
            .iter()
            .map(|&ber| {
                let point = run_point_threads(ber, SWEEP_SEED, config.clone(), lp_threads)?;
                progress.tick();
                Ok(point)
            })
            .collect();
    }
    let ranges = tut_explore::parallel::shard_ranges(SWEEP_BERS.len() as u64, outer);
    let mut results: Vec<Option<Result<SweepPoint, ProfilingError>>> =
        (0..SWEEP_BERS.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        for range in &ranges {
            let len = (range.end - range.start) as usize;
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let start = range.start as usize;
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    let ber = SWEEP_BERS[start + offset];
                    *slot = Some(run_point_threads(
                        ber,
                        SWEEP_SEED,
                        config.clone(),
                        lp_threads,
                    ));
                    progress.tick();
                }
            });
        }
    });
    // First failure in BER order wins, matching the serial path.
    results
        .into_iter()
        .map(|p| p.expect("every shard fills its slots"))
        .collect()
}

/// True when a sweep on `threads` workers would oversubscribe the host
/// and [`run_sweep_threads`] therefore serves it with the serial sweep
/// (recorded as `fallback: "serial"` in the bench's `sweep` block).
pub fn sweep_falls_back_to_serial(threads: usize) -> bool {
    let logical = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    tut_explore::parallel::resolve_threads(threads) > logical
}

/// Renders the reliability table.
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "BER      | tx     | acked  | delivery | retries | mean r/f | gave up | corrupted | goodput\n",
    );
    out.push_str(
        "---------+--------+--------+----------+---------+----------+---------+-----------+--------\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<8} | {:>6} | {:>6} | {:>7.1} % | {:>7} | {:>8.3} | {:>7} | {:>9} | {:>5.2} Mbit/s\n",
            format!("{:.0e}", p.ber),
            p.tx,
            p.acked,
            p.delivery_ratio() * 100.0,
            p.retries,
            p.mean_retries(),
            p.gave_up,
            p.corrupted,
            p.goodput_mbps(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = SweepPoint {
            ber: 1e-4,
            tx: 100,
            acked: 90,
            retries: 25,
            gave_up: 4,
            corrupted: 30,
            horizon_ns: 10_000_000,
            goodput_bytes: 90 * 256,
        };
        assert!((p.delivery_ratio() - 0.9).abs() < 1e-12);
        assert!((p.mean_retries() - 0.25).abs() < 1e-12);
        assert!(p.goodput_mbps() > 0.0);

        let empty = SweepPoint {
            tx: 0,
            acked: 0,
            retries: 0,
            gave_up: 0,
            corrupted: 0,
            horizon_ns: 0,
            goodput_bytes: 0,
            ber: 0.0,
        };
        assert_eq!(empty.delivery_ratio(), 0.0);
        assert_eq!(empty.mean_retries(), 0.0);
        assert_eq!(empty.goodput_mbps(), 0.0);
    }

    /// The parallel sweep is bit-identical to the serial sweep at any
    /// thread count (each point is an independent seeded run filling a
    /// disjoint result slot). The largest budget oversubscribes the
    /// point count, so the surplus flows into intra-run LP threads and
    /// the parallel simulation kernel is exercised too.
    #[test]
    fn parallel_sweep_matches_serial_at_any_thread_count() {
        let config = SimConfig::with_horizon_ns(2_000_000);
        let serial = run_sweep_threads(&config, 1).expect("serial sweep");
        for threads in [2, 3, SWEEP_BERS.len() + 2, 2 * SWEEP_BERS.len() + 2] {
            let parallel = run_sweep_threads(&config, threads).expect("parallel sweep");
            assert_eq!(parallel, serial, "{threads} threads diverged from serial");
        }
    }

    #[test]
    fn render_lists_every_point() {
        let points = vec![
            SweepPoint {
                ber: 0.0,
                tx: 10,
                acked: 10,
                retries: 0,
                gave_up: 0,
                corrupted: 0,
                horizon_ns: 1_000_000,
                goodput_bytes: 2560,
            },
            SweepPoint {
                ber: 1e-3,
                tx: 10,
                acked: 5,
                retries: 20,
                gave_up: 5,
                corrupted: 25,
                horizon_ns: 1_000_000,
                goodput_bytes: 1280,
            },
        ];
        let text = render(&points);
        assert!(text.contains("delivery"));
        assert_eq!(text.lines().count(), 4, "header + rule + 2 rows");
    }
}
