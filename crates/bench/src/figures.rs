//! Text renderings of the paper's figures, generated from the live model.

use tut_profile::SystemModel;
use tut_uml::diagram::{self, DiagramOptions};

use crate::paper_system_with_handles;

fn label_options(system: &SystemModel) -> DiagramOptions<'_> {
    DiagramOptions::with_labels(move |element| system.stereotype_label(element))
}

/// Figure 4: the TUTMAC class diagram.
pub fn fig4() -> String {
    let (system, handles) = paper_system_with_handles();
    let mut out = String::from("Figure 4. TUTMAC class diagram of an application.\n\n");
    out.push_str(&diagram::class_diagram(
        &system.model,
        handles.protocol,
        &label_options(&system),
    ));
    out
}

/// Figure 5: the composite structure of `Tutmac_Protocol`.
pub fn fig5() -> String {
    let (system, handles) = paper_system_with_handles();
    let mut out = String::from(
        "Figure 5. Composite structure diagram of Tutmac_Protocol class in the TUTMAC application.\n\n",
    );
    out.push_str(&diagram::composite_structure_diagram(
        &system.model,
        handles.protocol,
        &label_options(&system),
    ));
    out
}

/// Figure 6: the TUTMAC process grouping.
pub fn fig6() -> String {
    let (system, _) = paper_system_with_handles();
    let mut out =
        String::from("Figure 6. TUTMAC process grouping using composite structure diagram.\n\n");
    for group in system.application().groups() {
        let fixed = if group.fixed { " (fixed)" } else { "" };
        out.push_str(&format!(
            "  \u{ab}ProcessGroup\u{bb} {}:ProcessGroup [{}]{}\n",
            group.name, group.process_type, fixed
        ));
        for member in &group.members {
            let prop = system.model.property(*member);
            let owner = system.model.class(prop.owner()).name();
            out.push_str(&format!("    ...::{}::{}\n", owner, prop.name()));
        }
    }
    out.push_str("  (user, channel remain in the environment)\n");
    out
}

/// Figure 7: the TUTWLAN platform composite structure.
pub fn fig7() -> String {
    let (system, _) = paper_system_with_handles();
    let platform = system.platform();
    let mut out = String::from(
        "Figure 7. Stereotyped composite structure diagram for the TUTWLAN platform.\n\n",
    );
    for segment in platform.segments() {
        out.push_str(&format!(
            "  \u{ab}HIBISegment\u{bb} {}: {} MHz, {} bit, {} arbitration\n",
            segment.name, segment.frequency, segment.data_width, segment.arbitration
        ));
        for attachment in platform.attachments() {
            if attachment.segment != segment.part {
                continue;
            }
            let instance = platform
                .instance(attachment.pe)
                .expect("attachment pe exists");
            out.push_str(&format!(
                "    \u{ab}PlatformComponentInstance\u{bb} {}: {} ({} MHz) via \u{ab}HIBIWrapper\u{bb} {} @{:#x}\n",
                instance.name,
                system.model.class(instance.component).name(),
                instance.frequency,
                attachment.wrapper.name,
                attachment.wrapper.address.unwrap_or(0),
            ));
        }
    }
    for bridge in platform.bridges() {
        out.push_str(&format!(
            "  bridge: {} <-> {}\n",
            system.model.property(bridge.a).name(),
            system.model.property(bridge.b).name()
        ));
    }
    out
}

/// Figure 8: the mapping of TUTMAC groups onto the TUTWLAN platform.
pub fn fig8() -> String {
    let (system, _) = paper_system_with_handles();
    let mut out = String::from("Figure 8. Mapping the TUTMAC protocol to TUTWLAN platform.\n\n");
    for mapping in system.mapping().mappings() {
        let group = system.model.class(mapping.group).name();
        let instance = system.model.property(mapping.instance);
        let component = system.model.class(instance.type_()).name();
        let fixed = if mapping.fixed { " (fixed)" } else { "" };
        out.push_str(&format!(
            "  \u{ab}ProcessGroup\u{bb} {group} --\u{ab}PlatformMapping\u{bb}{fixed}--> \u{ab}PlatformComponentInstance\u{bb} {}: {component}\n",
            instance.name(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_names_the_protocol_and_components() {
        let text = fig4();
        assert!(text.contains("Tutmac_Protocol"));
        assert!(text.contains("\u{ab}Application\u{bb}"));
        assert!(text.contains("part rca : RadioChannelAccess"));
        assert!(text.contains("part ui : UserInterface"));
    }

    #[test]
    fn fig5_lists_connectors() {
        let text = fig5();
        assert!(text.contains("connector dpToRca"));
        assert!(text.contains("connector mngToRca"));
        assert!(text.contains("part mng : Management"));
    }

    #[test]
    fn fig6_reproduces_the_grouping() {
        let text = fig6();
        assert!(text.contains("group1:ProcessGroup"));
        assert!(text.contains("...::Tutmac_Protocol::rca"));
        assert!(text.contains("...::UserInterface::msduRec"));
        assert!(text.contains("...::DataProcessing::frag"));
        assert!(text.contains("group4"));
    }

    #[test]
    fn fig7_reproduces_the_platform() {
        let text = fig7();
        assert!(text.contains("hibisegment1"));
        assert!(text.contains("processor1"));
        assert!(text.contains("accelerator1"));
        assert!(text.contains("bridge"));
    }

    #[test]
    fn fig8_reproduces_the_mapping() {
        let text = fig8();
        assert!(text.contains("group1"));
        assert!(text.contains("processor1"));
        assert!(text.contains("accelerator1"));
        assert!(text.contains("(fixed)"));
    }
}
