//! Regenerates every table and figure of the paper from the live
//! implementation.
//!
//! ```text
//! cargo run -p tut-bench --bin repro -- all
//! cargo run -p tut-bench --bin repro -- table4
//! cargo run -p tut-bench --bin repro -- fig6 fig8
//! ```
//!
//! Observability exports (run the TUTMAC case study traced and write
//! the artefacts; combinable with any item list):
//!
//! ```text
//! cargo run -p tut-bench --bin repro -- --trace out.json   # Chrome/Perfetto
//! cargo run -p tut-bench --bin repro -- --vcd bus.vcd      # GTKWave waveform
//! cargo run -p tut-bench --bin repro -- --prom metrics.txt # Prometheus text
//! ```
//!
//! `--threads N` runs the exploration stages (the `explore` item) and
//! the fault-sweep / bench items on a budget of N worker threads
//! (0 = all cores); results are bit-identical at every thread count.
//! The fault sweep splits the budget between sweep workers and intra-run
//! logical processes of the conservative parallel simulation kernel, and
//! the bench item clamps it to the host's logical CPUs before timing
//! anything.
//!
//! Durable campaigns (crash-resumable `explore` and `fault-sweep`):
//!
//! ```text
//! cargo run -rp tut-bench --bin repro -- fault-sweep --store runs/
//! cargo run -rp tut-bench --bin repro -- fault-sweep --store runs/ --resume
//! cargo run -rp tut-bench --bin repro -- explore --store runs/ --resume
//! ```
//!
//! `--store DIR` checkpoints every finished work unit (BER point,
//! annealing restart, mapping shard) into CRC-checked append-only
//! journals under DIR; `--resume` replays the completed prefix of a
//! killed run instead of recomputing it and prints `resumed=N total=M`.
//! A resumed run is bit-identical to an uninterrupted one at any thread
//! count; a stale or corrupted journal degrades to a fresh start with a
//! `W0501`/`W0502` warning, never a panic (DESIGN.md §12).
//!
//! Model checking (parse → validate → profile rules → codegen dry run,
//! one aggregated severity-sorted report with source spans):
//!
//! ```text
//! cargo run -p tut-bench --bin repro -- check model.xml    # rustc-style text
//! cargo run -p tut-bench --bin repro -- check --json m.xml # machine-readable
//! cargo run -p tut-bench --bin repro -- check              # clean TUTMAC baseline
//! ```
//!
//! `check` exits nonzero when any error-severity finding fired; warnings
//! alone keep the exit status at zero. It runs on the incremental query
//! engine: `--cache-stats` appends per-stage hit/miss counters,
//! `--store DIR` persists the report cache across runs, `watch m.xml`
//! re-checks on every save, and `bench-check` measures (and gates) the
//! warm-re-check speedup into `BENCH_check.json`.
//!
//! Self-profiling (where the tool's own host time goes):
//!
//! ```text
//! cargo run -rp tut-bench --bin repro -- profile            # hotspot table
//! cargo run -rp tut-bench --bin repro -- profile --folded   # flamegraph stacks
//! cargo run -rp tut-bench --bin repro -- profile --json     # Chrome trace
//! cargo run -rp tut-bench --bin repro -- profile bench --quick
//! ```
//!
//! Long-running items (`explore`, `fault-sweep`, `bench`) print a
//! throttled `[progress]` heartbeat to stderr (done/total, rate, ETA,
//! best objective); `--no-progress` silences it. stdout never carries
//! heartbeats, so piped output stays machine-clean.

use tut_bench::figures;
use tut_profile::{tables, TutProfile};
use tut_profiling::render_table4;
use tut_trace::{NoopSink, Progress, Recorder};

fn print_fig1() {
    println!("Figure 1. Design flow with TUT-Profile.");
    println!();
    println!("  UML 2.0 (TUT-Profile) -> tools -> prototype");
    println!("  tools: this repository replaces Telelogic TAU G2 + the TCL profiling tool;");
    println!("  the physical Altera FPGA prototype is replaced by the tut-sim / tut-hibi");
    println!("  co-simulation (see DESIGN.md section 2 for the substitution table).");
    println!();
    println!("{}", tut_profile::flow::render_flow());
}

fn print_fig2() {
    println!("Figure 2. TUT-Profile design and profiling flow — executed live:");
    println!();
    let system = tut_bench::paper_system();

    // Stage: validation.
    let findings = system.validate();
    println!(
        "  [validate]     {} findings (errors: {})",
        findings.len(),
        findings.iter().filter(|f| f.starts_with("[error]")).count()
    );

    // Stage: model parsing (XML text boundary).
    let xml = system.to_xml();
    let groups = tut_profiling::groups::parse_model_xml(&xml).expect("model parses");
    println!(
        "  [model parse]  {} bytes of XML -> {} groups, {} processes",
        xml.len(),
        groups.groups.len(),
        groups.process_count()
    );

    // Stage: code generation.
    let files = tut_codegen::generate_project(&system).expect("codegen");
    let loc: usize = files.iter().map(|f| f.contents.lines().count()).sum();
    println!("  [codegen]      {} C files, {} lines", files.len(), loc);

    // Stage: simulation.
    let report = tut_sim::Simulation::from_system(&system, tut_bench::table4_config())
        .expect("sim builds")
        .run()
        .expect("sim runs");
    println!("  [simulate]     {}", report.summary());
    let log_text = report.log.to_text();
    println!(
        "  [log-file]     {} bytes, {} records",
        log_text.len(),
        report.log.len()
    );

    // Stage: profiling.
    let profile = tut_profiling::analyze(&groups, &log_text).expect("analysis");
    println!(
        "  [profile]      {} groups, dominant: {}",
        profile.group_exec.len(),
        profile
            .dominant_group()
            .map(|g| g.group.as_str())
            .unwrap_or("-")
    );
    for suggestion in tut_profiling::suggest::suggest(&profile, 0.85) {
        println!("  [suggest]      {suggestion}");
    }
}

fn print_table4() {
    let system = tut_bench::paper_system();
    let report = tut_bench::profile(&system);
    println!("{}", render_table4(&report));
    println!("Paper reference (Table 4a): Group1 92.1 %, Group2 5.2 %, Group3 2.5 %,");
    println!("Group4 0.2 %, Environment 0.0 % — compare the Proportion column above.");
}

fn print_transfers() {
    let system = tut_bench::paper_system();
    let report = tut_bench::profile(&system);
    println!("{}", tut_profiling::report::render_transfers(&report));
}

/// Runs the automated exploration loop of §4.5 — partition the measured
/// communication graph, then search the group→element mapping — on
/// `threads` workers. With `store`, the run is durable: every restart
/// and shard is journalled and `resume` replays completed units.
fn print_explore(threads: usize, progress: bool, store: Option<&std::path::Path>, resume: bool) {
    if let Some(dir) = store {
        return print_explore_durable(threads, progress, dir, resume);
    }
    println!("Design-space exploration (grouping + mapping) on {threads} thread(s).");
    println!();
    let (system, handles) = tut_bench::paper_system_with_handles();
    let report = tut_bench::profile(&system);

    let graph = tut_explore::CommGraph::from_report(&report);
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let options = tut_explore::GroupingOptions {
        groups: 5,
        balance_weight: 0.0,
        pinned,
        threads,
        ..Default::default()
    };
    let meter = if progress {
        Progress::new("explore.grouping", u64::from(options.restarts))
    } else {
        Progress::disabled()
    };
    let started = std::time::Instant::now();
    let grouping = tut_explore::partition_observed(&graph, &options, &mut NoopSink, &meter);
    meter.finish();
    println!(
        "  [grouping] {} nodes -> 5 groups, cut weight {}, objective {:.1} ({} ms)",
        graph.len(),
        grouping.cut_weight,
        grouping.objective,
        started.elapsed().as_millis()
    );

    let (problem, _, instances) =
        tut_explore::mapping::problem_from_system(&system, &report).expect("mapping problem");
    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator instance");
    // One pinned group stays out of the enumeration, so the search space
    // is pes^(groups-1) candidates.
    let candidates = (problem.pes.len() as u64).pow(problem.group_names.len() as u32 - 1);
    let meter = if progress {
        Progress::new("explore.mapping", candidates)
    } else {
        Progress::disabled()
    };
    let started = std::time::Instant::now();
    let mapping = tut_explore::optimise_mapping_observed(
        &problem,
        &tut_explore::MappingOptions {
            pinned: vec![(3, acc_index)],
            threads,
            ..Default::default()
        },
        &mut NoopSink,
        &meter,
    );
    meter.finish();
    println!(
        "  [mapping]  {} groups over {} elements, cost {:.1} ({} ms)",
        problem.group_names.len(),
        problem.pes.len(),
        mapping.cost,
        started.elapsed().as_millis()
    );
    for (group, &pe) in mapping.assignment.iter().enumerate() {
        println!(
            "             {} -> element {}",
            problem.group_names[group], pe
        );
    }
}

/// The durable `explore` path: both optimisation stages checkpoint into
/// journals under `dir`, and `resume` replays what a killed run already
/// finished. The solutions are bit-identical to the plain path.
fn print_explore_durable(threads: usize, progress: bool, dir: &std::path::Path, resume: bool) {
    println!(
        "Design-space exploration (grouping + mapping) on {threads} thread(s), durable in `{}`.",
        dir.display()
    );
    println!();
    let started = std::time::Instant::now();
    let explore = match tut_bench::jobs::run_explore_durable(threads, dir, resume, progress) {
        Ok(explore) => explore,
        Err(e) => {
            eprintln!("[explore] {e}");
            std::process::exit(1);
        }
    };
    for warning in &explore.warnings {
        eprintln!("{warning}");
    }
    println!(
        "  [grouping] {} nodes -> 5 groups, cut weight {}, objective {:.1}",
        explore.nodes, explore.grouping.cut_weight, explore.grouping.objective
    );
    println!(
        "  [mapping]  {} groups over {} elements, cost {:.1} ({} ms total)",
        explore.group_names.len(),
        explore.pes,
        explore.mapping.cost,
        started.elapsed().as_millis()
    );
    for (group, &pe) in explore.mapping.assignment.iter().enumerate() {
        println!(
            "             {} -> element {}",
            explore.group_names[group], pe
        );
    }
    println!("resumed={} total={}", explore.resumed, explore.total_units);
}

/// Runs the fault-injection reliability campaign (experiment R1): sweep
/// the channel BER, report delivery ratio / retries / goodput from the
/// ARQ counters. `--quick` runs a single pinned point and fails the
/// process when the delivery ratio leaves its expected band, so CI can
/// smoke-test the whole fault path in one short run. With `store`, the
/// sweep is durable: every finished point is journalled and `resume`
/// replays the completed prefix.
fn print_fault_sweep(
    quick: bool,
    threads: usize,
    progress: bool,
    store: Option<&std::path::Path>,
    resume: bool,
) {
    use tut_bench::faultsweep;
    if let Some(dir) = store {
        return print_fault_sweep_durable(quick, threads, progress, dir, resume);
    }
    if quick {
        // One mid-sweep point with a fixed seed on a short horizon.
        let config = tut_sim::SimConfig::with_horizon_ns(10_000_000);
        let point = match faultsweep::run_point(1e-4, faultsweep::SWEEP_SEED, config) {
            Ok(point) => point,
            Err(e) => {
                eprintln!("[fault-sweep --quick] {e}");
                std::process::exit(1);
            }
        };
        println!(
            "Fault-sweep smoke (BER 1e-4, seed {:#x}, 10 ms horizon)",
            faultsweep::SWEEP_SEED
        );
        println!();
        println!("{}", faultsweep::render(&[point]));
        let ratio = point.delivery_ratio();
        // Pinned band: deterministic seed, so the exact value is stable;
        // the band only absorbs deliberate model recalibrations.
        let (lo, hi) = (0.40, 0.95);
        if !(lo..=hi).contains(&ratio) {
            eprintln!(
                "[fault-sweep --quick] delivery ratio {ratio:.3} outside pinned band [{lo}, {hi}]"
            );
            std::process::exit(1);
        }
        if point.retries == 0 {
            eprintln!("[fault-sweep --quick] expected non-zero ARQ retries at BER 1e-4");
            std::process::exit(1);
        }
        println!("[fault-sweep --quick] delivery ratio {ratio:.3} within pinned band [{lo}, {hi}]");
        return;
    }
    let config = tut_bench::table4_config();
    println!(
        "Reliability under injected channel faults (seed {:#x}, horizon {} ms, {threads} thread(s)).",
        faultsweep::SWEEP_SEED,
        config.max_time_ns / 1_000_000
    );
    println!();
    let meter = if progress {
        Progress::new("fault-sweep", faultsweep::SWEEP_BERS.len() as u64)
    } else {
        Progress::disabled()
    };
    let points = match faultsweep::run_sweep_observed(&config, threads, &meter) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("[fault-sweep] {e}");
            std::process::exit(1);
        }
    };
    meter.finish();
    println!("{}", faultsweep::render(&points));
    let monotone_delivery = points
        .windows(2)
        .all(|w| w[1].delivery_ratio() <= w[0].delivery_ratio() + 1e-9);
    let monotone_retries = points
        .windows(2)
        .all(|w| w[1].mean_retries() + 1e-9 >= w[0].mean_retries());
    println!(
        "delivery ratio monotonically non-increasing: {monotone_delivery}; \
         mean retries monotonically non-decreasing: {monotone_retries}"
    );
}

/// The durable `fault-sweep` path. `--quick --store` runs the *full*
/// five-point sweep on the smoke horizon (10 ms, instead of the single
/// smoke point) so the CI resume smoke crosses every checkpoint boundary
/// in well under a second, keeping the same pinned-band check on the
/// BER 1e-4 row as the plain smoke.
fn print_fault_sweep_durable(
    quick: bool,
    threads: usize,
    progress: bool,
    dir: &std::path::Path,
    resume: bool,
) {
    use tut_bench::{faultsweep, jobs};
    let config = if quick {
        tut_sim::SimConfig::with_horizon_ns(10_000_000)
    } else {
        tut_bench::table4_config()
    };
    println!(
        "Reliability under injected channel faults (seed {:#x}, horizon {} ms, \
         {threads} thread(s), durable in `{}`).",
        faultsweep::SWEEP_SEED,
        config.max_time_ns / 1_000_000,
        dir.display()
    );
    println!();
    let meter = if progress {
        Progress::new("fault-sweep", faultsweep::SWEEP_BERS.len() as u64)
    } else {
        Progress::disabled()
    };
    let result = jobs::run_sweep_durable(&config, threads, &meter, dir, resume);
    meter.finish();
    let sweep = match result {
        Ok(sweep) => sweep,
        Err(e) => {
            eprintln!("[fault-sweep] {e}");
            std::process::exit(1);
        }
    };
    for warning in &sweep.warnings {
        eprintln!("{warning}");
    }
    println!("{}", faultsweep::render(&sweep.points));
    println!("resumed={} total={}", sweep.resumed, sweep.points.len());
    if quick {
        // Same contract as the plain smoke: the deterministic BER 1e-4
        // row must stay inside its pinned band with real retries.
        let point = sweep.points[3];
        let ratio = point.delivery_ratio();
        let (lo, hi) = (0.40, 0.95);
        if !(lo..=hi).contains(&ratio) {
            eprintln!(
                "[fault-sweep --quick] delivery ratio {ratio:.3} outside pinned band [{lo}, {hi}]"
            );
            std::process::exit(1);
        }
        if point.retries == 0 {
            eprintln!("[fault-sweep --quick] expected non-zero ARQ retries at BER 1e-4");
            std::process::exit(1);
        }
        println!("[fault-sweep --quick] delivery ratio {ratio:.3} within pinned band [{lo}, {hi}]");
    }
}

/// Runs the simulation perf baseline (experiment P1): TUTMAC event
/// throughput, serial vs conservative-parallel wall-clock of a single
/// run, the calendar-vs-heap scheduler microbench, and the
/// serial-vs-parallel fault-sweep wall-clock, written to
/// `BENCH_sim.json`. `--quick` shortens the horizons, skips the sweep
/// timing, leaves `BENCH_sim.json` untouched (it is a check, not a
/// measurement), and fails the process when events/sec falls below the
/// generous regression floor (simulation and calendar queue alike) or
/// the parallel log diverges from serial, so CI catches a >5x
/// throughput regression and any determinism break in one short run.
fn print_bench(quick: bool, threads: usize, progress: bool) {
    use tut_bench::simbench;
    let meter = if progress {
        Progress::new("bench", simbench::bench_progress_total(quick))
    } else {
        Progress::disabled()
    };
    let report = simbench::run_bench_observed(quick, threads, &meter);
    meter.finish();
    println!(
        "Simulation perf baseline (P1){}",
        if quick { " — quick mode" } else { "" }
    );
    println!();
    print!("{}", simbench::render(&report));
    // Determinism gate in every mode: a merged parallel log that is not
    // byte-identical to serial is a bug, never a measurement.
    if !report.parallel.log_identical {
        eprintln!("[bench] parallel single-run log DIVERGED from serial");
        std::process::exit(1);
    }
    if !quick {
        let json = simbench::to_json(&report);
        // Atomic replace: a crash mid-write must never leave a torn
        // BENCH_sim.json behind.
        tut_store::write_atomic(std::path::Path::new("BENCH_sim.json"), json.as_bytes())
            .unwrap_or_else(|e| panic!("writing BENCH_sim.json: {e}"));
        println!("wrote BENCH_sim.json ({} bytes)", json.len());
        // The single-run speedup is pinned only where it is meaningful:
        // a multi-core host whose worker count wasn't clamped to 1.
        let p = &report.parallel;
        if report.host.logical_cpus > 1 && p.threads > 1 && p.speedup() < 1.0 {
            eprintln!(
                "[bench] parallel single-run speedup {:.3} < 1 on {} cpus / {} threads",
                p.speedup(),
                report.host.logical_cpus,
                p.threads,
            );
            std::process::exit(1);
        }
        // Scheduler pin: the SoA calendar queue must at least match the
        // std binary heap on the hold-model microbench.
        let q = &report.scheduler;
        if q.calendar_events_per_sec() < q.heap_events_per_sec() {
            eprintln!(
                "[bench] calendar queue {:.0} events/sec below heap {:.0}",
                q.calendar_events_per_sec(),
                q.heap_events_per_sec(),
            );
            std::process::exit(1);
        }
    }
    if quick {
        let rate = report.rate.events_per_sec();
        let floor = simbench::QUICK_FLOOR_EVENTS_PER_SEC;
        if rate < floor {
            eprintln!("[bench --quick] {rate:.0} events/sec below regression floor {floor:.0}");
            std::process::exit(1);
        }
        let calendar = report.scheduler.calendar_events_per_sec();
        if calendar < floor {
            eprintln!(
                "[bench --quick] calendar queue {calendar:.0} events/sec below floor {floor:.0}"
            );
            std::process::exit(1);
        }
        println!("[bench --quick] {rate:.0} events/sec clears regression floor {floor:.0}");
        println!("[bench --quick] calendar queue {calendar:.0} events/sec clears floor {floor:.0}");
    }
}

/// Runs the TUTMAC case study with a [`Recorder`] attached and writes
/// the requested export files.
fn run_traced(trace: Option<&str>, vcd: Option<&str>, prom: Option<&str>) {
    let system = tut_bench::paper_system();
    let mut recorder = Recorder::new();
    tut_profiling::profile_system_with(&system, tut_bench::table4_config(), &mut recorder)
        .expect("traced profiling run");

    let tracks = recorder.tracks();
    let pe_tracks = tracks.iter().filter(|t| t.name.starts_with("pe/")).count();
    let hibi_tracks = tracks
        .iter()
        .filter(|t| t.name.starts_with("hibi/"))
        .count();
    println!(
        "[trace] {} events on {} tracks ({} processing elements, {} HIBI segments)",
        recorder.len(),
        tracks.len(),
        pe_tracks,
        hibi_tracks
    );

    let write = |path: &str, contents: &str, what: &str| {
        tut_store::write_atomic(std::path::Path::new(path), contents.as_bytes())
            .unwrap_or_else(|e| panic!("writing {what} to `{path}`: {e}"));
        println!("[trace] wrote {what}: {path} ({} bytes)", contents.len());
    };
    if let Some(path) = trace {
        write(
            path,
            &tut_trace::chrome::to_chrome_json(&recorder),
            "Chrome trace JSON",
        );
    }
    if let Some(path) = vcd {
        let text = tut_trace::vcd::to_vcd(&recorder, "hibi/");
        tut_trace::vcd::validate_vcd(&text).expect("VCD export validates");
        write(path, &text, "VCD waveform");
    }
    if let Some(path) = prom {
        write(
            path,
            &tut_trace::prom::to_prometheus(&recorder.metrics),
            "Prometheus metrics",
        );
    }
}

/// Runs the `check` item: every path (or the serialised paper system
/// when none is given) through the incremental query pipeline. Each
/// distinct file is read, hashed and checked exactly once — repeated
/// paths reuse the first outcome. Returns the process exit code per the
/// contract: errors → 1, warnings only → 0.
fn run_check(
    paths: &[String],
    json: bool,
    cache_stats: bool,
    store: Option<&std::path::Path>,
) -> i32 {
    use tut_bench::incremental::{CheckOutcome, Checker};
    let mut checker = Checker::new();
    if let Some(dir) = store {
        match checker.open_disk(&dir.join("check-cache.journal")) {
            Ok(n) => eprintln!("[check] disk cache attached ({n} cached reports)"),
            Err(e) => eprintln!("[check] W0503: disk cache unavailable ({e}); running memory-only"),
        }
    }
    let outcomes: Vec<CheckOutcome> = if paths.is_empty() {
        vec![checker.check("paper-system.xml", &tut_bench::paper_system().to_xml())]
    } else {
        // The read-source step deduplicates: one read + one check per
        // distinct path, however often it appears on the command line.
        let mut by_path: std::collections::HashMap<&str, CheckOutcome> = Default::default();
        paths
            .iter()
            .map(|path| {
                by_path
                    .entry(path.as_str())
                    .or_insert_with(|| {
                        let text = std::fs::read_to_string(path)
                            .unwrap_or_else(|e| panic!("reading `{path}`: {e}"));
                        checker.check(path, &text)
                    })
                    .clone()
            })
            .collect()
    };
    let mut failed = false;
    for (i, outcome) in outcomes.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if json {
            println!("{}", outcome.json);
        } else {
            print!("{}", outcome.text);
        }
        failed |= outcome.has_errors;
    }
    if cache_stats {
        print!("{}", checker.stats().render());
    }
    i32::from(failed)
}

fn main() {
    // Honour TUT_STORE_KILL so the verify.sh resume smoke (and any
    // manual crash drill) can kill this process at an exact durability
    // boundary; a no-op unless the variable is set.
    tut_store::kill::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let (mut trace, mut vcd, mut prom) = (None, None, None);
    let mut threads = 1usize;
    let mut quick = false;
    let mut json = false;
    let mut cache_stats = false;
    let mut folded = false;
    let mut top = None;
    let mut progress = true;
    let mut store: Option<String> = None;
    let mut resume = false;
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{flag} needs an argument"))
        };
        match arg.as_str() {
            "--trace" => trace = Some(take("--trace")),
            "--vcd" => vcd = Some(take("--vcd")),
            "--prom" => prom = Some(take("--prom")),
            "--quick" => quick = true,
            "--json" => json = true,
            "--cache-stats" => cache_stats = true,
            "--folded" => folded = true,
            "--no-progress" => progress = false,
            "--store" => store = Some(take("--store")),
            "--resume" => resume = true,
            "--top" => {
                top = Some(
                    take("--top")
                        .parse()
                        .expect("--top needs a number of table rows"),
                )
            }
            "--threads" => {
                threads = take("--threads")
                    .parse()
                    .expect("--threads needs a number (0 = all cores)")
            }
            _ => args.push(arg),
        }
    }
    // `check` consumes the rest of the argument list as model paths.
    if args.first().map(String::as_str) == Some("check") {
        let store_dir = store.as_deref().map(std::path::Path::new);
        std::process::exit(run_check(&args[1..], json, cache_stats, store_dir));
    }
    // `watch` consumes exactly one model path and re-checks it on save.
    if args.first().map(String::as_str) == Some("watch") {
        let [path] = &args[1..] else {
            eprintln!("watch takes exactly one model path");
            std::process::exit(2);
        };
        let store_dir = store.as_deref().map(std::path::Path::new);
        std::process::exit(tut_bench::watch::run_watch(
            path,
            json,
            cache_stats,
            store_dir,
        ));
    }
    if args.first().map(String::as_str) == Some("bench-check") {
        std::process::exit(tut_bench::benchcheck::run_bench_check(quick));
    }
    // `profile` consumes the rest as the (single, optional) workload item.
    if args.first().map(String::as_str) == Some("profile") {
        let flags = tut_bench::profile_cmd::ProfileFlags {
            quick,
            json,
            folded,
            top,
            threads,
        };
        std::process::exit(tut_bench::profile_cmd::run_profile(&args[1..], &flags));
    }
    let tracing_requested = trace.is_some() || vcd.is_some() || prom.is_some();
    if tracing_requested {
        run_traced(trace.as_deref(), vcd.as_deref(), prom.as_deref());
        if args.is_empty() {
            return;
        }
        println!("\n{}\n", "=".repeat(72));
    }
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "table1",
            "table2",
            "table3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table4",
            "explore",
            "fault-sweep",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let store_dir = store.as_deref().map(std::path::Path::new);
    let tut = TutProfile::new();
    for (index, item) in selected.iter().enumerate() {
        if index > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        match *item {
            "fig1" => print_fig1(),
            "fig2" => print_fig2(),
            "fig3" => println!("{}", tut.hierarchy()),
            "table1" => println!("{}", tables::table1(&tut)),
            "table2" => println!("{}", tables::table2(&tut)),
            "table3" => println!("{}", tables::table3(&tut)),
            "fig4" => println!("{}", figures::fig4()),
            "fig5" => println!("{}", figures::fig5()),
            "fig6" => println!("{}", figures::fig6()),
            "fig7" => println!("{}", figures::fig7()),
            "fig8" => println!("{}", figures::fig8()),
            "table4" => print_table4(),
            "transfers" => print_transfers(),
            "explore" => print_explore(threads, progress, store_dir, resume),
            "fault-sweep" => print_fault_sweep(quick, threads, progress, store_dir, resume),
            "bench" => print_bench(quick, threads, progress),
            other => {
                eprintln!(
                    "unknown item `{other}`; known: fig1..fig8, table1..table4, transfers, \
                     explore, fault-sweep, bench, bench-check, check, watch, profile, all"
                );
                std::process::exit(2);
            }
        }
    }
}
