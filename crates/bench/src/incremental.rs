//! The incremental, query-based front end behind `repro check`,
//! `repro watch` and `repro bench-check`.
//!
//! [`Checker`] runs the same pipeline as [`crate::check::check_source`]
//! — XML parse, XMI decode, profile application, well-formedness, the
//! TUT-Profile rule catalogue, codegen and simulation-setup dry runs —
//! but demand-driven over a [`tut_query::QueryDb`]: every stage is a
//! memoized query keyed by content fingerprints, so re-checking an
//! edited document recomputes only what the edit can actually reach.
//!
//! The decomposition leans on the [`tut_uml::outline`] scanner: the
//! document splits into a *skeleton* (the XMI envelope) plus one segment
//! per top-level `packagedElement` and the `profileApplication`. From
//! those the checker derives a `struct_fp` — a fingerprint of everything
//! *except* state-machine bodies — and keys the expensive semantic
//! queries on it. A behaviour-body edit therefore re-parses one segment,
//! re-decodes one state machine and re-type-checks one class, while the
//! fifteen profile rules, the other well-formedness passes and both dry
//! runs are cache hits.
//!
//! Correctness contract: the warm report is **byte-identical** to what a
//! cold [`check_source`](crate::check::check_source) produces for the
//! same text — the sub-results are assembled in exactly the order the
//! cold pipeline pushes them (decode recoveries, profile interchange,
//! sorted+span-attached findings, codegen, sim setup, final sort), and
//! whenever the document's shape falls outside what the outline scanner
//! understands the checker silently falls back to the cold pipeline.
//! `crates/bench/tests/incremental.rs` pins the contract with randomised
//! single-element edits.

use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;

use tut_diag::{render_bag_json, render_bag_text, Diagnostic, DiagnosticBag, SourceMap, Span};
use tut_profile::rules::tut_profile_rules;
use tut_profile::{SystemModel, TutProfile};
use tut_profile_core::interchange::{applications_from_xml_node, E_PROFILE_INTERCHANGE};
use tut_profile_core::{Applications, ConstraintSet};
use tut_query::{CacheStats, Fp, FpBuilder, QueryDb, StageId};
use tut_uml::error::{Error, E_XML_SYNTAX};
use tut_uml::ids::StateMachineId;
use tut_uml::outline::Outline;
use tut_uml::validate;
use tut_uml::xmi::{self, SpanIndex, E_XMI_STRUCTURE};
use tut_uml::xml::XmlNode;

/// The rendered result of checking one document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// True when at least one error-severity finding fired.
    pub has_errors: bool,
    /// Rustc-style text rendering (identical to cold `check_source`).
    pub text: String,
    /// Machine-readable single-line JSON rendering.
    pub json: String,
}

/// The type of segments the incremental decode path can patch.
const SM_TYPE: &str = "uml:StateMachine";

/// One stage id per pipeline query (profiler frames are named
/// `query.<stage>` after these).
#[derive(Clone, Copy)]
struct Stages {
    report: StageId,
    outline: StageId,
    parse_xml: StageId,
    xmi_decode: StageId,
    profile_apply: StageId,
    wf_unique_names: StageId,
    wf_parts_ports: StageId,
    wf_connectors: StageId,
    wf_composition: StageId,
    wf_behavior: StageId,
    wf_generalisation: StageId,
    profile_rules: StageId,
    codegen_dry_run: StageId,
    sim_setup: StageId,
}

/// Outline of one document plus the fingerprints the queries key on.
struct OutlineData {
    outline: Outline,
    /// Per-segment content fingerprints, in document order.
    seg_fps: Vec<Fp>,
    /// The document with all segments spliced out.
    skeleton: String,
    skeleton_fp: Fp,
    /// Fingerprint of the `profileApplication` text ([`Fp::ABSENT`]
    /// when the document has none).
    app_fp: Fp,
}

impl OutlineData {
    fn build(text: &str) -> Option<OutlineData> {
        let outline = Outline::scan(text)?;
        let seg_fps = (0..outline.segments.len())
            .map(|i| Fp::of_str(outline.segment_text(text, i)))
            .collect();
        let skeleton = outline.skeleton(text);
        let skeleton_fp = Fp::of_str(&skeleton);
        let app_fp = match outline.profile_app {
            Some(pa) => Fp::of_str(&text[pa.start..pa.end]),
            None => Fp::ABSENT,
        };
        Some(OutlineData {
            outline,
            seg_fps,
            skeleton,
            skeleton_fp,
            app_fp,
        })
    }
}

/// Derives the outline of `new_text` from the previous text's outline
/// when the edit is confined to the interior of one segment (or the
/// `profileApplication`): surviving ranges shift by the length delta and
/// only the touched piece is rehashed, so the per-keystroke cost is a
/// memcmp instead of a full rescan plus per-segment hashing.
///
/// `None` means "no proof of equivalence — do the full scan". The fast
/// path must return exactly what [`OutlineData::build`] would: it bails
/// unless the changed window (on both the old and new side) is free of
/// every byte that could alter tag structure — `<` `>` (tags), `"` `'`
/// (attribute quoting), `/` (self-closing flip), `-` (comment
/// terminator) — and stays clear of the containing segment's start tag,
/// whose `xmi:type`/`xmi:id` attributes are cached in the outline.
fn fast_outline(old_text: &str, old: &OutlineData, new_text: &str) -> Option<OutlineData> {
    let a = old_text.as_bytes();
    let b = new_text.as_bytes();
    let min = a.len().min(b.len());
    // Word-at-a-time common prefix, then suffix (clamped so they never
    // overlap); slice equality compiles down to memcmp.
    let mut p = 0;
    while p + 8 <= min && a[p..p + 8] == b[p..p + 8] {
        p += 8;
    }
    while p < min && a[p] == b[p] {
        p += 1;
    }
    if a.len() == b.len() && p == min {
        return None; // identical text: the report cache already handles it
    }
    let max_s = min - p;
    let mut s = 0;
    while s + 8 <= max_s && a[a.len() - s - 8..a.len() - s] == b[b.len() - s - 8..b.len() - s] {
        s += 8;
    }
    while s < max_s && a[a.len() - 1 - s] == b[b.len() - 1 - s] {
        s += 1;
    }
    let we_old = a.len() - s;
    let we_new = b.len() - s;
    let inert = |w: &[u8]| {
        w.iter()
            .all(|&c| !matches!(c, b'<' | b'>' | b'"' | b'\'' | b'/' | b'-'))
    };
    if !inert(&a[p..we_old]) || !inert(&b[p..we_new]) {
        return None;
    }
    let delta = b.len() as isize - a.len() as isize;
    let shift = |sp: Span| {
        Span::new(
            (sp.start as isize + delta) as usize,
            (sp.end as isize + delta) as usize,
        )
    };

    let mut outline = old.outline.clone();
    let mut seg_fps = old.seg_fps.clone();
    let mut app_fp = old.app_fp;
    let seg_hit = old
        .outline
        .segments
        .iter()
        .position(|seg| seg.range.start < p && we_old < seg.range.end);
    if let Some(i) = seg_hit {
        if p <= start_tag_end(a, old.outline.segments[i].range.start)? {
            return None;
        }
        let r = &mut outline.segments[i].range;
        *r = Span::new(r.start, (r.end as isize + delta) as usize);
        for seg in &mut outline.segments[i + 1..] {
            seg.range = shift(seg.range);
        }
        if let Some(pa) = outline.profile_app {
            if pa.start >= we_old {
                outline.profile_app = Some(shift(pa));
            }
        }
        let r = outline.segments[i].range;
        seg_fps[i] = Fp::of_str(&new_text[r.start..r.end]);
    } else if let Some(pa) = old
        .outline
        .profile_app
        .filter(|pa| pa.start < p && we_old < pa.end)
    {
        let new_pa = Span::new(pa.start, (pa.end as isize + delta) as usize);
        outline.profile_app = Some(new_pa);
        for seg in &mut outline.segments {
            if seg.range.start >= we_old {
                seg.range = shift(seg.range);
            }
        }
        app_fp = Fp::of_str(&new_text[new_pa.start..new_pa.end]);
    } else {
        // The window straddles a boundary or sits in the skeleton.
        return None;
    }
    Some(OutlineData {
        outline,
        seg_fps,
        skeleton: old.skeleton.clone(),
        skeleton_fp: old.skeleton_fp,
        app_fp,
    })
}

/// Position of the `>` closing the start tag that begins at `from`
/// (quote-aware, like the real tokenizer).
fn start_tag_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut quote = 0u8;
    for (i, &c) in bytes.iter().enumerate().skip(from) {
        if quote != 0 {
            if c == quote {
                quote = 0;
            }
        } else if c == b'"' || c == b'\'' {
            quote = c;
        } else if c == b'>' {
            return Some(i);
        }
    }
    None
}

/// A memoized standalone parse of one segment (spans are relative to
/// the segment's first byte).
enum ParseOut {
    Ok(XmlNode),
    /// An `E0101` at a relative offset — rebased it reproduces the
    /// whole-document error exactly.
    Syntax(usize, String),
    /// Any other parse failure: bail to the cold pipeline.
    Other,
}

impl ParseOut {
    fn of(text: &str) -> ParseOut {
        match XmlNode::parse(text) {
            Ok(node) => ParseOut::Ok(node),
            Err(Error::XmlSyntax {
                offset, message, ..
            }) => ParseOut::Syntax(offset, message),
            Err(_) => ParseOut::Other,
        }
    }
}

/// A state machine decoded from one segment: the machine plus the
/// statement-recovery diagnostics, spans relative to the segment.
type DecodeOut = Result<(tut_uml::statemachine::StateMachine, Vec<Diagnostic>), ()>;

/// The last fully-analysed state of one document, kept so the next edit
/// can be applied as a patch instead of a rebuild.
struct PrevAnalysis {
    struct_fp: Fp,
    seg_fps: Vec<Fp>,
    system: SystemModel,
    /// Per-segment decode-recovery diagnostics (relative spans);
    /// `Some` exactly for state-machine segments.
    decode_frags: Vec<Option<Rc<Vec<Diagnostic>>>>,
    /// False when some decode diagnostic could not be attributed to a
    /// segment — the next edit rebuilds instead of patching.
    patchable: bool,
}

#[derive(Default)]
struct DocState {
    prev: Option<PrevAnalysis>,
    /// The last checked text and its outline, kept so the next edit can
    /// re-outline incrementally (common prefix/suffix) instead of
    /// rescanning the whole document.
    last: Option<(String, Rc<Option<OutlineData>>)>,
}

/// The demand-driven checker. One instance amortises work across many
/// checks of (edits of) the same documents; an optional disk layer
/// extends the top-level report cache across processes.
pub struct Checker {
    db: QueryDb,
    st: Stages,
    tut: TutProfile,
    rules: ConstraintSet,
    docs: HashMap<String, DocState>,
    runs: u64,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker::new()
    }
}

impl Checker {
    /// Creates a checker with an empty cache.
    pub fn new() -> Checker {
        let mut db = QueryDb::new();
        let st = Stages {
            report: db.stage("report"),
            outline: db.stage("outline"),
            parse_xml: db.stage("parse_xml"),
            xmi_decode: db.stage("xmi_decode"),
            profile_apply: db.stage("profile_apply"),
            wf_unique_names: db.stage("wf_unique_names"),
            wf_parts_ports: db.stage("wf_parts_ports"),
            wf_connectors: db.stage("wf_connectors"),
            wf_composition: db.stage("wf_composition"),
            wf_behavior: db.stage("wf_behavior"),
            wf_generalisation: db.stage("wf_generalisation"),
            profile_rules: db.stage("profile_rules"),
            codegen_dry_run: db.stage("codegen_dry_run"),
            sim_setup: db.stage("sim_setup"),
        };
        let tut = TutProfile::new();
        let rules = tut_profile_rules(&tut);
        Checker {
            db,
            st,
            tut,
            rules,
            docs: HashMap::new(),
            runs: 0,
        }
    }

    /// Attaches the on-disk report cache (a `tut-store` journal at
    /// `path`), replaying any compatible records already present.
    ///
    /// # Errors
    ///
    /// Returns a message when the journal cannot be created; the checker
    /// stays usable (memory-only) in that case.
    pub fn open_disk(&mut self, path: &Path) -> Result<usize, String> {
        self.db.open_disk(path)
    }

    /// True while the disk layer (if any) is accepting writes.
    pub fn disk_ok(&self) -> bool {
        self.db.disk_ok()
    }

    /// Checks one document. `name` labels the source in the report.
    pub fn check(&mut self, name: &str, text: &str) -> CheckOutcome {
        self.db.begin_run();
        self.runs += 1;
        let text_fp = Fp::of_str(text);
        let key = FpBuilder::new().str(name).fp(text_fp).finish();
        let db = &mut self.db;
        let st = self.st;
        let tut = &self.tut;
        let rules = &self.rules;
        let doc = self.docs.entry(name.to_owned()).or_default();
        let payload = db.memo_bytes(st.report, key, |db| {
            encode_outcome(&analyze(db, st, tut, rules, doc, name, text, text_fp))
        });
        decode_outcome(&payload).unwrap_or_else(|| cold_outcome(name, text))
    }

    /// Cumulative hit/miss/recompute counters per stage.
    pub fn stats(&self) -> CacheStats {
        self.db.stats()
    }

    /// Drops cached values not touched in the last `keep_last` runs
    /// (the `repro watch` loop calls this so long sessions stay flat).
    pub fn trim(&mut self, keep_last: u64) {
        let keep = self.runs.saturating_sub(keep_last);
        self.db.evict_older_than(keep);
    }

    /// Number of live memoized values (observability for tests).
    pub fn memo_len(&self) -> usize {
        self.db.memo_len()
    }
}

/// The cold pipeline as an outcome — the fallback whenever the document
/// shape is outside what the incremental decomposition handles.
fn cold_outcome(name: &str, text: &str) -> CheckOutcome {
    let report = crate::check::check_source(name, text);
    CheckOutcome {
        has_errors: report.has_errors(),
        text: report.render_text(),
        json: report.render_json(),
    }
}

fn render_outcome(name: &str, text: &str, bag: DiagnosticBag) -> CheckOutcome {
    // An empty bag renders as the summary line alone, in both formats,
    // without ever consulting the source — skip the O(n) line-start
    // scan that `SourceMap::new` pays (pinned byte-identical by
    // `empty_bag_renders_identically_without_a_source`).
    let source = (!bag.is_empty()).then(|| SourceMap::new(name, text));
    CheckOutcome {
        has_errors: bag.has_errors(),
        text: render_bag_text(&bag, source.as_ref()),
        json: render_bag_json(&bag, source.as_ref()),
    }
}

fn encode_outcome(o: &CheckOutcome) -> Vec<u8> {
    let mut v = Vec::with_capacity(1 + 16 + o.text.len() + o.json.len());
    v.push(u8::from(o.has_errors));
    for s in [&o.text, &o.json] {
        v.extend_from_slice(&(s.len() as u64).to_le_bytes());
        v.extend_from_slice(s.as_bytes());
    }
    v
}

fn decode_outcome(b: &[u8]) -> Option<CheckOutcome> {
    let has_errors = *b.first()? != 0;
    let mut pos = 1;
    let mut field = || -> Option<String> {
        let len = u64::from_le_bytes(b.get(pos..pos + 8)?.try_into().ok()?) as usize;
        pos += 8;
        let s = std::str::from_utf8(b.get(pos..pos + len)?).ok()?;
        pos += len;
        Some(s.to_owned())
    };
    let text = field()?;
    let json = field()?;
    Some(CheckOutcome {
        has_errors,
        text,
        json,
    })
}

/// Collects the diagnostics a validation pass emits, as a fragment.
fn frag_of(f: impl FnOnce(&mut DiagnosticBag)) -> Vec<Diagnostic> {
    let mut bag = DiagnosticBag::new();
    f(&mut bag);
    bag.into_vec()
}

/// Shifts a diagnostic's spans from document coordinates down to
/// segment-relative ones (the exact inverse of
/// [`Diagnostic::rebased`]); `None` when any span starts before `base`.
fn make_relative(d: &Diagnostic, base: usize) -> Option<Diagnostic> {
    let mut out = d.clone();
    if let Some(span) = out.span {
        if span != Span::NONE {
            if span.start < base {
                return None;
            }
            out.span = Some(Span::new(span.start - base, span.end - base));
        }
    }
    for label in &mut out.labels {
        if label.span != Span::NONE {
            if label.span.start < base {
                return None;
            }
            label.span = Span::new(label.span.start - base, label.span.end - base);
        }
    }
    Some(out)
}

/// The analysis behind a report-level cache miss. Returns a rendered
/// outcome byte-identical to the cold pipeline's.
#[allow(clippy::too_many_arguments)]
fn analyze(
    db: &mut QueryDb,
    st: Stages,
    tut: &TutProfile,
    rules: &ConstraintSet,
    doc: &mut DocState,
    name: &str,
    text: &str,
    text_fp: Fp,
) -> CheckOutcome {
    // Try to derive the outline from the previous text's by locating the
    // edit (common prefix/suffix) instead of rescanning the document;
    // the memoized query still owns the result either way.
    let fast = doc.last.as_ref().and_then(|(old_text, old_od)| {
        let od = (**old_od).as_ref()?;
        fast_outline(old_text, od, text)
    });
    let od = db.memo(st.outline, text_fp, |_| match fast {
        Some(od) => Some(od),
        None => OutlineData::build(text),
    });
    doc.last = Some((text.to_owned(), od.clone()));
    let Some(od) = od.as_ref() else {
        doc.prev = None;
        return cold_outcome(name, text);
    };

    // Parse every piece through the content-keyed parse query: the
    // skeleton, each segment, and the profile application.
    let skeleton = db.memo(st.parse_xml, od.skeleton_fp, |_| ParseOut::of(&od.skeleton));
    let ParseOut::Ok(skeleton_node) = &*skeleton else {
        // A skeleton-local error offset cannot be mapped back onto the
        // document, so this (never seen from the scanner's subset) goes
        // through the cold pipeline.
        doc.prev = None;
        return cold_outcome(name, text);
    };
    let mut seg_nodes: Vec<Rc<ParseOut>> = Vec::with_capacity(od.seg_fps.len());
    for (i, &fp) in od.seg_fps.iter().enumerate() {
        let seg_text = od.outline.segment_text(text, i);
        seg_nodes.push(db.memo(st.parse_xml, fp, |_| ParseOut::of(seg_text)));
    }
    let app_node = od.outline.profile_app.map(|pa| {
        let app_text = &text[pa.start..pa.end];
        (
            pa,
            db.memo(st.parse_xml, od.app_fp, |_| ParseOut::of(app_text)),
        )
    });

    // First syntax error in document order wins, exactly as the cold
    // linear parse would have stopped there.
    let mut first_err: Option<(usize, String)> = None;
    let mut note_err = |abs: usize, msg: &str| {
        if first_err.as_ref().is_none_or(|(at, _)| abs < *at) {
            first_err = Some((abs, msg.to_owned()));
        }
    };
    for (i, parse) in seg_nodes.iter().enumerate() {
        match &**parse {
            ParseOut::Ok(_) => {}
            ParseOut::Syntax(off, msg) => {
                note_err(od.outline.segments[i].range.start + off, msg);
            }
            ParseOut::Other => {
                doc.prev = None;
                return cold_outcome(name, text);
            }
        }
    }
    if let Some((pa, parse)) = &app_node {
        match &**parse {
            ParseOut::Ok(_) => {}
            ParseOut::Syntax(off, msg) => note_err(pa.start + *off, msg),
            ParseOut::Other => {
                doc.prev = None;
                return cold_outcome(name, text);
            }
        }
    }
    if let Some((abs, msg)) = first_err {
        doc.prev = None;
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::error(E_XML_SYNTAX, msg).with_span(Span::point(abs)));
        bag.sort();
        return render_outcome(name, text, bag);
    }

    // The structural fingerprint: everything except state-machine
    // bodies. Expensive whole-model queries key on this, so behaviour
    // edits leave them untouched.
    let mut b = FpBuilder::new().fp(od.skeleton_fp).fp(od.app_fp);
    for (i, seg) in od.outline.segments.iter().enumerate() {
        if seg.ty == SM_TYPE {
            let sm_name = match &*seg_nodes[i] {
                ParseOut::Ok(node) => node.attr("name").unwrap_or(""),
                _ => "",
            };
            b = b.str("sm").str(&seg.id).str(sm_name);
        } else {
            b = b.str("seg").fp(od.seg_fps[i]);
        }
    }
    let struct_fp = b.finish();

    // Patch path: same structure as the previous analysis and only
    // state-machine bodies changed — splice freshly decoded machines
    // into the retained model instead of re-reading the document.
    if let Some(prev) = doc.prev.as_mut() {
        if prev.patchable && prev.struct_fp == struct_fp && prev.seg_fps.len() == od.seg_fps.len() {
            let changed: Vec<usize> = (0..od.seg_fps.len())
                .filter(|&i| od.seg_fps[i] != prev.seg_fps[i])
                .collect();
            if changed
                .iter()
                .all(|&i| od.outline.segments[i].ty == SM_TYPE)
            {
                if let Some(outcome) = patch(
                    db,
                    st,
                    tut,
                    rules,
                    prev,
                    od,
                    &seg_nodes,
                    app_node.as_ref(),
                    &changed,
                    struct_fp,
                    name,
                    text,
                ) {
                    return outcome;
                }
            }
        }
    }

    rebuild(
        db,
        st,
        tut,
        rules,
        doc,
        od,
        skeleton_node,
        &seg_nodes,
        app_node.as_ref(),
        struct_fp,
        name,
        text,
    )
}

/// Applies an edit confined to state-machine bodies onto the previous
/// analysis. `None` means a decode error surfaced — the caller rebuilds
/// (reproducing the cold `E0102` path exactly).
#[allow(clippy::too_many_arguments)]
fn patch(
    db: &mut QueryDb,
    st: Stages,
    tut: &TutProfile,
    rules: &ConstraintSet,
    prev: &mut PrevAnalysis,
    od: &OutlineData,
    seg_nodes: &[Rc<ParseOut>],
    app_node: Option<&(Span, Rc<ParseOut>)>,
    changed: &[usize],
    struct_fp: Fp,
    name: &str,
    text: &str,
) -> Option<CheckOutcome> {
    // Decode each changed machine against the retained model (signal
    // and port resolution only touch structure, which is unchanged).
    let mut decoded: Vec<(usize, Rc<DecodeOut>)> = Vec::with_capacity(changed.len());
    for &i in changed {
        let ParseOut::Ok(node) = &*seg_nodes[i] else {
            return None;
        };
        let key = FpBuilder::new().fp(od.seg_fps[i]).fp(struct_fp).finish();
        let model = &prev.system.model;
        let out = db.memo(st.xmi_decode, key, |_| {
            let mut frag = DiagnosticBag::new();
            match xmi::decode_state_machine(node, model, &mut frag) {
                Ok(sm) => Ok((sm, frag.into_vec())),
                Err(_) => Err(()),
            }
        });
        if out.is_err() {
            return None;
        }
        decoded.push((i, out));
    }

    // Splice: the n-th state-machine segment holds the machine with
    // arena index n (the reader allocates them in document order).
    for (i, out) in &decoded {
        let Ok((sm, frag)) = &**out else { return None };
        let ordinal = od.outline.segments[..*i]
            .iter()
            .filter(|s| s.ty == SM_TYPE)
            .count();
        *prev
            .system
            .model
            .state_machine_mut(StateMachineId::from_index(ordinal)) = sm.clone();
        prev.decode_frags[*i] = Some(Rc::new(frag.clone()));
    }
    prev.seg_fps = od.seg_fps.clone();

    // Segment offsets moved with the edit: rebuild the span index from
    // the outline (each entry covers `<packagedElement`, which is what
    // the whole-document parser records).
    let mut index = SpanIndex::default();
    for (i, seg) in od.outline.segments.iter().enumerate() {
        if let ParseOut::Ok(node) = &*seg_nodes[i] {
            index.insert(seg.id.clone(), node.span.offset(seg.range.start));
        }
    }

    // Replay decode recoveries (relative fragments rebased to the new
    // segment offsets), in document order — the order the cold reader
    // pushes them.
    let mut bag = DiagnosticBag::new();
    for (i, seg) in od.outline.segments.iter().enumerate() {
        if let Some(frag) = &prev.decode_frags[i] {
            bag.merge_fragment(frag, seg.range.start);
        }
    }
    let app = apply_profile(db, st, tut, od, app_node, &mut bag)?;
    prev.system.apps = app;

    Some(assemble(
        db,
        st,
        rules,
        &prev.system,
        &index,
        od,
        struct_fp,
        bag,
        name,
        text,
    ))
}

/// Reconstructs the whole document tree from cached per-segment parses
/// and runs the plain reader over it — the path for first sights and
/// structural edits. Byte-identity holds by construction: the reader
/// sees a tree equal (spans included) to a whole-document parse.
#[allow(clippy::too_many_arguments)]
fn rebuild(
    db: &mut QueryDb,
    st: Stages,
    tut: &TutProfile,
    rules: &ConstraintSet,
    doc: &mut DocState,
    od: &OutlineData,
    skeleton_node: &XmlNode,
    seg_nodes: &[Rc<ParseOut>],
    app_node: Option<&(Span, Rc<ParseOut>)>,
    struct_fp: Fp,
    name: &str,
    text: &str,
) -> CheckOutcome {
    let mut root = skeleton_node.clone();
    let Some(model_child) = root.children.iter_mut().find(|c| c.name == "uml:Model") else {
        doc.prev = None;
        return cold_outcome(name, text);
    };
    for (i, seg) in od.outline.segments.iter().enumerate() {
        let ParseOut::Ok(node) = &*seg_nodes[i] else {
            doc.prev = None;
            return cold_outcome(name, text);
        };
        let mut tree = node.clone();
        tree.offset_spans(seg.range.start);
        model_child.children.push(tree);
    }

    let mut decode_bag = DiagnosticBag::new();
    let (model, index) = match xmi::read_model(&root, &mut decode_bag) {
        Ok(v) => v,
        Err(e) => {
            doc.prev = None;
            decode_bag.push(Diagnostic::error(E_XMI_STRUCTURE, e.to_string()));
            decode_bag.sort();
            return render_outcome(name, text, decode_bag);
        }
    };

    // Attribute each decode recovery to its segment (relative spans) so
    // the next edit can replay them without re-reading the document.
    let mut frags: Vec<Option<Vec<Diagnostic>>> = od
        .outline
        .segments
        .iter()
        .map(|s| (s.ty == SM_TYPE).then(Vec::new))
        .collect();
    let mut patchable = true;
    for d in decode_bag.iter() {
        let seg = d.span.filter(|&s| s != Span::NONE).and_then(|span| {
            od.outline.segments.iter().position(|s| {
                s.ty == SM_TYPE && s.range.start <= span.start && span.end <= s.range.end
            })
        });
        match seg {
            Some(i) => match make_relative(d, od.outline.segments[i].range.start) {
                Some(rel) => frags[i].get_or_insert_with(Vec::new).push(rel),
                None => patchable = false,
            },
            None => patchable = false,
        }
    }

    let mut bag = decode_bag;
    let Some(apps) = apply_profile(db, st, tut, od, app_node, &mut bag) else {
        doc.prev = None;
        return cold_outcome(name, text);
    };
    let system = SystemModel {
        tut: tut.clone(),
        model,
        apps,
    };

    let outcome = assemble(
        db, st, rules, &system, &index, od, struct_fp, bag, name, text,
    );
    doc.prev = Some(PrevAnalysis {
        struct_fp,
        seg_fps: od.seg_fps.clone(),
        system,
        decode_frags: frags.into_iter().map(|f| f.map(Rc::new)).collect(),
        patchable,
    });
    outcome
}

/// The profile-application query: decodes the (standalone-parsed)
/// `profileApplication` subtree into [`Applications`], caching both the
/// result and any interchange diagnostic as a relative fragment. Pushes
/// the rebased fragment into `bag` and returns the applications, or
/// `None` when the subtree failed to parse (callers bail to cold).
fn apply_profile(
    db: &mut QueryDb,
    st: Stages,
    tut: &TutProfile,
    od: &OutlineData,
    app_node: Option<&(Span, Rc<ParseOut>)>,
    bag: &mut DiagnosticBag,
) -> Option<Applications> {
    let Some((pa, parse)) = app_node else {
        return Some(Applications::new());
    };
    let ParseOut::Ok(node) = &**parse else {
        return None;
    };
    let out = db.memo(
        st.profile_apply,
        od.app_fp,
        |_| match applications_from_xml_node(tut.profile(), node) {
            Ok(apps) => (apps, Vec::new()),
            Err(e) => {
                let mut d = Diagnostic::error(E_PROFILE_INTERCHANGE, e.to_string());
                if node.span != Span::NONE {
                    d = d.with_span(node.span);
                }
                (Applications::new(), vec![d])
            }
        },
    );
    bag.merge_fragment(&out.1, pa.start);
    Some(out.0.clone())
}

/// Runs (or replays) the semantic stages and assembles the final bag in
/// exactly the cold pipeline's order: findings are collected in pass
/// order, sorted, given spans from the index, merged after the decode
/// and interchange diagnostics already in `bag`, then the two dry runs
/// append and the whole bag is sorted once more.
#[allow(clippy::too_many_arguments)]
fn assemble(
    db: &mut QueryDb,
    st: Stages,
    rules: &ConstraintSet,
    system: &SystemModel,
    index: &SpanIndex,
    od: &OutlineData,
    struct_fp: Fp,
    mut bag: DiagnosticBag,
    name: &str,
    text: &str,
) -> CheckOutcome {
    let model = &system.model;

    // Map each class to the fingerprint of its behaviour's segment, so
    // the per-class behaviour query misses exactly for the edited body.
    let sm_seg_fp: HashMap<&str, Fp> = od
        .outline
        .segments
        .iter()
        .zip(&od.seg_fps)
        .filter(|(s, _)| s.ty == SM_TYPE)
        .map(|(s, &fp)| (s.id.as_str(), fp))
        .collect();

    let mut findings = DiagnosticBag::new();
    let names = db.memo(st.wf_unique_names, struct_fp, |_| {
        frag_of(|b| validate::check_unique_names(model, b))
    });
    findings.merge_fragment(&names, 0);
    for (class_id, _) in model.classes() {
        let key = FpBuilder::new()
            .u64(class_id.index() as u64)
            .fp(struct_fp)
            .finish();
        let frag = db.memo(st.wf_parts_ports, key, |_| {
            frag_of(|b| validate::check_parts_and_ports_of(model, class_id, b))
        });
        findings.merge_fragment(&frag, 0);
    }
    let connectors = db.memo(st.wf_connectors, struct_fp, |_| {
        frag_of(|b| validate::check_connectors(model, b))
    });
    findings.merge_fragment(&connectors, 0);
    let composition = db.memo(st.wf_composition, struct_fp, |_| {
        frag_of(|b| validate::check_composition_cycles(model, b))
    });
    findings.merge_fragment(&composition, 0);
    for (class_id, class) in model.classes() {
        let body_fp = class
            .behavior()
            .and_then(|sm| sm_seg_fp.get(sm.to_string().as_str()).copied())
            .unwrap_or(Fp::ABSENT);
        let key = FpBuilder::new()
            .u64(class_id.index() as u64)
            .fp(struct_fp)
            .fp(body_fp)
            .finish();
        let frag = db.memo(st.wf_behavior, key, |_| {
            frag_of(|b| validate::check_behavior_of(model, class_id, b))
        });
        findings.merge_fragment(&frag, 0);
    }
    let generalisation = db.memo(st.wf_generalisation, struct_fp, |_| {
        frag_of(|b| validate::check_generalisation_cycles(model, b))
    });
    findings.merge_fragment(&generalisation, 0);

    for i in 0..rules.len() {
        let key = FpBuilder::new().u64(i as u64).fp(struct_fp).finish();
        let frag = db.memo(st.profile_rules, key, |_| {
            frag_of(|b| rules.check_one(i, model, system.tut.profile(), &system.apps, b))
        });
        findings.merge_fragment(&frag, 0);
    }

    findings.sort();
    for d in findings.iter_mut() {
        if d.span.is_none() {
            if let Some(element) = &d.element {
                d.span = index.get(element);
            }
        }
    }
    bag.merge(findings);

    let codegen = db.memo(st.codegen_dry_run, struct_fp, |_| {
        tut_codegen::dry_run_diagnostic(system)
    });
    if let Some(d) = codegen.as_ref() {
        bag.push(d.clone());
    }

    let sim = db.memo(st.sim_setup, struct_fp, |_| {
        tut_sim::setup_diagnostic(system, tut_sim::SimConfig::default())
    });
    if let Some(d) = sim.as_ref() {
        let mut d = d.clone();
        if let Some(element) = &d.element {
            if let Some(span) = index.get(element) {
                d.span = Some(span);
            }
        }
        bag.push(d);
    }

    bag.sort();
    render_outcome(name, text, bag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_xml() -> String {
        crate::paper_system().to_xml()
    }

    /// The correctness contract on the unedited paper system: first
    /// (cold) and second (cached) incremental checks both match the
    /// plain pipeline byte-for-byte.
    #[test]
    fn cold_and_cached_match_the_plain_pipeline() {
        let xml = paper_xml();
        let oracle = crate::check::check_source("paper-system.xml", &xml);
        let mut checker = Checker::new();
        let first = checker.check("paper-system.xml", &xml);
        assert_eq!(first.text, oracle.render_text());
        assert_eq!(first.json, oracle.render_json());
        assert_eq!(first.has_errors, oracle.has_errors());
        let second = checker.check("paper-system.xml", &xml);
        assert_eq!(second, first);
        let stats = checker.stats();
        assert!(stats.total_hits() >= 1, "{}", stats.render());
    }

    #[test]
    fn syntax_errors_match_the_plain_pipeline() {
        let xml = paper_xml();
        let broken = xml.replacen("</packagedElement>", "</wrongElement>", 1);
        let oracle = crate::check::check_source("m.xml", &broken);
        let mut checker = Checker::new();
        let out = checker.check("m.xml", &broken);
        assert!(out.has_errors);
        assert_eq!(out.text, oracle.render_text());
        assert_eq!(out.json, oracle.render_json());
    }

    /// Pins the shortcut `render_outcome` takes: an empty bag renders
    /// the same bytes whether or not a source map is supplied.
    #[test]
    fn empty_bag_renders_identically_without_a_source() {
        let bag = DiagnosticBag::new();
        let source = SourceMap::new("m.xml", "<a>\n</a>\n");
        assert_eq!(
            render_bag_text(&bag, Some(&source)),
            render_bag_text(&bag, None)
        );
        assert_eq!(
            render_bag_json(&bag, Some(&source)),
            render_bag_json(&bag, None)
        );
    }

    /// The incremental re-outline must agree exactly with a full rescan
    /// on in-segment edits (replacement, growth, shrinkage, profile
    /// application) and must refuse anything structural.
    #[test]
    fn fast_outline_matches_full_scan() {
        let base = paper_xml();
        let old = OutlineData::build(&base).expect("fixture outlines");
        let compare = |edited: &str| {
            let fast = fast_outline(&base, &old, edited).expect("fast path applies");
            let full = OutlineData::build(edited).expect("edited text outlines");
            assert_eq!(fast.outline.segments, full.outline.segments);
            assert_eq!(fast.outline.profile_app, full.outline.profile_app);
            assert_eq!(fast.seg_fps, full.seg_fps);
            assert_eq!(fast.skeleton, full.skeleton);
            assert_eq!(fast.skeleton_fp, full.skeleton_fp);
            assert_eq!(fast.app_fp, full.app_fp);
        };
        // Same-length replacement, growth, and shrinkage of a behaviour
        // constant (the bench edit takes `data="100"`-style sites).
        compare(&crate::benchcheck::edit_behavior(&base, 0).unwrap());
        let site = base.find("data=\"").map(|i| i + "data=\"".len()).unwrap();
        let digits = base[site..].find('"').unwrap();
        compare(&format!(
            "{}{}{}",
            &base[..site],
            "123456789",
            &base[site + digits..]
        ));
        compare(&format!(
            "{}{}{}",
            &base[..site],
            "7",
            &base[site + digits..]
        ));
        // An edit inside the profileApplication element.
        if let Some(pa) = old.outline.profile_app {
            let inner = base[pa.start..pa.end]
                .find("base=\"")
                .map(|i| pa.start + i + "base=\"".len());
            if let Some(at) = inner {
                let end = at + base[at..].find('"').unwrap();
                compare(&format!("{}{}{}", &base[..at], "classX", &base[end..]));
            }
        }
        // A close-tag rename keeps every range (the scanner tracks depth
        // only), so the fast path applies and must agree with the full
        // scan; the parse queries surface the mismatch later.
        compare(&base.replacen("</packagedElement>", "</wrongElement>", 1));
        // Deleting markup puts `<` in the changed window: refused.
        let broken = base.replacen("<packagedElement", "packagedElement", 1);
        assert!(
            fast_outline(&base, &old, &broken).is_none(),
            "window has structural bytes"
        );
        let renamed_id = base.replacen("xmi:id=\"class0\"", "xmi:id=\"classZ\"", 1);
        assert!(
            fast_outline(&base, &old, &renamed_id).is_none(),
            "start-tag edits fall back to the full scan"
        );
    }

    #[test]
    fn outcome_payload_round_trips() {
        let out = CheckOutcome {
            has_errors: true,
            text: "text with\nnewlines".into(),
            json: "{\"summary\":\"x\"}".into(),
        };
        assert_eq!(decode_outcome(&encode_outcome(&out)).unwrap(), out);
        assert!(decode_outcome(&[]).is_none());
        assert!(decode_outcome(&[1, 2, 3]).is_none());
    }
}
