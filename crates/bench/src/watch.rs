//! The `repro watch` driver: re-check a model document on every save.
//!
//! Polls the file's modification time (cheap, no read) and falls back to
//! a content hash before re-checking, so editors that rewrite the file
//! without changing it (or touch the mtime twice per save) never trigger
//! a duplicate report. Each re-check runs through the incremental
//! [`Checker`](crate::incremental::Checker), so after the first pass the
//! turnaround is dominated by what the edit actually invalidated.

use std::path::Path;
use std::time::{Duration, Instant, SystemTime};

use tut_query::Fp;

use crate::incremental::Checker;

/// How often the file is polled.
pub const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Cache generations kept live between edits (older memo entries are
/// evicted so day-long sessions stay flat).
const KEEP_GENERATIONS: u64 = 16;

/// The change-detection state of one watched file: mtime first, content
/// hash second.
#[derive(Default)]
pub struct Debounce {
    last_mtime: Option<SystemTime>,
    last_fp: Option<Fp>,
}

impl Debounce {
    /// True when the mtime differs from the last observation — the
    /// caller should read the file and ask [`Debounce::content_changed`].
    pub fn mtime_changed(&mut self, mtime: Option<SystemTime>) -> bool {
        if self.last_mtime == mtime && mtime.is_some() {
            return false;
        }
        self.last_mtime = mtime;
        true
    }

    /// True when the content fingerprint differs from the last checked
    /// one; records it either way.
    pub fn content_changed(&mut self, fp: Fp) -> bool {
        if self.last_fp == Some(fp) {
            return false;
        }
        self.last_fp = Some(fp);
        true
    }
}

/// Runs the watch loop over one document until the process is killed.
/// Returns only on a startup error (unreadable file), with the exit code.
pub fn run_watch(path: &str, json: bool, cache_stats: bool, store: Option<&Path>) -> i32 {
    let mut checker = Checker::new();
    if let Some(dir) = store {
        match checker.open_disk(&dir.join("check-cache.journal")) {
            Ok(n) => eprintln!("[watch] disk cache attached ({n} cached reports)"),
            Err(e) => eprintln!("[watch] W0503: disk cache unavailable ({e}); running memory-only"),
        }
    }
    // First pass must succeed so misconfigurations fail loudly.
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[watch] cannot read `{path}`: {e}");
            return 2;
        }
    };
    let mut debounce = Debounce::default();
    debounce.mtime_changed(mtime_of(path));
    debounce.content_changed(Fp::of_str(&text));
    check_and_print(&mut checker, path, &text, json, cache_stats);
    loop {
        std::thread::sleep(POLL_INTERVAL);
        if !debounce.mtime_changed(mtime_of(path)) {
            continue;
        }
        // A transient read failure (editor mid-rename) retries on the
        // next poll; the stale mtime was already consumed, but the
        // content hash catches up once the file is back.
        let Ok(text) = std::fs::read_to_string(path) else {
            debounce.last_mtime = None;
            continue;
        };
        if !debounce.content_changed(Fp::of_str(&text)) {
            continue;
        }
        check_and_print(&mut checker, path, &text, json, cache_stats);
        checker.trim(KEEP_GENERATIONS);
    }
}

fn mtime_of(path: &str) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

fn check_and_print(checker: &mut Checker, path: &str, text: &str, json: bool, cache_stats: bool) {
    let before = checker.stats();
    let started = Instant::now();
    let outcome = checker.check(path, text);
    let elapsed = started.elapsed();
    if json {
        println!("{}", outcome.json);
    } else {
        print!("{}", outcome.text);
    }
    if cache_stats {
        print!("{}", checker.stats().since(&before).render());
    }
    eprintln!(
        "[watch] checked `{path}` in {:.1} ms; waiting for changes (ctrl-c to stop)",
        elapsed.as_secs_f64() * 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, UNIX_EPOCH};

    #[test]
    fn debounce_skips_unchanged_mtime() {
        let mut d = Debounce::default();
        let t0 = Some(UNIX_EPOCH + Duration::from_secs(100));
        assert!(d.mtime_changed(t0), "first observation always fires");
        assert!(!d.mtime_changed(t0));
        let t1 = Some(UNIX_EPOCH + Duration::from_secs(101));
        assert!(d.mtime_changed(t1));
        // An unreadable file (no mtime) never latches: the next good
        // observation must fire again.
        assert!(d.mtime_changed(None));
        assert!(d.mtime_changed(None));
        assert!(d.mtime_changed(t1));
    }

    #[test]
    fn debounce_skips_touches_that_keep_content() {
        let mut d = Debounce::default();
        let a = Fp::of_str("a");
        assert!(d.content_changed(a), "first content always checks");
        assert!(!d.content_changed(a), "same bytes, new mtime: no re-check");
        assert!(d.content_changed(Fp::of_str("b")));
        assert!(d.content_changed(a), "reverted content re-checks");
    }
}
