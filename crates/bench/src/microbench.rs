//! A self-contained micro-benchmark harness with a Criterion-compatible
//! API surface.
//!
//! The repository's benches were written against the subset of the
//! `criterion` API re-implemented here (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotation). Keeping the same shape means the bench
//! sources read like any other Rust benchmark while the whole suite
//! builds offline with zero external dependencies.
//!
//! Methodology: each benchmark is calibrated until one batch of
//! iterations takes ≳2 ms, then `sample_size` batches are timed and the
//! minimum/median/maximum per-iteration times reported. The median is a
//! robust location estimate under scheduler noise; the minimum
//! approximates the uncontended cost.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function_id/parameter`.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup (accepted for API compatibility;
/// the harness always materialises one batch of inputs per sample).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch freely.
    SmallInput,
    /// Inputs are large; identical handling here.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Passed to the measurement closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, calibrating the batch size first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it costs ≳2 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 22 {
                // The calibration run doubles as the first sample.
                self.samples.push(elapsed / batch as u32);
                break;
            }
            batch *= 2;
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on one input, then measure batches with per-sample
        // pre-built inputs.
        let mut batch: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 18 {
                self.samples.push(elapsed / batch as u32);
                break;
            }
            batch *= 2;
        }
        for _ in 1..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.id, &bencher.samples, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Benchmarks `f` under `id`, passing `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let (min, max) = (sorted[0], *sorted.last().expect("at least one sample"));
    let median = sorted[sorted.len() / 2];
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let rate = throughput
        .map(|t| {
            let per_second = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!("  thrpt: {}/s", scale(per_second(n), "B")),
                Throughput::Elements(n) => {
                    format!("  thrpt: {}/s", scale(per_second(n), "elem"))
                }
            }
        })
        .unwrap_or_default();
    println!(
        "{label:<48} time: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn scale(value: f64, unit: &str) -> String {
    if value >= 1e9 {
        format!("{:.2} G{unit}", value / 1e9)
    } else if value >= 1e6 {
        format!("{:.2} M{unit}", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.2} K{unit}", value / 1e3)
    } else {
        format!("{value:.1} {unit}")
    }
}

/// Declares a function running the listed benchmark targets, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        b.iter(|| 40 + 2);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 2,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 2);
    }

    #[test]
    fn groups_run_and_count() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(2);
            g.throughput(Throughput::Elements(1));
            g.bench_function("noop", |b| b.iter(|| 1u64));
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
