//! Durable, crash-resumable campaign jobs: the fault sweep and the
//! exploration loop, checkpointed through `tut-store` journals.
//!
//! Each job is content-addressed: its journal header carries a stable
//! hash over everything result-relevant (the case-study model, the
//! simulation configuration, the sweep/search parameters, the seeds,
//! and the record codec version) — deliberately **excluding** the
//! worker-thread count, so a campaign started on one machine shape
//! resumes correctly on another. A journal whose hash no longer matches
//! is stale: the job restarts from scratch with a `W0501` warning
//! instead of resuming into wrong results.
//!
//! Workers checkpoint each completed unit (BER point, annealing restart,
//! mapping shard) through an `mpsc` channel to a single writer thread
//! ([`tut_store::writer_loop`]), which appends strictly in unit order
//! and group-commits with one fsync per drained batch. The on-disk
//! record set is therefore always a *prefix* of the unit list, and a
//! resumed run — replaying that prefix and computing the rest — is
//! bit-identical to an uninterrupted run at any thread count.

use std::collections::HashMap;
use std::path::Path;
use std::sync::mpsc::{self, Sender};
use std::sync::Mutex;

use tut_diag::Diagnostic;
use tut_explore::{
    ExploreCheckpoint, GroupingOptions, GroupingSolution, MappingOptions, MappingSolution,
    RestartOutcome, ShardBest,
};
use tut_profiling::ProfilingError;
use tut_sim::SimConfig;
use tut_store::{open_job, writer_loop, JobHasher, StoreError};
use tut_trace::{NoopSink, Progress};

use crate::faultsweep::{self, SweepPoint};

/// Version of the record codecs below, folded into every job hash; bump
/// on any shape change so old journals go stale instead of misdecoding.
const CODEC_VERSION: u64 = 1;

/// Journal file name of the fault-sweep job inside the store directory.
pub const SWEEP_JOURNAL: &str = "fault-sweep.journal";
/// Journal file name of the exploration grouping stage.
pub const GROUPING_JOURNAL: &str = "explore-grouping.journal";
/// Journal file name of the exploration mapping stage.
pub const MAPPING_JOURNAL: &str = "explore-mapping.journal";

/// Errors of a durable job: the store layer or the computation itself.
#[derive(Debug)]
pub enum JobError {
    /// The journal failed (filesystem error, or a replayed record that
    /// no longer decodes).
    Store(StoreError),
    /// A work unit's computation failed.
    Profiling(ProfilingError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Store(e) => write!(f, "results store: {e}"),
            JobError::Profiling(e) => write!(f, "campaign run: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Store(e) => Some(e),
            JobError::Profiling(e) => Some(e),
        }
    }
}

impl From<StoreError> for JobError {
    fn from(e: StoreError) -> JobError {
        JobError::Store(e)
    }
}

impl From<ProfilingError> for JobError {
    fn from(e: ProfilingError) -> JobError {
        JobError::Profiling(e)
    }
}

fn decode_err(reason: impl Into<String>) -> StoreError {
    StoreError::Decode {
        reason: reason.into(),
    }
}

fn ensure_dir(dir: &Path) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        op: "create store directory",
        source,
    })
}

// ---------------------------------------------------------------------
// Record codecs (all integers little-endian, floats by bit pattern)
// ---------------------------------------------------------------------

fn take<const N: usize>(payload: &[u8], at: &mut usize) -> Result<[u8; N], StoreError> {
    let bytes = payload
        .get(*at..*at + N)
        .ok_or_else(|| decode_err(format!("record truncated at byte {}", *at)))?;
    *at += N;
    Ok(bytes.try_into().expect("slice length checked"))
}

/// One sweep point: `u32 index | f64 ber | i64 tx, acked, retries,
/// gave_up | u64 corrupted, horizon_ns, goodput_bytes` (68 bytes).
fn encode_point(index: u32, p: &SweepPoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(68);
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&p.ber.to_bits().to_le_bytes());
    for v in [p.tx, p.acked, p.retries, p.gave_up] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [p.corrupted, p.horizon_ns, p.goodput_bytes] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_point(payload: &[u8]) -> Result<(u32, SweepPoint), StoreError> {
    let mut at = 0;
    let index = u32::from_le_bytes(take(payload, &mut at)?);
    let ber = f64::from_bits(u64::from_le_bytes(take(payload, &mut at)?));
    let tx = i64::from_le_bytes(take(payload, &mut at)?);
    let acked = i64::from_le_bytes(take(payload, &mut at)?);
    let retries = i64::from_le_bytes(take(payload, &mut at)?);
    let gave_up = i64::from_le_bytes(take(payload, &mut at)?);
    let corrupted = u64::from_le_bytes(take(payload, &mut at)?);
    let horizon_ns = u64::from_le_bytes(take(payload, &mut at)?);
    let goodput_bytes = u64::from_le_bytes(take(payload, &mut at)?);
    if at != payload.len() {
        return Err(decode_err("sweep record has trailing bytes"));
    }
    Ok((
        index,
        SweepPoint {
            ber,
            tx,
            acked,
            retries,
            gave_up,
            corrupted,
            horizon_ns,
            goodput_bytes,
        },
    ))
}

/// One grouping restart: `u32 restart | f64 objective | u32 n | n × u32
/// group assignments`.
fn encode_restart(restart: u32, outcome: &RestartOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 4 * outcome.assignment.len());
    out.extend_from_slice(&restart.to_le_bytes());
    out.extend_from_slice(&outcome.objective.to_bits().to_le_bytes());
    out.extend_from_slice(&(outcome.assignment.len() as u32).to_le_bytes());
    for &group in &outcome.assignment {
        out.extend_from_slice(&(group as u32).to_le_bytes());
    }
    out
}

fn decode_restart(payload: &[u8]) -> Result<(u32, RestartOutcome), StoreError> {
    let mut at = 0;
    let restart = u32::from_le_bytes(take(payload, &mut at)?);
    let objective = f64::from_bits(u64::from_le_bytes(take(payload, &mut at)?));
    let n = u32::from_le_bytes(take(payload, &mut at)?) as usize;
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        assignment.push(u32::from_le_bytes(take(payload, &mut at)?) as usize);
    }
    if at != payload.len() {
        return Err(decode_err("restart record has trailing bytes"));
    }
    Ok((
        restart,
        RestartOutcome {
            objective,
            assignment,
        },
    ))
}

/// One mapping shard: `u32 shard | u8 tag | (f64 cost | u64 candidate)`
/// when the shard was non-empty.
fn encode_shard(shard: u32, best: &ShardBest) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.extend_from_slice(&shard.to_le_bytes());
    match best {
        Some((cost, index)) => {
            out.push(1);
            out.extend_from_slice(&cost.to_bits().to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
        None => out.push(0),
    }
    out
}

fn decode_shard(payload: &[u8]) -> Result<(u32, ShardBest), StoreError> {
    let mut at = 0;
    let shard = u32::from_le_bytes(take(payload, &mut at)?);
    let tag = u8::from_le_bytes(take(payload, &mut at)?);
    let best = match tag {
        0 => None,
        1 => {
            let cost = f64::from_bits(u64::from_le_bytes(take(payload, &mut at)?));
            let index = u64::from_le_bytes(take(payload, &mut at)?);
            Some((cost, index))
        }
        other => return Err(decode_err(format!("unknown shard record tag {other}"))),
    };
    if at != payload.len() {
        return Err(decode_err("shard record has trailing bytes"));
    }
    Ok((shard, best))
}

// ---------------------------------------------------------------------
// The durable fault sweep
// ---------------------------------------------------------------------

/// Job hash of a fault sweep: everything that determines the table.
/// The thread budget is deliberately absent — the journal is valid at
/// any worker count.
fn sweep_job_hash(config: &SimConfig, seed: u64) -> u64 {
    let mut hasher = JobHasher::new();
    hasher
        .write_u64(CODEC_VERSION)
        .write_str("fault-sweep")
        .write_str(&format!("{config:?}"))
        .write_str(&format!("{:?}", tutmac::TutmacConfig::default()))
        .write_u64(seed);
    for &ber in &faultsweep::SWEEP_BERS {
        hasher.write_f64(ber);
    }
    hasher.finish()
}

/// The result of a durable sweep run.
#[derive(Debug)]
pub struct DurableSweep {
    /// The full table, in [`faultsweep::SWEEP_BERS`] order.
    pub points: Vec<SweepPoint>,
    /// Points replayed from the journal rather than computed.
    pub resumed: u64,
    /// Recovery findings (stale restart, torn tail) from opening the
    /// journal.
    pub warnings: Vec<Diagnostic>,
}

/// Runs the full reliability campaign with durable checkpoints in
/// `dir`: each finished BER point lands in `fault-sweep.journal` before
/// the next commit boundary, and with `resume` the journal's completed
/// prefix is replayed instead of recomputed. The resumed table is
/// bit-identical to an uninterrupted run at any thread count.
///
/// # Errors
///
/// Store failures ([`JobError::Store`]) and the first failed point in
/// BER order ([`JobError::Profiling`]). A later point that finished
/// before an earlier one failed is *not* persisted — the journal only
/// ever holds a gap-free prefix.
pub fn run_sweep_durable(
    config: &SimConfig,
    threads: usize,
    progress: &Progress,
    dir: &Path,
    resume: bool,
) -> Result<DurableSweep, JobError> {
    ensure_dir(dir)?;
    let path = dir.join(SWEEP_JOURNAL);
    let open = open_job(
        &path,
        sweep_job_hash(config, faultsweep::SWEEP_SEED),
        resume,
    )?;
    let mut journal = open.journal;
    let warnings = open.warnings;

    let mut points: Vec<SweepPoint> = Vec::with_capacity(faultsweep::SWEEP_BERS.len());
    for (i, payload) in open.records.iter().enumerate() {
        let (index, point) = decode_point(payload)?;
        if index as usize != i || i >= faultsweep::SWEEP_BERS.len() {
            return Err(decode_err(format!("unexpected sweep record index {index}")).into());
        }
        points.push(point);
    }
    let completed = points.len();
    progress.set_resumed(completed as u64);

    let todo = &faultsweep::SWEEP_BERS[completed..];
    if !todo.is_empty() {
        // The same two-layer budget split as the plain sweep: outer
        // point workers first, the surplus as intra-run LP threads.
        let budget = tut_explore::parallel::resolve_threads(threads);
        let outer = budget.min(todo.len()).max(1);
        let lp_threads = (budget / outer).max(1);
        let ranges = tut_explore::parallel::shard_ranges(todo.len() as u64, outer);
        let mut results: Vec<Option<Result<SweepPoint, ProfilingError>>> =
            (0..todo.len()).map(|_| None).collect();
        let (tx, rx) = mpsc::channel::<(u64, Vec<u8>)>();
        let journal = &mut journal;
        std::thread::scope(|scope| {
            let writer = scope.spawn(move || writer_loop(journal, completed as u64, &rx));
            let mut rest = results.as_mut_slice();
            for range in &ranges {
                let len = (range.end - range.start) as usize;
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let start = range.start as usize;
                let tx = tx.clone();
                scope.spawn(move || {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let index = completed + start + offset;
                        let result = faultsweep::run_point_threads(
                            faultsweep::SWEEP_BERS[index],
                            faultsweep::SWEEP_SEED,
                            config.clone(),
                            lp_threads,
                        );
                        if let Ok(point) = &result {
                            // A send after the writer died is harmless:
                            // the run still fails via the writer error.
                            let _ = tx.send((index as u64, encode_point(index as u32, point)));
                        }
                        *slot = Some(result);
                        progress.tick();
                    }
                });
            }
            drop(tx);
            match writer.join() {
                Ok(result) => result.map(|_| ()),
                // Preserve injected StorePanic payloads for the
                // crash-at-every-boundary tests.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })?;
        for result in results {
            points.push(result.expect("every shard fills its slots")?);
        }
    }
    Ok(DurableSweep {
        points,
        resumed: completed as u64,
        warnings,
    })
}

// ---------------------------------------------------------------------
// The durable exploration loop
// ---------------------------------------------------------------------

/// The journal-backed [`ExploreCheckpoint`]: replays the prefix decoded
/// from a recovered journal and forwards fresh units to the writer
/// thread. The sender sits behind a mutex ([`Sender`] is not `Sync`);
/// sends are one-per-finished-unit, so contention is negligible.
struct JournalCheckpoint {
    replay_restarts: HashMap<usize, RestartOutcome>,
    replay_shards: HashMap<usize, ShardBest>,
    tx: Mutex<Sender<(u64, Vec<u8>)>>,
}

impl JournalCheckpoint {
    fn new(tx: Sender<(u64, Vec<u8>)>) -> JournalCheckpoint {
        JournalCheckpoint {
            replay_restarts: HashMap::new(),
            replay_shards: HashMap::new(),
            tx: Mutex::new(tx),
        }
    }

    fn send(&self, index: u64, payload: Vec<u8>) {
        let _ = self
            .tx
            .lock()
            .expect("checkpoint sender poisoned")
            .send((index, payload));
    }
}

impl ExploreCheckpoint for JournalCheckpoint {
    fn replay_restart(&self, restart: usize) -> Option<RestartOutcome> {
        self.replay_restarts.get(&restart).cloned()
    }
    fn restart_done(&self, restart: usize, outcome: &RestartOutcome) {
        self.send(restart as u64, encode_restart(restart as u32, outcome));
    }
    fn replay_mapping_shard(&self, shard: usize) -> Option<ShardBest> {
        self.replay_shards.get(&shard).copied()
    }
    fn mapping_shard_done(&self, shard: usize, best: &ShardBest) {
        self.send(shard as u64, encode_shard(shard as u32, best));
    }
}

/// The result of a durable exploration run.
#[derive(Debug)]
pub struct DurableExplore {
    /// The grouping solution (identical to the plain exploration).
    pub grouping: GroupingSolution,
    /// The mapping solution (identical to the plain exploration).
    pub mapping: MappingSolution,
    /// Group names in mapping-problem order, for reporting.
    pub group_names: Vec<String>,
    /// Candidate element count.
    pub pes: usize,
    /// Communication-graph node count.
    pub nodes: usize,
    /// Work units (restarts + shards) replayed rather than computed.
    pub resumed: u64,
    /// Total work units of the job.
    pub total_units: u64,
    /// Recovery findings from opening the two journals.
    pub warnings: Vec<Diagnostic>,
}

/// Replays a recovered journal's records through `decode`, enforcing
/// the gap-free prefix invariant, into an index-keyed map.
fn replay_prefix<V>(
    records: &[Vec<u8>],
    what: &str,
    decode: impl Fn(&[u8]) -> Result<(u32, V), StoreError>,
) -> Result<HashMap<usize, V>, StoreError> {
    let mut map = HashMap::with_capacity(records.len());
    for (i, payload) in records.iter().enumerate() {
        let (index, value) = decode(payload)?;
        if index as usize != i {
            return Err(decode_err(format!(
                "{what} record {i} carries index {index}; journal is not a prefix"
            )));
        }
        map.insert(index as usize, value);
    }
    Ok(map)
}

/// Runs one checkpointed stage: spawns the writer thread over `journal`,
/// runs `stage` with the checkpoint, then joins the writer (preserving
/// injected panic payloads) and propagates its error.
fn run_stage<R>(
    journal: &mut tut_store::Journal,
    start_index: u64,
    checkpoint: JournalCheckpoint,
    stage: impl FnOnce(&JournalCheckpoint) -> R,
) -> Result<R, JobError> {
    let (result, writer) = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(u64, Vec<u8>)>();
        let checkpoint = JournalCheckpoint {
            tx: Mutex::new(tx),
            ..checkpoint
        };
        let writer = scope.spawn(move || writer_loop(journal, start_index, &rx));
        let result = stage(&checkpoint);
        drop(checkpoint); // hang up the channel so the writer drains out
        let writer = match writer.join() {
            Ok(outcome) => outcome,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (result, writer)
    });
    writer?;
    Ok(result)
}

/// Runs the §4.5 exploration loop (grouping then mapping, the same
/// problem and options as `repro explore`) with durable checkpoints in
/// `dir`: every annealing restart lands in `explore-grouping.journal`
/// and every mapping shard in `explore-mapping.journal`. With `resume`,
/// completed units are replayed; the resumed solutions are bit-identical
/// to an uninterrupted run at any thread count.
///
/// `progress` enables per-stage stderr heartbeats; their totals (restart
/// and candidate counts) are only known here, after the problem is
/// built, which is why this function owns the meters.
///
/// # Errors
///
/// Store failures only — the exploration itself is infallible once the
/// case-study system builds (which is covered by [`crate::paper_system`]).
pub fn run_explore_durable(
    threads: usize,
    dir: &Path,
    resume: bool,
    progress: bool,
) -> Result<DurableExplore, JobError> {
    ensure_dir(dir)?;
    let (system, handles) = crate::paper_system_with_handles();
    let report = crate::profile(&system);
    let graph = tut_explore::CommGraph::from_report(&report);
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let options = GroupingOptions {
        groups: 5,
        balance_weight: 0.0,
        pinned,
        threads,
        ..Default::default()
    };
    let mut warnings = Vec::new();

    // ---- grouping stage -------------------------------------------------
    // Hash with the thread knob normalised out: the journal must resume
    // at any worker count.
    let grouping_hash = JobHasher::new()
        .write_u64(CODEC_VERSION)
        .write_str("explore-grouping")
        .write_str(&format!("{graph:?}"))
        .write_str(&format!(
            "{:?}",
            GroupingOptions {
                threads: 0,
                ..options.clone()
            }
        ))
        .finish();
    let open = open_job(&dir.join(GROUPING_JOURNAL), grouping_hash, resume)?;
    warnings.extend(open.warnings);
    let mut journal = open.journal;
    let replay_restarts = replay_prefix(&open.records, "grouping", decode_restart)?;
    let resumed_restarts = replay_restarts.len() as u64;
    let grouping_progress = if progress {
        Progress::new("explore.grouping", u64::from(options.restarts))
    } else {
        Progress::disabled()
    };
    grouping_progress.set_resumed(resumed_restarts);
    let (dummy_tx, _dummy_rx) = mpsc::channel();
    let mut checkpoint = JournalCheckpoint::new(dummy_tx);
    checkpoint.replay_restarts = replay_restarts;
    let grouping = run_stage(&mut journal, resumed_restarts, checkpoint, |ckpt| {
        tut_explore::partition_checkpointed(
            &graph,
            &options,
            &mut NoopSink,
            &grouping_progress,
            ckpt,
        )
    })?;
    grouping_progress.finish();

    // ---- mapping stage --------------------------------------------------
    let (problem, _, instances) = tut_explore::mapping::problem_from_system(&system, &report)
        .expect("mapping problem builds from the paper system");
    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator instance");
    let mapping_options = MappingOptions {
        pinned: vec![(3, acc_index)],
        threads,
        ..Default::default()
    };
    let mapping_hash = JobHasher::new()
        .write_u64(CODEC_VERSION)
        .write_str("explore-mapping")
        .write_str(&format!("{problem:?}"))
        .write_str(&format!(
            "{:?}",
            MappingOptions {
                threads: 0,
                ..mapping_options.clone()
            }
        ))
        .write_u64(tut_explore::mapping::CHECKPOINT_SHARDS as u64)
        .finish();
    let open = open_job(&dir.join(MAPPING_JOURNAL), mapping_hash, resume)?;
    warnings.extend(open.warnings);
    let mut journal = open.journal;
    let replay_shards = replay_prefix(&open.records, "mapping", decode_shard)?;
    let resumed_shards = replay_shards.len() as u64;
    // Progress for mapping is in candidates, so translate replayed
    // shards into the candidate count they cover.
    let candidates = (problem.pes.len() as u64)
        .pow((problem.group_names.len() - mapping_options.pinned.len()) as u32);
    let shard_ranges =
        tut_explore::parallel::shard_ranges(candidates, tut_explore::mapping::CHECKPOINT_SHARDS);
    let resumed_candidates: u64 = shard_ranges
        .iter()
        .take(resumed_shards as usize)
        .map(|r| r.end - r.start)
        .sum();
    let mapping_progress = if progress {
        Progress::new("explore.mapping", candidates)
    } else {
        Progress::disabled()
    };
    mapping_progress.set_resumed(resumed_candidates);
    let (dummy_tx, _dummy_rx) = mpsc::channel();
    let mut checkpoint = JournalCheckpoint::new(dummy_tx);
    checkpoint.replay_shards = replay_shards;
    let mapping = run_stage(&mut journal, resumed_shards, checkpoint, |ckpt| {
        tut_explore::optimise_mapping_checkpointed(
            &problem,
            &mapping_options,
            &mut NoopSink,
            &mapping_progress,
            ckpt,
        )
    })?;
    mapping_progress.finish();

    Ok(DurableExplore {
        grouping,
        mapping,
        group_names: problem.group_names.clone(),
        pes: problem.pes.len(),
        nodes: graph.len(),
        resumed: resumed_restarts + resumed_shards,
        total_units: u64::from(options.restarts) + shard_ranges.len() as u64,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_codec_roundtrips() {
        let point = SweepPoint {
            ber: 1e-4,
            tx: 123,
            acked: -7,
            retries: 45,
            gave_up: 6,
            corrupted: 78,
            horizon_ns: 9_000_000,
            goodput_bytes: 10_240,
        };
        let payload = encode_point(3, &point);
        assert_eq!(payload.len(), 68);
        let (index, decoded) = decode_point(&payload).expect("decodes");
        assert_eq!(index, 3);
        assert_eq!(decoded, point);
        assert!(decode_point(&payload[..payload.len() - 1]).is_err());
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_point(&extended).is_err());
    }

    #[test]
    fn restart_codec_roundtrips() {
        let outcome = RestartOutcome {
            objective: 17.25,
            assignment: vec![0, 3, 1, 1, 2],
        };
        let (restart, decoded) = decode_restart(&encode_restart(9, &outcome)).expect("decodes");
        assert_eq!(restart, 9);
        assert_eq!(decoded, outcome);
    }

    #[test]
    fn shard_codec_roundtrips_both_tags() {
        let (shard, best) = decode_shard(&encode_shard(4, &Some((2.5, 77)))).expect("decodes");
        assert_eq!(shard, 4);
        assert_eq!(best, Some((2.5, 77)));
        let (shard, best) = decode_shard(&encode_shard(5, &None)).expect("decodes");
        assert_eq!((shard, best), (5, None));
        assert!(decode_shard(&[1, 0, 0, 0, 9]).is_err(), "unknown tag");
    }

    #[test]
    fn replay_prefix_rejects_gaps() {
        let records = vec![encode_shard(0, &None), encode_shard(2, &None)];
        let err = replay_prefix(&records, "mapping", decode_shard).expect_err("gap");
        assert!(err.to_string().contains("not a prefix"), "{err}");
    }

    /// The job hash must not depend on the worker-thread budget (a
    /// campaign resumes on any machine shape) but must change when the
    /// configuration does (a stale journal must not resume).
    #[test]
    fn sweep_job_hash_ignores_threads_but_tracks_config() {
        let a = sweep_job_hash(&SimConfig::with_horizon_ns(1_000_000), 7);
        let b = sweep_job_hash(&SimConfig::with_horizon_ns(1_000_000), 7);
        assert_eq!(a, b, "stable across invocations");
        let other_horizon = sweep_job_hash(&SimConfig::with_horizon_ns(2_000_000), 7);
        assert_ne!(a, other_horizon);
        let other_seed = sweep_job_hash(&SimConfig::with_horizon_ns(1_000_000), 8);
        assert_ne!(a, other_seed);
    }
}
