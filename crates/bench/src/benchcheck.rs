//! The `repro bench-check` driver: cold vs warm front-end latency.
//!
//! Measures the cold `repro check` pipeline against the incremental
//! [`Checker`](crate::incremental::Checker) on the TUTMAC fixture,
//! applying a fresh single-statement behaviour edit before every warm
//! repetition so each one does genuine patch work (never a report-cache
//! hit). Every warm iteration is also verified byte-identical against
//! the cold pipeline on the same text — the benchmark doubles as the
//! correctness drill. Results go to `BENCH_check.json` and the warm path
//! must clear [`WARM_SPEEDUP_FLOOR`].

use std::time::Instant;

use tut_uml::outline::Outline;

use crate::incremental::Checker;

/// Minimum cold/warm ratio for a behaviour-body re-check (the
/// acceptance floor; measured headroom is larger).
pub const WARM_SPEEDUP_FLOOR: f64 = 10.0;

const NAME: &str = "paper-system.xml";

/// One cold/warm measurement pair, in nanoseconds (minimum over the
/// repetitions, the usual low-noise estimator for sub-ms latencies).
#[derive(Clone, Copy, Debug)]
pub struct BenchCheckReport {
    /// Cold pipeline latency on the unedited fixture.
    pub cold_ns: u64,
    /// Warm incremental re-check latency after a behaviour edit.
    pub warm_ns: u64,
    /// Cold repetitions measured.
    pub cold_iters: u32,
    /// Warm repetitions measured.
    pub warm_iters: u32,
}

impl BenchCheckReport {
    /// Cold/warm ratio.
    pub fn speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns.max(1) as f64
    }
}

/// Renders the `BENCH_check.json` payload.
pub fn to_json(r: &BenchCheckReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"fixture\": \"{}\",\n",
            "  \"edit\": \"single compute-amount constant in one state-machine body\",\n",
            "  \"cold_ns\": {},\n",
            "  \"warm_ns\": {},\n",
            "  \"speedup\": {:.2},\n",
            "  \"floor\": {:.1},\n",
            "  \"cold_iters\": {},\n",
            "  \"warm_iters\": {}\n",
            "}}\n"
        ),
        NAME,
        r.cold_ns,
        r.warm_ns,
        r.speedup(),
        WARM_SPEEDUP_FLOOR,
        r.cold_iters,
        r.warm_iters
    )
}

/// Rewrites one `compute` amount inside the first state-machine segment
/// that has one, so edit `n` yields a distinct, still-clean document.
/// `None` if the fixture unexpectedly has no such site.
pub fn edit_behavior(text: &str, n: u64) -> Option<String> {
    let outline = Outline::scan(text)?;
    for (i, seg) in outline.segments.iter().enumerate() {
        if seg.ty != "uml:StateMachine" {
            continue;
        }
        let seg_text = outline.segment_text(text, i);
        let Some(compute_at) = seg_text.find("<compute ") else {
            continue;
        };
        let data_rel = seg_text[compute_at..].find("data=\"")? + compute_at + "data=\"".len();
        let end_rel = data_rel + seg_text[data_rel..].find('"')?;
        let start = seg.range.start + data_rel;
        let end = seg.range.start + end_rel;
        return Some(format!("{}{}{}", &text[..start], 1000 + n, &text[end..]));
    }
    None
}

/// Runs the measurement. `quick` shortens the repetition counts (CI
/// smoke); the floor and the byte-identity check apply in both modes,
/// but only the full run writes `BENCH_check.json`.
pub fn run_bench_check(quick: bool) -> i32 {
    let base = crate::paper_system().to_xml();
    let (cold_iters, warm_iters): (u32, u32) = if quick { (5, 15) } else { (20, 50) };

    // Cold: a fresh checker per repetition, so nothing carries over.
    let mut cold_ns = u64::MAX;
    for _ in 0..cold_iters {
        let mut checker = Checker::new();
        let started = Instant::now();
        let out = checker.check(NAME, &base);
        cold_ns = cold_ns.min(started.elapsed().as_nanos() as u64);
        if out.has_errors {
            eprintln!(
                "[bench-check] fixture unexpectedly has errors:\n{}",
                out.text
            );
            return 1;
        }
    }

    // Warm: one checker primed on the base text, then a fresh behaviour
    // edit per repetition. The edits and the cold-pipeline oracles are
    // all prepared up front so nothing but the warm path runs inside
    // (or between) the timed regions; outcomes are collected and
    // verified byte-identical afterwards.
    let mut edits = Vec::with_capacity(warm_iters as usize);
    for n in 0..warm_iters {
        let Some(edited) = edit_behavior(&base, u64::from(n)) else {
            eprintln!("[bench-check] no compute statement found in any state machine");
            return 1;
        };
        edits.push(edited);
    }
    let oracles: Vec<(String, String)> = edits
        .iter()
        .map(|edited| {
            let report = crate::check::check_source(NAME, edited);
            (report.render_text(), report.render_json())
        })
        .collect();
    let mut checker = Checker::new();
    checker.check(NAME, &base);
    let mut warm_ns = u64::MAX;
    let mut outcomes = Vec::with_capacity(edits.len());
    for edited in &edits {
        let started = Instant::now();
        let out = checker.check(NAME, edited);
        warm_ns = warm_ns.min(started.elapsed().as_nanos() as u64);
        outcomes.push(out);
    }
    for (n, (out, oracle)) in outcomes.iter().zip(&oracles).enumerate() {
        if out.text != oracle.0 || out.json != oracle.1 {
            eprintln!("[bench-check] warm report diverged from cold pipeline at edit {n}");
            eprintln!("--- warm ---\n{}\n--- cold ---\n{}", out.text, oracle.0);
            return 1;
        }
    }

    let report = BenchCheckReport {
        cold_ns,
        warm_ns,
        cold_iters,
        warm_iters,
    };
    println!(
        "Front-end check latency (TUTMAC fixture, {} bytes)",
        base.len()
    );
    println!();
    println!(
        "  cold check             {:>9.3} ms  (min of {})",
        report.cold_ns as f64 / 1e6,
        report.cold_iters
    );
    println!(
        "  warm re-check (edit)   {:>9.3} ms  (min of {}, byte-identical to cold)",
        report.warm_ns as f64 / 1e6,
        report.warm_iters
    );
    println!(
        "  speedup                {:>9.1}x  (floor {:.0}x)",
        report.speedup(),
        WARM_SPEEDUP_FLOOR
    );
    if !quick {
        let json = to_json(&report);
        tut_store::write_atomic(std::path::Path::new("BENCH_check.json"), json.as_bytes())
            .unwrap_or_else(|e| panic!("writing BENCH_check.json: {e}"));
        println!("wrote BENCH_check.json ({} bytes)", json.len());
    }
    if report.speedup() < WARM_SPEEDUP_FLOOR {
        eprintln!(
            "[bench-check] warm re-check speedup {:.1}x below floor {:.0}x",
            report.speedup(),
            WARM_SPEEDUP_FLOOR
        );
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edits_produce_distinct_clean_documents() {
        let base = crate::paper_system().to_xml();
        let a = edit_behavior(&base, 0).expect("fixture has a compute site");
        let b = edit_behavior(&base, 1).expect("fixture has a compute site");
        assert_ne!(a, base);
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
        let report = crate::check::check_source("edited.xml", &a);
        assert!(!report.has_errors(), "{}", report.render_text());
    }
}
