//! The simulation performance baseline (experiment P1): event throughput
//! of a TUTMAC run and wall-clock of the fault-injection sweep, written
//! to `BENCH_sim.json` so the repository carries a recorded perf
//! trajectory.
//!
//! The `repro bench` item runs this; `--quick` shortens the horizons and
//! enforces a generous events/sec floor so CI catches a gross (>5x)
//! throughput regression without being sensitive to machine noise.

use std::time::Instant;

use tut_sim::{SimConfig, Simulation};
use tut_trace::{perf, Progress};

use crate::faultsweep;

/// Throughput of one timed TUTMAC simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EventRate {
    /// Simulated horizon of the run (ns).
    pub horizon_ns: u64,
    /// Log records the run produced.
    pub records: u64,
    /// Run-to-completion steps executed.
    pub steps: u64,
    /// Best wall-clock time over the measurement repeats (seconds).
    pub wall_s: f64,
}

impl EventRate {
    /// Log records produced per wall-clock second (the headline
    /// events/sec figure of experiment P1).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.records as f64 / self.wall_s
        }
    }
}

/// Wall-clock comparison of the serial and parallel fault sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepTiming {
    /// Simulated horizon of each sweep point (ns).
    pub horizon_ns: u64,
    /// BER points per sweep.
    pub points: usize,
    /// Serial sweep wall-clock (seconds).
    pub serial_s: f64,
    /// Parallel sweep wall-clock (seconds).
    pub parallel_s: f64,
    /// Worker threads of the parallel sweep.
    pub threads: usize,
}

impl SweepTiming {
    /// Serial / parallel wall-clock ratio (>1 means the parallel sweep
    /// was faster).
    pub fn speedup(&self) -> f64 {
        if self.parallel_s <= 0.0 {
            0.0
        } else {
            self.serial_s / self.parallel_s
        }
    }
}

/// The host the measurement ran on, recorded so `BENCH_sim.json` figures
/// can be compared across machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HostInfo {
    /// Logical CPUs (`std::thread::available_parallelism`; 0 when the
    /// host cannot report it).
    pub logical_cpus: usize,
    /// Worker threads the parallel measurements used.
    pub threads: usize,
}

impl HostInfo {
    /// Probes the current host; `threads` is the resolved worker count.
    pub fn probe(threads: usize) -> HostInfo {
        HostInfo {
            logical_cpus: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(0),
            threads,
        }
    }
}

/// The full P1 measurement.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchReport {
    /// TUTMAC event-throughput measurement.
    pub rate: EventRate,
    /// Fault-sweep wall-clock measurement (skipped in `--quick` mode).
    pub sweep: Option<SweepTiming>,
    /// The machine the figures were measured on.
    pub host: HostInfo,
}

/// Generous events/sec floor for `--quick` mode: an order of magnitude
/// below the measured release-build throughput on a single container
/// core, so only a >5x regression (the CI criterion) can trip it while
/// machine noise cannot.
pub const QUICK_FLOOR_EVENTS_PER_SEC: f64 = 50_000.0;

/// Times one TUTMAC simulation (build + run) and returns the best of
/// `repeats` wall-clock measurements.
///
/// # Panics
///
/// Panics if the simulation fails (covered by the tutmac tests).
pub fn measure_event_rate(horizon_ns: u64, repeats: usize) -> EventRate {
    measure_event_rate_observed(horizon_ns, repeats, &Progress::disabled())
}

/// [`measure_event_rate`] plus host observability: every repeat becomes a
/// `bench.repeat` self-profiler frame and ticks `progress`. The span
/// opens *outside* the timed region, so the reported wall-clock is
/// unaffected by profiling bookkeeping.
pub fn measure_event_rate_observed(
    horizon_ns: u64,
    repeats: usize,
    progress: &Progress,
) -> EventRate {
    let system = crate::paper_system();
    let mut best: Option<EventRate> = None;
    for _ in 0..repeats.max(1) {
        let _repeat_span = perf::enter_named("bench.repeat");
        let config = SimConfig::with_horizon_ns(horizon_ns);
        let started = Instant::now();
        let report = Simulation::from_system(&system, config)
            .expect("sim builds")
            .run()
            .expect("sim runs");
        let wall_s = started.elapsed().as_secs_f64();
        progress.tick();
        let rate = EventRate {
            horizon_ns,
            records: report.log.len() as u64,
            steps: report.total_steps,
            wall_s,
        };
        best = Some(match best {
            Some(b) if b.wall_s <= rate.wall_s => b,
            _ => rate,
        });
    }
    best.expect("at least one repeat ran")
}

/// Times the fault sweep serial and on `threads` workers.
pub fn measure_sweep(horizon_ns: u64, threads: usize) -> SweepTiming {
    measure_sweep_observed(horizon_ns, threads, &Progress::disabled())
}

/// [`measure_sweep`] with a progress heartbeat: the serial and parallel
/// passes each tick `progress` once per BER point.
pub fn measure_sweep_observed(horizon_ns: u64, threads: usize, progress: &Progress) -> SweepTiming {
    let config = SimConfig::with_horizon_ns(horizon_ns);
    let started = Instant::now();
    let serial = faultsweep::run_sweep_observed(&config, 1, progress);
    let serial_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let parallel = faultsweep::run_sweep_observed(&config, threads, progress);
    let parallel_s = started.elapsed().as_secs_f64();
    assert_eq!(parallel, serial, "parallel sweep must match serial");
    SweepTiming {
        horizon_ns,
        points: faultsweep::SWEEP_BERS.len(),
        serial_s,
        parallel_s,
        threads: tut_explore::parallel::resolve_threads(threads),
    }
}

/// Work units [`run_bench`] ticks on a progress meter: throughput repeats
/// plus, in full mode, both sweep passes' BER points.
pub fn bench_progress_total(quick: bool) -> u64 {
    if quick {
        3
    } else {
        5 + 2 * faultsweep::SWEEP_BERS.len() as u64
    }
}

/// Runs the P1 measurement. Quick mode uses a short horizon and skips
/// the sweep timing.
pub fn run_bench(quick: bool, threads: usize) -> BenchReport {
    run_bench_observed(quick, threads, &Progress::disabled())
}

/// [`run_bench`] plus host observability: repeats and sweep points tick
/// `progress` (size it with [`bench_progress_total`]), and each stage is
/// a self-profiler frame.
pub fn run_bench_observed(quick: bool, threads: usize, progress: &Progress) -> BenchReport {
    let sweep_threads = if threads <= 1 { 2 } else { threads };
    let host = HostInfo::probe(tut_explore::parallel::resolve_threads(if quick {
        threads
    } else {
        sweep_threads
    }));
    if quick {
        BenchReport {
            rate: measure_event_rate_observed(5_000_000, 3, progress),
            sweep: None,
            host,
        }
    } else {
        BenchReport {
            rate: measure_event_rate_observed(20_000_000, 5, progress),
            sweep: Some(measure_sweep_observed(5_000_000, sweep_threads, progress)),
            host,
        }
    }
}

/// Renders the measurement as the `repro bench` console block.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "host: {} logical cpus, {} worker threads\n",
        report.host.logical_cpus, report.host.threads,
    ));
    let r = &report.rate;
    out.push_str(&format!(
        "TUTMAC run: {} records / {} steps over {} ms simulated in {:.1} ms wall -> {:.0} events/sec\n",
        r.records,
        r.steps,
        r.horizon_ns / 1_000_000,
        r.wall_s * 1e3,
        r.events_per_sec(),
    ));
    if let Some(s) = &report.sweep {
        out.push_str(&format!(
            "fault-sweep ({} points, {} ms horizon): serial {:.1} ms, {} threads {:.1} ms -> {:.2}x\n",
            s.points,
            s.horizon_ns / 1_000_000,
            s.serial_s * 1e3,
            s.threads,
            s.parallel_s * 1e3,
            s.speedup(),
        ));
    }
    out
}

/// Serialises the measurement as the `BENCH_sim.json` artefact
/// (hand-rolled JSON; the workspace has no serde).
pub fn to_json(report: &BenchReport) -> String {
    let r = &report.rate;
    let mut out = String::from("{\n  \"schema\": \"tut-bench/sim/v2\",\n");
    out.push_str(&format!(
        "  \"host\": {{\n    \"logical_cpus\": {},\n    \"threads\": {}\n  }},\n",
        report.host.logical_cpus, report.host.threads,
    ));
    out.push_str(&format!(
        "  \"tutmac\": {{\n    \"horizon_ns\": {},\n    \"records\": {},\n    \"steps\": {},\n    \"wall_s\": {:.6},\n    \"events_per_sec\": {:.1}\n  }}",
        r.horizon_ns,
        r.records,
        r.steps,
        r.wall_s,
        r.events_per_sec(),
    ));
    if let Some(s) = &report.sweep {
        out.push_str(&format!(
            ",\n  \"sweep\": {{\n    \"horizon_ns\": {},\n    \"points\": {},\n    \"serial_s\": {:.6},\n    \"parallel_s\": {:.6},\n    \"threads\": {},\n    \"speedup\": {:.3}\n  }}",
            s.horizon_ns, s.points, s.serial_s, s.parallel_s, s.threads, s.speedup(),
        ));
    }
    out.push_str(&format!(
        ",\n  \"quick_floor_events_per_sec\": {QUICK_FLOOR_EVENTS_PER_SEC:.1}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_rate_arithmetic() {
        let r = EventRate {
            horizon_ns: 1_000_000,
            records: 500,
            steps: 100,
            wall_s: 0.25,
        };
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
        let zero = EventRate { wall_s: 0.0, ..r };
        assert_eq!(zero.events_per_sec(), 0.0);
    }

    #[test]
    fn sweep_speedup_arithmetic() {
        let s = SweepTiming {
            horizon_ns: 1_000_000,
            points: 5,
            serial_s: 2.0,
            parallel_s: 1.0,
            threads: 2,
        };
        assert!((s.speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_parseable() {
        let report = BenchReport {
            rate: EventRate {
                horizon_ns: 1_000_000,
                records: 10,
                steps: 5,
                wall_s: 0.001,
            },
            sweep: Some(SweepTiming {
                horizon_ns: 1_000_000,
                points: 5,
                serial_s: 0.5,
                parallel_s: 0.3,
                threads: 2,
            }),
            host: HostInfo {
                logical_cpus: 8,
                threads: 2,
            },
        };
        let text = to_json(&report);
        let json = tut_trace::json::parse(&text).expect("valid JSON");
        assert!(json
            .get("tutmac")
            .and_then(|t| t.get("events_per_sec"))
            .and_then(tut_trace::json::Json::as_f64)
            .is_some());
        assert!(json.get("sweep").is_some());
        assert_eq!(
            json.get("schema").and_then(tut_trace::json::Json::as_str),
            Some("tut-bench/sim/v2"),
        );
        assert_eq!(
            json.get("host")
                .and_then(|h| h.get("logical_cpus"))
                .and_then(tut_trace::json::Json::as_f64),
            Some(8.0),
        );
        assert_eq!(
            json.get("host")
                .and_then(|h| h.get("threads"))
                .and_then(tut_trace::json::Json::as_f64),
            Some(2.0),
        );
    }

    #[test]
    fn host_probe_reports_this_machine() {
        let host = HostInfo::probe(3);
        assert!(host.logical_cpus >= 1, "containers report >= 1 cpu");
        assert_eq!(host.threads, 3);
    }
}
