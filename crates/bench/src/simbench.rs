//! The simulation performance baseline (experiment P1): event throughput
//! of a TUTMAC run, serial-vs-parallel wall-clock of both a single run
//! (the conservative kernel) and the fault-injection sweep, and a
//! calendar-vs-heap scheduler microbench, written to `BENCH_sim.json` so
//! the repository carries a recorded perf trajectory.
//!
//! The `repro bench` item runs this; `--quick` shortens the horizons and
//! enforces a generous events/sec floor so CI catches a gross (>5x)
//! throughput regression without being sensitive to machine noise.
//!
//! Every parallel measurement clamps its worker count to the host's
//! logical CPUs: timing more workers than cores measures scheduler
//! thrash, not the algorithm (an earlier recording did exactly that —
//! `host.logical_cpus: 1` with `sweep.threads: 2` — and reported an
//! oversubscription artefact as a "speedup" of 0.877).

use std::time::Instant;

use tut_sim::{EventQueue, ParallelStats, QueueKind, SimConfig, Simulation};
use tut_trace::{perf, Progress};

use crate::faultsweep;

/// Throughput of one timed TUTMAC simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EventRate {
    /// Simulated horizon of the run (ns).
    pub horizon_ns: u64,
    /// Log records the run produced.
    pub records: u64,
    /// Run-to-completion steps executed.
    pub steps: u64,
    /// Best wall-clock time over the measurement repeats (seconds).
    pub wall_s: f64,
}

impl EventRate {
    /// Log records produced per wall-clock second (the headline
    /// events/sec figure of experiment P1).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.records as f64 / self.wall_s
        }
    }
}

/// Wall-clock comparison of the serial engine and the conservative
/// parallel kernel on one TUTMAC run (the `single_run_parallel` block of
/// `BENCH_sim.json`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ParallelTiming {
    /// Simulated horizon of each run (ns).
    pub horizon_ns: u64,
    /// Best serial wall-clock over the repeats (seconds; run only, the
    /// shared model build is excluded so the kernel is what's compared).
    pub serial_s: f64,
    /// Best parallel wall-clock over the repeats (seconds).
    pub parallel_s: f64,
    /// Worker threads the parallel runs used (clamped to host CPUs).
    pub threads: usize,
    /// Occupied logical processes the platform mapping induced.
    pub lps: usize,
    /// Conservative lookahead of the partition (ns).
    pub lookahead_ns: u64,
    /// True when every parallel log came out byte-identical to serial.
    pub log_identical: bool,
    /// Adaptive safe windows the kernel took (coordinator rounds).
    pub windows: u64,
    /// Safe windows a fixed `lookahead_ns` march over the same event
    /// stream would have taken — the coalescing baseline.
    pub windows_fixed_step: u64,
    /// Window batches exchanged with workers (one message per shard per
    /// dispatched window; idle shards are skipped).
    pub batches: u64,
}

impl ParallelTiming {
    /// Serial / parallel wall-clock ratio (>1 means the kernel won).
    pub fn speedup(&self) -> f64 {
        if self.parallel_s <= 0.0 {
            0.0
        } else {
            self.serial_s / self.parallel_s
        }
    }

    /// `windows_fixed_step / windows`: fixed-lookahead windows one
    /// adaptive window replaced on average.
    pub fn coalescing_factor(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.windows_fixed_step as f64 / self.windows as f64
        }
    }
}

/// Wall-clock comparison of the two event-queue disciplines on a
/// synthetic hold-model workload (push one, pop one, at steady state).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SchedulerTiming {
    /// Hold operations (pop + push pairs) each discipline executed.
    pub events: u64,
    /// Binary-heap wall-clock (seconds).
    pub heap_s: f64,
    /// Calendar-queue wall-clock (seconds).
    pub calendar_s: f64,
    /// Smallest probed hold-model size where the calendar queue matched
    /// the heap (`None` when it never did, including at `events`).
    pub crossover_events: Option<u64>,
}

impl SchedulerTiming {
    /// Hold operations per second through the binary heap.
    pub fn heap_events_per_sec(&self) -> f64 {
        if self.heap_s <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.heap_s
        }
    }

    /// Hold operations per second through the calendar queue.
    pub fn calendar_events_per_sec(&self) -> f64 {
        if self.calendar_s <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.calendar_s
        }
    }

    /// Heap / calendar wall-clock ratio (>1 means the calendar won).
    pub fn calendar_speedup(&self) -> f64 {
        if self.calendar_s <= 0.0 {
            0.0
        } else {
            self.heap_s / self.calendar_s
        }
    }
}

/// Wall-clock comparison of the serial and parallel fault sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepTiming {
    /// Simulated horizon of each sweep point (ns).
    pub horizon_ns: u64,
    /// BER points per sweep.
    pub points: usize,
    /// Serial sweep wall-clock (seconds).
    pub serial_s: f64,
    /// Parallel sweep wall-clock (seconds).
    pub parallel_s: f64,
    /// Worker threads the parallel sweep actually used (clamped to the
    /// host's logical CPUs).
    pub threads: usize,
    /// Worker threads the caller asked for before clamping.
    pub requested_threads: usize,
    /// `Some("serial")` when the request oversubscribed the host and
    /// the sweep was served by the serial path instead.
    pub fallback: Option<&'static str>,
}

impl SweepTiming {
    /// Serial / parallel wall-clock ratio (>1 means the parallel sweep
    /// was faster).
    pub fn speedup(&self) -> f64 {
        if self.parallel_s <= 0.0 {
            0.0
        } else {
            self.serial_s / self.parallel_s
        }
    }

    /// True when the request exceeded the host and was clamped — the
    /// recorded figure then measures the host's real parallelism, not
    /// the (meaningless) oversubscribed timing.
    pub fn oversubscribed(&self) -> bool {
        self.requested_threads > self.threads
    }
}

/// The host the measurement ran on, recorded so `BENCH_sim.json` figures
/// can be compared across machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HostInfo {
    /// Logical CPUs (`std::thread::available_parallelism`; 0 when the
    /// host cannot report it).
    pub logical_cpus: usize,
    /// Worker threads the parallel measurements used.
    pub threads: usize,
}

impl HostInfo {
    /// Probes the current host; `threads` is the resolved worker count.
    pub fn probe(threads: usize) -> HostInfo {
        HostInfo {
            logical_cpus: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(0),
            threads,
        }
    }
}

/// The full P1 measurement.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchReport {
    /// TUTMAC event-throughput measurement.
    pub rate: EventRate,
    /// Serial vs conservative-parallel single-run measurement.
    pub parallel: ParallelTiming,
    /// Calendar-queue vs binary-heap scheduler microbench.
    pub scheduler: SchedulerTiming,
    /// Fault-sweep wall-clock measurement (skipped in `--quick` mode).
    pub sweep: Option<SweepTiming>,
    /// The machine the figures were measured on.
    pub host: HostInfo,
}

/// Generous events/sec floor for `--quick` mode: an order of magnitude
/// below the measured release-build throughput on a single container
/// core, so only a >5x regression (the CI criterion) can trip it while
/// machine noise cannot. The same floor guards the calendar-queue
/// microbench (which runs far above it).
pub const QUICK_FLOOR_EVENTS_PER_SEC: f64 = 50_000.0;

/// Times one TUTMAC simulation (build + run) and returns the best of
/// `repeats` wall-clock measurements.
///
/// # Panics
///
/// Panics if the simulation fails (covered by the tutmac tests).
pub fn measure_event_rate(horizon_ns: u64, repeats: usize) -> EventRate {
    measure_event_rate_observed(horizon_ns, repeats, &Progress::disabled())
}

/// [`measure_event_rate`] plus host observability: every repeat becomes a
/// `bench.repeat` self-profiler frame and ticks `progress`. The span
/// opens *outside* the timed region, so the reported wall-clock is
/// unaffected by profiling bookkeeping.
pub fn measure_event_rate_observed(
    horizon_ns: u64,
    repeats: usize,
    progress: &Progress,
) -> EventRate {
    let system = crate::paper_system();
    let mut best: Option<EventRate> = None;
    for _ in 0..repeats.max(1) {
        let _repeat_span = perf::enter_named("bench.repeat");
        let config = SimConfig::with_horizon_ns(horizon_ns);
        let started = Instant::now();
        let report = Simulation::from_system(&system, config)
            .expect("sim builds")
            .run()
            .expect("sim runs");
        let wall_s = started.elapsed().as_secs_f64();
        progress.tick();
        let rate = EventRate {
            horizon_ns,
            records: report.log.len() as u64,
            steps: report.total_steps,
            wall_s,
        };
        best = Some(match best {
            Some(b) if b.wall_s <= rate.wall_s => b,
            _ => rate,
        });
    }
    best.expect("at least one repeat ran")
}

/// Times the serial engine against the conservative parallel kernel on
/// one TUTMAC run. Each side is best-of-`repeats`; only the run itself
/// is timed (the model build is shared setup). Every parallel log is
/// compared byte-for-byte against the serial log.
///
/// # Panics
///
/// Panics if a run fails (covered by the parallel-kernel tests).
pub fn measure_parallel_single(horizon_ns: u64, threads: usize, repeats: usize) -> ParallelTiming {
    measure_parallel_single_observed(horizon_ns, threads, repeats, &Progress::disabled())
}

/// [`measure_parallel_single`] with a progress heartbeat: every serial
/// and parallel repeat ticks `progress` and opens a self-profiler frame.
pub fn measure_parallel_single_observed(
    horizon_ns: u64,
    threads: usize,
    repeats: usize,
    progress: &Progress,
) -> ParallelTiming {
    let system = crate::paper_system();
    let config = SimConfig::with_horizon_ns(horizon_ns);
    let build =
        || Simulation::from_system(&system, config.clone()).expect("sim builds for parallel bench");
    let plan = build().parallel_plan();

    let mut serial_s = f64::INFINITY;
    let mut serial_log: Option<String> = None;
    for _ in 0..repeats.max(1) {
        let _span = perf::enter_named("bench.single_serial");
        let sim = build();
        let started = Instant::now();
        let report = sim.run().expect("serial bench run");
        serial_s = serial_s.min(started.elapsed().as_secs_f64());
        progress.tick();
        serial_log.get_or_insert_with(|| report.log.to_text());
    }
    let serial_log = serial_log.expect("at least one serial repeat ran");

    let mut parallel_s = f64::INFINITY;
    let mut log_identical = true;
    let mut stats = ParallelStats::default();
    for _ in 0..repeats.max(1) {
        let _span = perf::enter_named("bench.single_parallel");
        let sim = build();
        let started = Instant::now();
        let (report, run_stats) = sim.run_parallel_stats(threads).expect("parallel bench run");
        parallel_s = parallel_s.min(started.elapsed().as_secs_f64());
        progress.tick();
        log_identical &= report.log.to_text() == serial_log;
        // The kernel is deterministic, so every repeat reports the same
        // window counts; keep the last.
        stats = run_stats;
    }

    ParallelTiming {
        horizon_ns,
        serial_s,
        parallel_s,
        threads,
        lps: plan.occupied_lps,
        lookahead_ns: plan.lookahead_ns,
        log_identical,
        windows: stats.windows,
        windows_fixed_step: stats.windows_fixed_step,
        batches: stats.batches,
    }
}

/// Times `events` hold operations (pop one, push one at steady state)
/// through both event-queue disciplines on an identical pseudo-random
/// workload.
pub fn measure_scheduler(events: u64) -> SchedulerTiming {
    measure_scheduler_observed(events, &Progress::disabled())
}

/// [`measure_scheduler`] with a progress heartbeat: each discipline
/// ticks `progress` once when its timed loop finishes.
pub fn measure_scheduler_observed(events: u64, progress: &Progress) -> SchedulerTiming {
    let time = |kind: QueueKind| -> f64 {
        let _span = perf::enter_named("bench.scheduler");
        let wall_s = hold_model_time(kind, events);
        progress.tick();
        wall_s
    };
    let heap_s = time(QueueKind::Heap);
    let calendar_s = time(QueueKind::Calendar);
    // Crossover probe: walk a doubling ladder of smaller hold-model
    // sizes and record the first where the calendar matches the heap
    // (best-of-3 per side, the sizes are tiny). The main measurement
    // above settles the ladder's top rung.
    let mut crossover_events = None;
    for size in [1_000u64, 4_000, 16_000, 64_000] {
        if size >= events {
            break;
        }
        let best = |kind: QueueKind| -> f64 {
            (0..3)
                .map(|_| hold_model_time(kind, size))
                .fold(f64::INFINITY, f64::min)
        };
        if best(QueueKind::Calendar) <= best(QueueKind::Heap) {
            crossover_events = Some(size);
            break;
        }
    }
    if crossover_events.is_none() && calendar_s <= heap_s {
        crossover_events = Some(events);
    }
    SchedulerTiming {
        events,
        heap_s,
        calendar_s,
        crossover_events,
    }
}

/// One timed hold-model pass (pop one, push one, at steady state) of
/// `events` operations through `kind`.
fn hold_model_time(kind: QueueKind, events: u64) -> f64 {
    // SplitMix64: the same deterministic increment stream for both
    // disciplines, so the comparison is apples to apples.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut queue: EventQueue<u32> = EventQueue::new(kind);
    let mut seq = 0u64;
    let started = Instant::now();
    for i in 0..4096u32 {
        queue.push(next() % 1_000_000, seq, i);
        seq += 1;
    }
    for _ in 0..events {
        let (now_ns, _, item) = queue.pop().expect("hold model never drains");
        queue.push(now_ns + 1 + next() % 50_000, seq, item);
        seq += 1;
    }
    started.elapsed().as_secs_f64()
}

/// Times the fault sweep serial and on `threads` workers
/// (`requested_threads` records the pre-clamp ask).
pub fn measure_sweep(horizon_ns: u64, threads: usize, requested_threads: usize) -> SweepTiming {
    measure_sweep_observed(
        horizon_ns,
        threads,
        requested_threads,
        &Progress::disabled(),
    )
}

/// [`measure_sweep`] with a progress heartbeat: the serial and parallel
/// passes each tick `progress` once per BER point.
pub fn measure_sweep_observed(
    horizon_ns: u64,
    threads: usize,
    requested_threads: usize,
    progress: &Progress,
) -> SweepTiming {
    let config = SimConfig::with_horizon_ns(horizon_ns);
    let started = Instant::now();
    let serial = faultsweep::run_sweep_observed(&config, 1, progress).expect("serial sweep");
    let serial_s = started.elapsed().as_secs_f64();
    // The parallel pass gets the raw request: an oversubscribed ask is
    // served by the sweep's own serial fallback, and that is what gets
    // timed and recorded.
    let fallback = faultsweep::sweep_falls_back_to_serial(requested_threads).then_some("serial");
    let started = Instant::now();
    let parallel = faultsweep::run_sweep_observed(&config, requested_threads, progress)
        .expect("parallel sweep");
    let parallel_s = started.elapsed().as_secs_f64();
    assert_eq!(parallel, serial, "parallel sweep must match serial");
    SweepTiming {
        horizon_ns,
        points: faultsweep::SWEEP_BERS.len(),
        serial_s,
        parallel_s,
        threads: if fallback.is_some() { 1 } else { threads },
        requested_threads,
        fallback,
    }
}

/// Work units [`run_bench`] ticks on a progress meter: throughput
/// repeats, single-run serial+parallel repeats, the two scheduler
/// disciplines, plus (full mode) both sweep passes' BER points.
pub fn bench_progress_total(quick: bool) -> u64 {
    if quick {
        3 + 2 + 2
    } else {
        5 + 4 + 2 + 2 * faultsweep::SWEEP_BERS.len() as u64
    }
}

/// Resolves the worker-thread budget for the parallel measurements:
/// `threads` as asked (0 = all cores, <=1 defaults to 2 so the parallel
/// paths are exercised), clamped to the host's logical CPU count. The
/// second value is the pre-clamp request.
pub fn bench_workers(threads: usize) -> (usize, usize) {
    let logical = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let requested = tut_explore::parallel::resolve_threads(if threads <= 1 { 2 } else { threads });
    (requested.min(logical).max(1), requested)
}

/// Runs the P1 measurement. Quick mode uses a short horizon and skips
/// the sweep timing.
pub fn run_bench(quick: bool, threads: usize) -> BenchReport {
    run_bench_observed(quick, threads, &Progress::disabled())
}

/// [`run_bench`] plus host observability: repeats and sweep points tick
/// `progress` (size it with [`bench_progress_total`]), and each stage is
/// a self-profiler frame.
pub fn run_bench_observed(quick: bool, threads: usize, progress: &Progress) -> BenchReport {
    let (workers, requested) = bench_workers(threads);
    let host = HostInfo::probe(workers);
    if quick {
        BenchReport {
            rate: measure_event_rate_observed(5_000_000, 3, progress),
            parallel: measure_parallel_single_observed(5_000_000, workers, 1, progress),
            scheduler: measure_scheduler_observed(100_000, progress),
            sweep: None,
            host,
        }
    } else {
        BenchReport {
            rate: measure_event_rate_observed(20_000_000, 5, progress),
            parallel: measure_parallel_single_observed(20_000_000, workers, 2, progress),
            scheduler: measure_scheduler_observed(400_000, progress),
            sweep: Some(measure_sweep_observed(
                5_000_000, workers, requested, progress,
            )),
            host,
        }
    }
}

/// Renders the measurement as the `repro bench` console block.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "host: {} logical cpus, {} worker threads\n",
        report.host.logical_cpus, report.host.threads,
    ));
    let r = &report.rate;
    out.push_str(&format!(
        "TUTMAC run: {} records / {} steps over {} ms simulated in {:.1} ms wall -> {:.0} events/sec\n",
        r.records,
        r.steps,
        r.horizon_ns / 1_000_000,
        r.wall_s * 1e3,
        r.events_per_sec(),
    ));
    let p = &report.parallel;
    out.push_str(&format!(
        "single-run parallel ({} LPs, lookahead {} ns, {} threads): serial {:.1} ms, parallel {:.1} ms -> {:.2}x\n",
        p.lps,
        p.lookahead_ns,
        p.threads,
        p.serial_s * 1e3,
        p.parallel_s * 1e3,
        p.speedup(),
    ));
    out.push_str(&format!(
        "parallel single-run log_identical={}\n",
        p.log_identical,
    ));
    out.push_str(&format!(
        "coalescing: {} fixed-step windows -> {} adaptive windows ({:.0}x), {} batches\n",
        p.windows_fixed_step,
        p.windows,
        p.coalescing_factor(),
        p.batches,
    ));
    let q = &report.scheduler;
    let crossover_note = match q.crossover_events {
        Some(n) => format!(", crossover at {n} events"),
        None => String::from(", no crossover"),
    };
    out.push_str(&format!(
        "scheduler hold-model ({} events): heap {:.1} ms, calendar {:.1} ms -> calendar {:.0} events/sec ({:.2}x vs heap{})\n",
        q.events,
        q.heap_s * 1e3,
        q.calendar_s * 1e3,
        q.calendar_events_per_sec(),
        q.calendar_speedup(),
        crossover_note,
    ));
    if let Some(s) = &report.sweep {
        let clamp_note = if s.fallback.is_some() {
            format!(" (requested {}, serial fallback)", s.requested_threads)
        } else if s.oversubscribed() {
            format!(" (requested {}, clamped to host)", s.requested_threads)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "fault-sweep ({} points, {} ms horizon): serial {:.1} ms, {} threads{} {:.1} ms -> {:.2}x\n",
            s.points,
            s.horizon_ns / 1_000_000,
            s.serial_s * 1e3,
            s.threads,
            clamp_note,
            s.parallel_s * 1e3,
            s.speedup(),
        ));
    }
    out
}

/// Serialises the measurement as the `BENCH_sim.json` artefact
/// (hand-rolled JSON; the workspace has no serde).
pub fn to_json(report: &BenchReport) -> String {
    let r = &report.rate;
    let mut out = String::from("{\n  \"schema\": \"tut-bench/sim/v4\",\n");
    out.push_str(&format!(
        "  \"host\": {{\n    \"logical_cpus\": {},\n    \"threads\": {}\n  }},\n",
        report.host.logical_cpus, report.host.threads,
    ));
    out.push_str(&format!(
        "  \"tutmac\": {{\n    \"horizon_ns\": {},\n    \"records\": {},\n    \"steps\": {},\n    \"wall_s\": {:.6},\n    \"events_per_sec\": {:.1}\n  }},\n",
        r.horizon_ns,
        r.records,
        r.steps,
        r.wall_s,
        r.events_per_sec(),
    ));
    let p = &report.parallel;
    out.push_str(&format!(
        "  \"single_run_parallel\": {{\n    \"horizon_ns\": {},\n    \"serial_s\": {:.6},\n    \"parallel_s\": {:.6},\n    \"threads\": {},\n    \"lps\": {},\n    \"lookahead_ns\": {},\n    \"log_identical\": {},\n    \"speedup\": {:.3}\n  }},\n",
        p.horizon_ns,
        p.serial_s,
        p.parallel_s,
        p.threads,
        p.lps,
        p.lookahead_ns,
        p.log_identical,
        p.speedup(),
    ));
    out.push_str(&format!(
        "  \"window_batching\": {{\n    \"threads\": {},\n    \"windows\": {},\n    \"batches\": {}\n  }},\n",
        p.threads, p.windows, p.batches,
    ));
    out.push_str(&format!(
        "  \"coalescing\": {{\n    \"windows_before\": {},\n    \"windows_after\": {},\n    \"factor\": {:.1}\n  }},\n",
        p.windows_fixed_step,
        p.windows,
        p.coalescing_factor(),
    ));
    let q = &report.scheduler;
    let crossover = match q.crossover_events {
        Some(n) => n.to_string(),
        None => String::from("null"),
    };
    out.push_str(&format!(
        "  \"scheduler\": {{\n    \"events\": {},\n    \"heap_s\": {:.6},\n    \"calendar_s\": {:.6},\n    \"heap_events_per_sec\": {:.1},\n    \"calendar_events_per_sec\": {:.1},\n    \"crossover_events\": {}\n  }}",
        q.events,
        q.heap_s,
        q.calendar_s,
        q.heap_events_per_sec(),
        q.calendar_events_per_sec(),
        crossover,
    ));
    if let Some(s) = &report.sweep {
        let fallback = match s.fallback {
            Some(reason) => format!("\"{reason}\""),
            None => String::from("null"),
        };
        out.push_str(&format!(
            ",\n  \"sweep\": {{\n    \"horizon_ns\": {},\n    \"points\": {},\n    \"serial_s\": {:.6},\n    \"parallel_s\": {:.6},\n    \"threads\": {},\n    \"requested_threads\": {},\n    \"oversubscribed\": {},\n    \"fallback\": {},\n    \"speedup\": {:.3}\n  }}",
            s.horizon_ns,
            s.points,
            s.serial_s,
            s.parallel_s,
            s.threads,
            s.requested_threads,
            s.oversubscribed(),
            fallback,
            s.speedup(),
        ));
    }
    out.push_str(&format!(
        ",\n  \"quick_floor_events_per_sec\": {QUICK_FLOOR_EVENTS_PER_SEC:.1}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            rate: EventRate {
                horizon_ns: 1_000_000,
                records: 10,
                steps: 5,
                wall_s: 0.001,
            },
            parallel: ParallelTiming {
                horizon_ns: 1_000_000,
                serial_s: 0.004,
                parallel_s: 0.002,
                threads: 2,
                lps: 2,
                lookahead_ns: 1000,
                log_identical: true,
                windows: 100,
                windows_fixed_step: 1000,
                batches: 150,
            },
            scheduler: SchedulerTiming {
                events: 1000,
                heap_s: 0.002,
                calendar_s: 0.001,
                crossover_events: Some(1000),
            },
            sweep: Some(SweepTiming {
                horizon_ns: 1_000_000,
                points: 5,
                serial_s: 0.5,
                parallel_s: 0.3,
                threads: 2,
                requested_threads: 4,
                fallback: None,
            }),
            host: HostInfo {
                logical_cpus: 8,
                threads: 2,
            },
        }
    }

    #[test]
    fn event_rate_arithmetic() {
        let r = EventRate {
            horizon_ns: 1_000_000,
            records: 500,
            steps: 100,
            wall_s: 0.25,
        };
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
        let zero = EventRate { wall_s: 0.0, ..r };
        assert_eq!(zero.events_per_sec(), 0.0);
    }

    #[test]
    fn sweep_speedup_and_clamp_flag() {
        let s = SweepTiming {
            horizon_ns: 1_000_000,
            points: 5,
            serial_s: 2.0,
            parallel_s: 1.0,
            threads: 2,
            requested_threads: 2,
            fallback: None,
        };
        assert!((s.speedup() - 2.0).abs() < 1e-12);
        assert!(!s.oversubscribed());
        let clamped = SweepTiming {
            threads: 1,
            requested_threads: 2,
            ..s
        };
        assert!(clamped.oversubscribed());
    }

    #[test]
    fn parallel_and_scheduler_arithmetic() {
        let report = sample_report();
        assert!((report.parallel.speedup() - 2.0).abs() < 1e-12);
        assert!((report.scheduler.calendar_speedup() - 2.0).abs() < 1e-12);
        assert!((report.scheduler.heap_events_per_sec() - 500_000.0).abs() < 1e-6);
        assert!((report.scheduler.calendar_events_per_sec() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn bench_workers_never_exceed_host_cpus() {
        let logical = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        for asked in [0, 1, 2, 64] {
            let (workers, requested) = bench_workers(asked);
            assert!(workers <= logical, "{workers} workers on {logical} cpus");
            assert!(workers >= 1);
            assert!(requested >= workers);
        }
        // The old bug: asking for 1 thread silently benchmarked 2 even
        // on a single-CPU host.
        let (workers, requested) = bench_workers(1);
        assert_eq!(requested, 2, "<=1 still requests 2 to exercise the path");
        assert!(workers <= logical);
    }

    #[test]
    fn scheduler_microbench_runs_both_disciplines() {
        let timing = measure_scheduler(2000);
        assert_eq!(timing.events, 2000);
        assert!(timing.heap_s > 0.0);
        assert!(timing.calendar_s > 0.0);
    }

    #[test]
    fn json_shape_is_parseable() {
        let report = sample_report();
        let text = to_json(&report);
        let json = tut_trace::json::parse(&text).expect("valid JSON");
        assert_eq!(
            json.get("schema").and_then(tut_trace::json::Json::as_str),
            Some("tut-bench/sim/v4"),
        );
        assert!(json
            .get("tutmac")
            .and_then(|t| t.get("events_per_sec"))
            .and_then(tut_trace::json::Json::as_f64)
            .is_some());
        let parallel = json.get("single_run_parallel").expect("parallel block");
        assert_eq!(
            parallel.get("log_identical"),
            Some(&tut_trace::json::Json::Bool(true)),
        );
        assert_eq!(
            parallel.get("lps").and_then(tut_trace::json::Json::as_f64),
            Some(2.0),
        );
        let batching = json.get("window_batching").expect("window_batching block");
        assert_eq!(
            batching
                .get("batches")
                .and_then(tut_trace::json::Json::as_f64),
            Some(150.0),
        );
        let coalescing = json.get("coalescing").expect("coalescing block");
        assert_eq!(
            coalescing
                .get("windows_before")
                .and_then(tut_trace::json::Json::as_f64),
            Some(1000.0),
        );
        assert_eq!(
            coalescing
                .get("factor")
                .and_then(tut_trace::json::Json::as_f64),
            Some(10.0),
        );
        let scheduler = json.get("scheduler").expect("scheduler block");
        assert!(scheduler
            .get("calendar_events_per_sec")
            .and_then(tut_trace::json::Json::as_f64)
            .is_some());
        assert_eq!(
            scheduler
                .get("crossover_events")
                .and_then(tut_trace::json::Json::as_f64),
            Some(1000.0),
        );
        let sweep = json.get("sweep").expect("sweep block");
        assert_eq!(
            sweep.get("oversubscribed"),
            Some(&tut_trace::json::Json::Bool(true)),
        );
        assert_eq!(sweep.get("fallback"), Some(&tut_trace::json::Json::Null));
        assert_eq!(
            sweep
                .get("requested_threads")
                .and_then(tut_trace::json::Json::as_f64),
            Some(4.0),
        );
        assert_eq!(
            json.get("host")
                .and_then(|h| h.get("logical_cpus"))
                .and_then(tut_trace::json::Json::as_f64),
            Some(8.0),
        );
    }

    #[test]
    fn host_probe_reports_this_machine() {
        let host = HostInfo::probe(3);
        assert!(host.logical_cpus >= 1, "containers report >= 1 cpu");
        assert_eq!(host.threads, 3);
    }
}
