//! The `repro profile` driver: run a workload under the host-side
//! self-profiler ([`tut_trace::perf`]) and render where the tool's own
//! wall-clock time went.
//!
//! ```text
//! repro profile                  # full flow, top-20 hotspot table
//! repro profile --top 5          # shorter table
//! repro profile --folded         # collapsed stacks (inferno/flamegraph)
//! repro profile --json           # Chrome trace-event JSON (Perfetto)
//! repro profile explore          # profile the exploration drivers
//! repro profile fault-sweep      # profile the reliability campaign
//! repro profile bench --quick    # throughput floor WITH profiling on
//! ```
//!
//! Only the requested rendering goes to stdout; every status line goes to
//! stderr, so `--folded`/`--json` output pipes clean into flamegraph
//! tooling (pinned by `crates/bench/tests/progress.rs`).

use tut_faults::NoFaults;
use tut_sim::{SimConfig, Simulation};
use tut_trace::{perf, HostProf, NoopSink, Progress};

use crate::{faultsweep, simbench};

/// Parsed `repro profile` flags (the shared `repro` flags that apply).
pub struct ProfileFlags {
    /// Shorter horizons / fewer iterations.
    pub quick: bool,
    /// Emit the Chrome trace-event JSON instead of the hotspot table.
    pub json: bool,
    /// Emit collapsed (flamegraph) stacks instead of the hotspot table.
    pub folded: bool,
    /// Hotspot table length (default 20).
    pub top: Option<usize>,
    /// Worker threads for the parallel workloads.
    pub threads: usize,
}

/// Runs `repro profile` over `items` (at most one workload name; empty
/// means `flow`). Returns the process exit code.
pub fn run_profile(items: &[String], flags: &ProfileFlags) -> i32 {
    let item = match items {
        [] => "flow",
        [one] => one.as_str(),
        _ => {
            eprintln!("profile takes at most one item");
            return 2;
        }
    };
    perf::reset();
    perf::enable();
    let exit = match item {
        "flow" => {
            profile_flow(flags);
            0
        }
        "explore" => {
            profile_explore(flags);
            0
        }
        "fault-sweep" => {
            profile_fault_sweep(flags);
            0
        }
        "bench" => profile_bench(flags),
        other => {
            perf::disable();
            perf::reset();
            eprintln!("unknown profile item `{other}`; known: flow, explore, fault-sweep, bench");
            return 2;
        }
    };
    perf::disable();
    let report = perf::drain();
    if report.is_empty() {
        eprintln!("[profile] empty profile: no spans recorded");
        return 1;
    }
    eprintln!(
        "[profile] item `{item}`: {} call-tree nodes, {} raw spans dropped",
        report.nodes.len(),
        report.dropped_spans
    );
    if flags.json {
        print!("{}", report.to_chrome());
    } else if flags.folded {
        print!("{}", report.to_folded());
    } else {
        print!("{}", report.render_top(flags.top.unwrap_or(20)));
    }
    exit
}

/// The full Figure 2 pipeline: front-end checks (parse → XMI → profile
/// apply → rules → codegen) plus the profiled simulation flow
/// (serialise → parse groups → sim setup → simulate → analyse).
///
/// The check stage runs through the incremental [`Checker`] twice — a
/// cold pass and a warm re-check after a behaviour edit — so the
/// hotspot table carries `query.<stage>` frames for exactly the queries
/// each pass executed, and the cache-effectiveness line shows what the
/// edit invalidated.
fn profile_flow(flags: &ProfileFlags) {
    let xml = crate::paper_system().to_xml();
    let mut checker = crate::incremental::Checker::new();
    let cold = checker.check("paper-system.xml", &xml);
    eprintln!(
        "[profile] check stage (cold): {}",
        cold.text.lines().last().unwrap_or("")
    );
    let before = checker.stats();
    if let Some(edited) = crate::benchcheck::edit_behavior(&xml, 1) {
        checker.check("paper-system.xml", &edited);
        let warm = checker.stats().since(&before);
        eprintln!(
            "[profile] check stage (warm re-check): {}",
            warm.render().lines().next().unwrap_or("")
        );
    }
    let system = crate::paper_system();
    let config = if flags.quick {
        SimConfig::with_horizon_ns(5_000_000)
    } else {
        crate::table4_config()
    };
    let profiled =
        tut_profiling::profile_system_prof(&system, config, &mut NoFaults, &mut NoopSink, HostProf)
            .expect("profiled pipeline run");
    eprintln!(
        "[profile] flow stage: {} groups over {} ms simulated",
        profiled.group_exec.len(),
        profiled.horizon_ns / 1_000_000
    );
}

/// The §4.5 exploration loop: grouping restarts + mapping search.
fn profile_explore(flags: &ProfileFlags) {
    let (system, handles) = crate::paper_system_with_handles();
    let report = crate::profile(&system);
    let graph = tut_explore::CommGraph::from_report(&report);
    let pinned: Vec<(usize, usize)> = graph
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "user" || n.as_str() == "channel")
        .map(|(i, _)| (i, 4))
        .collect();
    let grouping = tut_explore::partition_observed(
        &graph,
        &tut_explore::GroupingOptions {
            groups: 5,
            balance_weight: 0.0,
            pinned,
            threads: flags.threads,
            annealing_iterations: if flags.quick { 2_000 } else { 20_000 },
            ..Default::default()
        },
        &mut NoopSink,
        &Progress::disabled(),
    );
    let (problem, _, instances) =
        tut_explore::mapping::problem_from_system(&system, &report).expect("mapping problem");
    let acc_index = instances
        .iter()
        .position(|&p| p == handles.accelerator)
        .expect("accelerator instance");
    let mapping = tut_explore::optimise_mapping_observed(
        &problem,
        &tut_explore::MappingOptions {
            pinned: vec![(3, acc_index)],
            threads: flags.threads,
            ..Default::default()
        },
        &mut NoopSink,
        &Progress::disabled(),
    );
    eprintln!(
        "[profile] explore stage: grouping objective {:.1}, mapping cost {:.1}",
        grouping.objective, mapping.cost
    );
}

/// The R1 reliability campaign across every BER point.
fn profile_fault_sweep(flags: &ProfileFlags) {
    let config = if flags.quick {
        SimConfig::with_horizon_ns(2_000_000)
    } else {
        crate::table4_config()
    };
    let points = faultsweep::run_sweep_observed(&config, flags.threads, &Progress::disabled())
        .expect("fault-sweep stage");
    eprintln!("[profile] fault-sweep stage: {} points", points.len());
}

/// The P1 throughput measurement with the sim hot loop profiled (the
/// engine runs via `run_with_faults_prof(HostProf)`, so per-process and
/// per-event-kind frames carry real cost). With `--quick` the events/sec
/// regression floor must hold *with profiling enabled* — this is the
/// overhead budget `scripts/verify.sh` pins.
fn profile_bench(flags: &ProfileFlags) -> i32 {
    let (horizon_ns, repeats) = if flags.quick {
        (5_000_000, 3)
    } else {
        (20_000_000, 5)
    };
    let system = crate::paper_system();
    let mut best: Option<simbench::EventRate> = None;
    for _ in 0..repeats {
        let _repeat_span = perf::enter_named("bench.repeat");
        let sim = Simulation::from_system(&system, SimConfig::with_horizon_ns(horizon_ns))
            .expect("sim builds");
        let started = std::time::Instant::now();
        let report = sim
            .run_with_faults_prof(&mut NoFaults, &mut NoopSink, HostProf)
            .expect("sim runs");
        let rate = simbench::EventRate {
            horizon_ns,
            records: report.log.len() as u64,
            steps: report.total_steps,
            wall_s: started.elapsed().as_secs_f64(),
        };
        best = Some(match best {
            Some(b) if b.wall_s <= rate.wall_s => b,
            _ => rate,
        });
    }
    let rate = best.expect("at least one repeat ran");
    eprintln!(
        "[profile] bench stage: {:.0} events/sec with profiling enabled",
        rate.events_per_sec()
    );
    if flags.quick {
        let floor = simbench::QUICK_FLOOR_EVENTS_PER_SEC;
        if rate.events_per_sec() < floor {
            eprintln!(
                "[profile bench --quick] {:.0} events/sec below regression floor {floor:.0} \
                 (profiling overhead too high)",
                rate.events_per_sec()
            );
            return 1;
        }
        eprintln!(
            "[profile bench --quick] {:.0} events/sec clears regression floor {floor:.0}",
            rate.events_per_sec()
        );
    }
    0
}
