//! End-to-end tests for the `repro check` pipeline: one run over a
//! known-bad document must surface a syntax error, a well-formedness
//! violation, and a profile-rule violation together, each with a stable
//! code and a real line:column location.

use tut_bench::check::{check_paper_system, check_source};

fn bad_fixture() -> (&'static str, String) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/check_bad.xml");
    (
        path,
        std::fs::read_to_string(path).expect("fixture readable"),
    )
}

#[test]
fn bad_fixture_reports_all_three_layers_in_one_run() {
    let (path, text) = bad_fixture();
    let report = check_source(path, &text);
    let codes: Vec<&str> = report.bag().iter().map(|d| d.code).collect();

    // Syntax error inside the embedded action language.
    assert!(codes.contains(&"E0110"), "missing E0110 in {codes:?}");
    // UML well-formedness: active class without behaviour.
    assert!(codes.contains(&"E0314"), "missing E0314 in {codes:?}");
    // TUT-Profile rule: component without behaviour.
    assert!(codes.contains(&"E0202"), "missing E0202 in {codes:?}");

    // Every one of the three carries a document span.
    for code in ["E0110", "E0314", "E0202"] {
        let d = report.bag().iter().find(|d| d.code == code).unwrap();
        assert!(d.span.is_some(), "{code} has no span");
    }
    assert!(report.has_errors());
}

#[test]
fn text_report_locates_findings_by_line_and_column() {
    let (path, text) = bad_fixture();
    let report = check_source(path, &text);
    let rendered = report.render_text();

    // The broken statement sits on the fixture's <actions> line; the
    // declaration of the behaviour-less class on its own line. Assert the
    // renderer points into the file rather than at 1:1.
    let actions_line = text
        .lines()
        .position(|l| l.contains("n := n + ;"))
        .expect("fixture contains the broken statement")
        + 1;
    assert!(
        rendered.contains(&format!("{path}:{actions_line}:")),
        "report does not point at line {actions_line}:\n{rendered}"
    );
    let rogue_line = text
        .lines()
        .position(|l| l.contains("\"Rogue\""))
        .expect("fixture declares Rogue")
        + 1;
    assert!(
        rendered.contains(&format!("{path}:{rogue_line}:")),
        "report does not point at line {rogue_line}:\n{rendered}"
    );
    // Summary line tallies severities.
    assert!(rendered.contains("error"), "{rendered}");
}

#[test]
fn json_report_carries_codes_and_line_numbers() {
    let (path, text) = bad_fixture();
    let report = check_source(path, &text);
    let json = report.render_json();
    assert_eq!(json.lines().count(), 1);
    for code in ["E0110", "E0314", "E0202"] {
        assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
    }
    assert!(json.contains("\"line\":"), "{json}");
    assert!(json.contains("\"column\":"), "{json}");
}

#[test]
fn findings_are_severity_sorted() {
    let (path, text) = bad_fixture();
    let report = check_source(path, &text);
    let severities: Vec<_> = report.bag().iter().map(|d| d.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(severities, sorted, "report not severity-sorted");
}

#[test]
fn clean_tutmac_model_checks_without_errors() {
    let report = check_paper_system();
    assert!(!report.has_errors(), "{}", report.render_text());
}
