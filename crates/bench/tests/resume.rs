//! Crash-at-every-boundary tests of the durable campaign jobs: kill the
//! sweep at each store boundary (in-process panic injection, subprocess
//! abort via `TUT_STORE_KILL`, and a genuine SIGKILL), resume, and
//! require the result — table *and* journal bytes — to be bit-identical
//! to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tut_bench::jobs;
use tut_sim::SimConfig;
use tut_store::{kill, KillMode, StorePanic, W_TORN_TAIL};
use tut_trace::Progress;

/// The kill-injection registry is process-global: any journal append in
/// this process counts against an armed site. Every test that touches a
/// journal in-process takes this lock so arming cannot leak across
/// tests under the parallel runner.
static KILL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A previous test panicking mid-scenario poisons the lock; the
    // registry is re-armed per scenario, so the guard is still valid.
    KILL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tut-bench-resume-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A 1 ms horizon keeps each BER point to a few milliseconds, so the
/// crash matrix stays fast while still exercising the real pipeline.
fn fast_config() -> SimConfig {
    SimConfig::with_horizon_ns(1_000_000)
}

fn run_sweep(dir: &Path, resume: bool) -> Result<jobs::DurableSweep, jobs::JobError> {
    jobs::run_sweep_durable(&fast_config(), 1, &Progress::disabled(), dir, resume)
}

fn journal_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join(jobs::SWEEP_JOURNAL)).expect("journal exists")
}

/// For every append and torn-write boundary k: kill the sweep at k,
/// resume, and require the resumed table and journal to be bit-identical
/// to the uninterrupted reference — with exactly the durable prefix
/// replayed rather than recomputed.
#[test]
fn sweep_killed_at_every_boundary_resumes_bit_identical() {
    let _guard = lock();
    let reference_dir = temp_dir("sweep-ref");
    let reference = run_sweep(&reference_dir, false).expect("reference sweep");
    let reference_bytes = journal_bytes(&reference_dir);
    let total = reference.points.len() as u64;
    assert_eq!(reference.resumed, 0);

    for site in ["store.append", "store.torn"] {
        for kill_at in 1..=total {
            let dir = temp_dir(&format!("sweep-{site}-{kill_at}"));
            kill::arm(site, kill_at, KillMode::Panic);
            let crashed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_sweep(&dir, false)))
                    .expect_err("armed site must fire");
            kill::disarm();
            assert_eq!(
                crashed
                    .downcast::<StorePanic>()
                    .expect("injected crash, not a genuine bug")
                    .site,
                site
            );

            let resumed = run_sweep(&dir, true)
                .unwrap_or_else(|e| panic!("resume after {site}@{kill_at}: {e}"));
            assert_eq!(
                resumed.points, reference.points,
                "{site}@{kill_at}: resumed table diverged"
            );
            // Both sites fire before the k-th record is durable, so
            // exactly the first k-1 points are replayed.
            assert_eq!(resumed.resumed, kill_at - 1, "{site}@{kill_at}");
            if site == "store.torn" {
                // The torn site leaves half a frame behind; recovery
                // must surface the truncation as W0502.
                assert!(
                    resumed.warnings.iter().any(|w| w.code == W_TORN_TAIL),
                    "{site}@{kill_at}: missing torn-tail warning"
                );
            }
            assert_eq!(
                journal_bytes(&dir),
                reference_bytes,
                "{site}@{kill_at}: resumed journal bytes diverged"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    std::fs::remove_dir_all(&reference_dir).ok();
}

/// A flipped bit in a committed record must drop that record and
/// everything after it (CRC prefix recovery), then resume cleanly to the
/// same table and journal bytes.
#[test]
fn sweep_journal_bit_flip_truncates_and_resumes() {
    let _guard = lock();
    let reference_dir = temp_dir("flip-ref");
    let reference = run_sweep(&reference_dir, false).expect("reference sweep");
    let reference_bytes = journal_bytes(&reference_dir);

    let dir = temp_dir("flip");
    run_sweep(&dir, false).expect("fresh sweep");
    let path = dir.join(jobs::SWEEP_JOURNAL);
    let mut bytes = std::fs::read(&path).expect("journal");
    // Header is 20 bytes, each frame is 8 + 68; flip a payload byte of
    // the third record (index 2).
    let target = 20 + 2 * 76 + 12;
    bytes[target] ^= 0x40;
    std::fs::write(&path, &bytes).expect("corrupt journal");

    let resumed = run_sweep(&dir, true).expect("resume over corruption");
    assert_eq!(resumed.points, reference.points);
    assert_eq!(
        resumed.resumed, 2,
        "records before the flipped one are replayed, the rest recomputed"
    );
    assert!(resumed.warnings.iter().any(|w| w.code == W_TORN_TAIL));
    assert_eq!(journal_bytes(&dir), reference_bytes);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&reference_dir).ok();
}

/// The exploration job resumes to bit-identical solutions with every
/// unit replayed, across thread counts.
#[test]
fn explore_resumes_bit_identical_at_any_thread_count() {
    let _guard = lock();
    let dir = temp_dir("explore");
    let fresh = jobs::run_explore_durable(1, &dir, false, false).expect("fresh explore");
    assert_eq!(fresh.resumed, 0);
    for threads in [1usize, 4] {
        let resumed = jobs::run_explore_durable(threads, &dir, true, false)
            .unwrap_or_else(|e| panic!("resume at {threads} threads: {e}"));
        assert_eq!(resumed.grouping, fresh.grouping, "{threads} threads");
        assert_eq!(resumed.mapping, fresh.mapping, "{threads} threads");
        assert_eq!(
            resumed.mapping.cost.to_bits(),
            fresh.mapping.cost.to_bits(),
            "{threads} threads"
        );
        assert_eq!(resumed.resumed, fresh.total_units, "everything replayed");
        assert!(resumed.warnings.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Subprocess crashes: the repro binary dying for real.
// ---------------------------------------------------------------------

fn repro(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["fault-sweep", "--quick", "--no-progress", "--store"])
        .arg(dir)
        .args(args);
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.output().expect("repro runs")
}

fn stdout_table(out: &std::process::Output) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    let table: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("BER") || l.contains("Mbit/s"))
        .collect();
    assert!(!table.is_empty(), "no sweep table on stdout:\n{text}");
    table.join("\n")
}

/// `TUT_STORE_KILL` aborts the binary (no unwinding, no flushing — the
/// in-process stand-in for a power cut) mid-way through the third
/// record's write; `--resume` must replay 2 points, recompute 3, and
/// print the same table as an uninterrupted run.
#[test]
fn subprocess_abort_at_boundary_then_resume_matches_uninterrupted() {
    let reference_dir = temp_dir("sub-ref");
    let reference = repro(&reference_dir, &[], &[]);
    assert!(reference.status.success());

    let dir = temp_dir("sub-abort");
    let killed = repro(&dir, &[], &[("TUT_STORE_KILL", "store.torn:3:abort")]);
    assert!(!killed.status.success(), "armed abort must kill the run");

    let resumed = repro(&dir, &["--resume"], &[]);
    assert!(
        resumed.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(stdout_table(&resumed), stdout_table(&reference));
    let text = String::from_utf8_lossy(&resumed.stdout);
    assert!(text.contains("resumed=2 total=5"), "{text}");
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains(W_TORN_TAIL),
        "torn-tail warning must reach stderr"
    );
    assert_eq!(
        std::fs::read(dir.join(jobs::SWEEP_JOURNAL)).expect("journal"),
        std::fs::read(reference_dir.join(jobs::SWEEP_JOURNAL)).expect("journal"),
        "resumed journal bytes diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&reference_dir).ok();
}

/// A genuine SIGKILL (`Child::kill`) racing the run: whenever the signal
/// lands, a `--resume` afterwards must converge to the uninterrupted
/// table. (If the run wins the race the resume simply replays all 5.)
#[test]
fn subprocess_sigkill_then_resume_matches_uninterrupted() {
    let reference_dir = temp_dir("kill9-ref");
    let reference = repro(&reference_dir, &[], &[]);
    assert!(reference.status.success());

    let dir = temp_dir("kill9");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fault-sweep", "--quick", "--no-progress", "--store"])
        .arg(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("repro spawns");
    // Kill as soon as the journal holds at least one committed record
    // (header 20 bytes + one 76-byte frame), or let it finish if it wins.
    let path = dir.join(jobs::SWEEP_JOURNAL);
    for _ in 0..500 {
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if len >= 96 {
            child.kill().ok();
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    child.wait().expect("child reaped");

    let resumed = repro(&dir, &["--resume"], &[]);
    assert!(
        resumed.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(stdout_table(&resumed), stdout_table(&reference));
    assert_eq!(
        std::fs::read(&path).expect("journal"),
        std::fs::read(reference_dir.join(jobs::SWEEP_JOURNAL)).expect("journal"),
        "journal must converge to the uninterrupted bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&reference_dir).ok();
}
