//! Binary-level tests of the progress/stdout contract: heartbeats go to
//! stderr only, `--no-progress` silences them, machine-readable stdout
//! stays machine-clean, and `repro profile` emits parseable artefacts.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// The progress marker every heartbeat line starts with. Mirrors
/// `tut_trace::progress::MARKER`.
const MARKER: &str = "[progress]";

#[test]
fn explore_heartbeat_goes_to_stderr_never_stdout() {
    let out = repro(&["explore"]);
    assert!(out.status.success());
    let stderr = text(&out.stderr);
    assert!(
        stderr.contains(MARKER),
        "expected a {MARKER} heartbeat on stderr:\n{stderr}"
    );
    assert!(
        !text(&out.stdout).contains(MARKER),
        "heartbeats leaked to stdout"
    );
}

#[test]
fn no_progress_flag_suppresses_the_heartbeat() {
    let out = repro(&["explore", "--no-progress"]);
    assert!(out.status.success());
    let stderr = text(&out.stderr);
    assert!(
        !stderr.contains(MARKER),
        "--no-progress must silence heartbeats:\n{stderr}"
    );
}

#[test]
fn check_json_stdout_is_machine_clean() {
    let out = repro(&["check", "--json"]);
    assert!(out.status.success());
    let stdout = text(&out.stdout);
    for line in stdout.lines().filter(|l| !l.is_empty()) {
        assert!(
            line.starts_with('{'),
            "non-JSON line on check --json stdout: {line}"
        );
        tut_trace::json::parse(line).expect("stdout line parses as JSON");
    }
    assert!(!stdout.contains(MARKER));
}

#[test]
fn profile_folded_stdout_is_pure_collapsed_stacks() {
    let out = repro(&["profile", "--quick", "--folded"]);
    assert!(out.status.success());
    let stdout = text(&out.stdout);
    assert!(!stdout.is_empty(), "folded output must be non-empty");
    let mut nested = false;
    for line in stdout.lines() {
        let (stack, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("impure folded line: {line}"));
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
        nested |= stack.contains(';');
    }
    assert!(nested, "expected at least one parent;child stack");
    // Status lines live on stderr.
    assert!(text(&out.stderr).contains("[profile]"));
}

#[test]
fn profile_json_stdout_is_a_chrome_trace() {
    let out = repro(&["profile", "--quick", "--json"]);
    assert!(out.status.success());
    let stdout = text(&out.stdout);
    let doc = tut_trace::json::parse(&stdout).expect("stdout is one JSON document");
    let events = doc
        .get("traceEvents")
        .and_then(tut_trace::json::Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn profile_rejects_unknown_items() {
    let out = repro(&["profile", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(text(&out.stderr).contains("unknown profile item"));
}
