//! The correctness contract of the incremental front end: for *any*
//! edit, a warm [`Checker`] re-check renders byte-identically to the
//! cold pipeline, and a behaviour-body edit invalidates exactly the
//! queries that depend on the edited bytes.

use tut_bench::benchcheck::edit_behavior;
use tut_bench::check::check_source;
use tut_bench::incremental::Checker;
use tut_query::CacheStats;

const NAME: &str = "paper-system.xml";

fn paper_xml() -> String {
    tut_bench::paper_system().to_xml()
}

/// Checks `text` through `checker` and asserts the outcome is
/// byte-identical to the cold pipeline's.
fn check_against_oracle(checker: &mut Checker, text: &str, what: &str) {
    let oracle = check_source(NAME, text);
    let out = checker.check(NAME, text);
    assert_eq!(out.text, oracle.render_text(), "text diverged: {what}");
    assert_eq!(out.json, oracle.render_json(), "json diverged: {what}");
    assert_eq!(
        out.has_errors,
        oracle.has_errors(),
        "severity diverged: {what}"
    );
}

/// Total misses of the stage called `name` in a stats delta.
fn misses_of(stats: &CacheStats, name: &str) -> u64 {
    stats
        .stages
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.misses)
        .sum()
}

/// A tiny deterministic LCG (same constants as `tut_sim`'s noise
/// source) so the random-edit sweep reproduces bit-for-bit.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Property: one checker fed a stream of random single-byte mutations
/// (overwrites, deletions, insertions — structural bytes included, so
/// both the patch path and every fallback fire) always renders exactly
/// what the cold pipeline renders for the same bytes.
#[test]
fn random_edits_stay_byte_identical_to_the_cold_pipeline() {
    let base = paper_xml();
    let mut checker = Checker::new();
    check_against_oracle(&mut checker, &base, "base document");
    let mut rng = Lcg(0x5eed_cafe);
    let replacements = b"0123456789abcdef<>\"/ ";
    for round in 0..40 {
        let mut text = base.clone().into_bytes();
        let at = rng.below(text.len() - 2) + 1;
        match rng.below(3) {
            0 => text[at] = replacements[rng.below(replacements.len())],
            1 => {
                text.remove(at);
            }
            _ => text.insert(at, replacements[rng.below(replacements.len())]),
        }
        let Ok(text) = String::from_utf8(text) else {
            continue; // mutated a multi-byte character: not a text edit
        };
        check_against_oracle(&mut checker, &text, &format!("random edit {round}"));
        // Interleave returns to the base document, as an editor's undo
        // would; these must come straight from the report cache.
        if round % 5 == 4 {
            check_against_oracle(&mut checker, &base, &format!("undo after edit {round}"));
        }
    }
}

/// A behaviour-body edit recomputes exactly the queries downstream of
/// the edited segment: the report, the outline, one segment parse, one
/// state-machine decode, one per-class behaviour check — and nothing
/// else.
#[test]
fn behavior_edit_invalidates_exactly_the_downstream_queries() {
    let base = paper_xml();
    let mut checker = Checker::new();
    checker.check(NAME, &base);
    let edited = edit_behavior(&base, 1).expect("fixture has a compute site");
    let before = checker.stats();
    check_against_oracle(&mut checker, &edited, "behaviour edit");
    let warm = checker.stats().since(&before);
    for stage in [
        "report",
        "outline",
        "parse_xml",
        "xmi_decode",
        "wf_behavior",
    ] {
        assert_eq!(
            misses_of(&warm, stage),
            1,
            "stage {stage}:\n{}",
            warm.render()
        );
    }
    assert_eq!(
        warm.total_misses(),
        5,
        "no other stage recomputes:\n{}",
        warm.render()
    );
    assert!(warm.total_hits() > 0, "downstream stages replay from cache");
}

/// A structural edit (renaming a class) keeps the report byte-identical
/// through the rebuild path, and a syntax-breaking edit reproduces the
/// cold parser's `E0101` exactly.
#[test]
fn structural_and_broken_edits_match_the_cold_pipeline() {
    let base = paper_xml();
    let mut checker = Checker::new();
    checker.check(NAME, &base);
    let renamed = base.replacen("name=\"user\"", "name=\"customer\"", 1);
    assert_ne!(renamed, base, "fixture names a `user` class");
    check_against_oracle(&mut checker, &renamed, "class rename");
    let broken = base.replacen("</packagedElement>", "</packagedElemen>", 1);
    let out = checker.check(NAME, &broken);
    assert!(out.has_errors);
    assert!(
        out.text.contains("E0101"),
        "syntax error surfaces:\n{}",
        out.text
    );
    check_against_oracle(&mut checker, &broken, "broken close tag (cached)");
}

/// Reverting an edit (A → B → A) answers the third check from the
/// report cache alone: one hit, zero misses across every stage.
#[test]
fn reverted_edit_is_a_pure_report_hit() {
    let base = paper_xml();
    let edited = edit_behavior(&base, 9).expect("fixture has a compute site");
    let mut checker = Checker::new();
    checker.check(NAME, &base);
    checker.check(NAME, &edited);
    let before = checker.stats();
    check_against_oracle(&mut checker, &base, "revert to base");
    let delta = checker.stats().since(&before);
    assert_eq!(
        delta.total_misses(),
        0,
        "revert recomputes nothing:\n{}",
        delta.render()
    );
    assert_eq!(
        delta.total_hits(),
        1,
        "exactly the report lookup:\n{}",
        delta.render()
    );
}

/// Two documents with the same content share every content-keyed query:
/// checking the second name misses only the (name-keyed) report stage.
#[test]
fn identical_documents_share_the_content_keyed_caches() {
    let base = paper_xml();
    let mut checker = Checker::new();
    checker.check("first.xml", &base);
    let before = checker.stats();
    let out = checker.check("second.xml", &base);
    let oracle = check_source("second.xml", &base);
    assert_eq!(out.text, oracle.render_text());
    let delta = checker.stats().since(&before);
    assert_eq!(misses_of(&delta, "report"), 1);
    assert_eq!(
        delta.total_misses(),
        1,
        "only the report key is per-name:\n{}",
        delta.render()
    );
}
