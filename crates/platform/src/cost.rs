//! The execution cost model: workload units and action weight → cycles.
//!
//! "The parameterized models are used to perform a high-level
//! hardware/software co-simulation. In that case, the execution of
//! application processes is guided with the properties of the platform
//! components." (§3.2). This table is that guidance: it prices each
//! [`CostClass`] on each [`PeKind`], expressing the match (DSP code on a
//! DSP) and mismatch (bit-twiddling on a plain CPU) the paper's mapping
//! exploration exploits.

use tut_uml::action::CostClass;

use crate::pe::PeKind;

/// Cycles-per-unit table for every (element kind, workload class) pair.
#[derive(Clone, PartialEq, Debug)]
pub struct CostModel {
    /// `cycles[kind][class]`, indexed by [`kind_index`] / [`class_index`].
    table: [[u64; 4]; 3],
    /// Cycles charged per unit of action-language execution weight
    /// (statements, expression nodes), per element kind. A fixed-function
    /// accelerator does not interpret actions — its control flow is wired
    /// logic — so its multiplier is 0 and only `Compute` workload and the
    /// per-step overhead are priced.
    cycles_per_weight: [u64; 3],
    /// Fixed cycles charged per run-to-completion step (dispatch
    /// overhead: dequeue, trigger matching, context), per element kind.
    step_overhead: [u64; 3],
}

fn kind_index(kind: PeKind) -> usize {
    match kind {
        PeKind::GeneralCpu => 0,
        PeKind::DspCpu => 1,
        PeKind::HwAccelerator => 2,
    }
}

fn class_index(class: CostClass) -> usize {
    match class {
        CostClass::Control => 0,
        CostClass::Dsp => 1,
        CostClass::Bit => 2,
        CostClass::Mem => 3,
    }
}

impl CostModel {
    /// The default table used throughout the reproduction:
    ///
    /// | cycles/unit | control | dsp | bit | mem |
    /// |---|---|---|---|---|
    /// | general CPU | 1 | 4 | 16 | 2 |
    /// | DSP CPU | 2 | 1 | 16 | 2 |
    /// | HW accelerator | 64 | 64 | 1 | 4 |
    ///
    /// The accelerator runs bit-level work (CRC) an order of magnitude
    /// faster than a CPU, and is hopeless at general code — matching the
    /// paper's decision to map only `group4` (CRC processing) to
    /// `accelerator1`.
    pub fn paper_defaults() -> CostModel {
        CostModel {
            table: [[1, 4, 16, 2], [2, 1, 16, 2], [64, 64, 1, 4]],
            cycles_per_weight: [2, 2, 0],
            step_overhead: [20, 20, 4],
        }
    }

    /// Cycles for `units` of `class` work on a `kind` element.
    pub fn compute_cycles(&self, kind: PeKind, class: CostClass, units: u64) -> u64 {
        self.table[kind_index(kind)][class_index(class)].saturating_mul(units)
    }

    /// Cycles for `weight` units of action-language interpretation on a
    /// `kind` element.
    pub fn weight_cycles(&self, kind: PeKind, weight: u64) -> u64 {
        self.cycles_per_weight[kind_index(kind)].saturating_mul(weight)
    }

    /// The fixed dispatch overhead per run-to-completion step on a `kind`
    /// element.
    pub fn step_overhead_cycles(&self, kind: PeKind) -> u64 {
        self.step_overhead[kind_index(kind)]
    }

    /// Overrides one table entry (used by ablation benches).
    pub fn set_cycles_per_unit(&mut self, kind: PeKind, class: CostClass, cycles: u64) {
        self.table[kind_index(kind)][class_index(class)] = cycles;
    }

    /// Reads one table entry.
    pub fn cycles_per_unit(&self, kind: PeKind, class: CostClass) -> u64 {
        self.table[kind_index(kind)][class_index(class)]
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerator_wins_on_bit_work() {
        let m = CostModel::paper_defaults();
        let on_cpu = m.compute_cycles(PeKind::GeneralCpu, CostClass::Bit, 1000);
        let on_acc = m.compute_cycles(PeKind::HwAccelerator, CostClass::Bit, 1000);
        assert!(
            on_acc * 10 <= on_cpu,
            "accelerator should be >=10x faster on bit work"
        );
    }

    #[test]
    fn dsp_wins_on_dsp_work() {
        let m = CostModel::paper_defaults();
        assert!(
            m.compute_cycles(PeKind::DspCpu, CostClass::Dsp, 100)
                < m.compute_cycles(PeKind::GeneralCpu, CostClass::Dsp, 100)
        );
    }

    #[test]
    fn accelerator_is_terrible_at_control() {
        let m = CostModel::paper_defaults();
        assert!(
            m.compute_cycles(PeKind::HwAccelerator, CostClass::Control, 10)
                > m.compute_cycles(PeKind::GeneralCpu, CostClass::Control, 10)
        );
    }

    #[test]
    fn weight_and_overrides() {
        let mut m = CostModel::paper_defaults();
        assert_eq!(m.weight_cycles(PeKind::GeneralCpu, 10), 20);
        assert_eq!(
            m.weight_cycles(PeKind::HwAccelerator, 10),
            0,
            "fixed-function logic does not interpret actions"
        );
        assert!(
            m.step_overhead_cycles(PeKind::HwAccelerator)
                < m.step_overhead_cycles(PeKind::GeneralCpu)
        );
        m.set_cycles_per_unit(PeKind::GeneralCpu, CostClass::Bit, 1);
        assert_eq!(m.cycles_per_unit(PeKind::GeneralCpu, CostClass::Bit), 1);
        assert_eq!(m.compute_cycles(PeKind::GeneralCpu, CostClass::Bit, 5), 5);
    }

    #[test]
    fn paper_default_table_is_pinned() {
        // Regression: the code table drifted from the documented one
        // (accelerator mem was priced at 1 instead of 4). Pin every entry
        // so doc and code cannot diverge silently again.
        let m = CostModel::paper_defaults();
        let expected = [
            (PeKind::GeneralCpu, [1u64, 4, 16, 2]),
            (PeKind::DspCpu, [2, 1, 16, 2]),
            (PeKind::HwAccelerator, [64, 64, 1, 4]),
        ];
        let classes = [
            CostClass::Control,
            CostClass::Dsp,
            CostClass::Bit,
            CostClass::Mem,
        ];
        for (kind, row) in expected {
            for (class, cycles) in classes.into_iter().zip(row) {
                assert_eq!(
                    m.cycles_per_unit(kind, class),
                    cycles,
                    "{kind:?}/{class:?} must match the documented table"
                );
            }
        }
        for (kind, weight, overhead) in [
            (PeKind::GeneralCpu, 2, 20),
            (PeKind::DspCpu, 2, 20),
            (PeKind::HwAccelerator, 0, 4),
        ] {
            assert_eq!(m.weight_cycles(kind, 1), weight);
            assert_eq!(m.step_overhead_cycles(kind), overhead);
        }
    }

    #[test]
    fn saturating_multiplication() {
        let m = CostModel::paper_defaults();
        let huge = m.compute_cycles(PeKind::GeneralCpu, CostClass::Bit, u64::MAX);
        assert_eq!(huge, u64::MAX);
    }
}
