//! Processing-element descriptors.

use std::fmt;

/// The kind of a processing element; mirrors the `Type` tagged value of
/// `«PlatformComponent»` (general / dsp / hw accelerator).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PeKind {
    /// General-purpose soft-core CPU (the paper's Nios-class processors).
    #[default]
    GeneralCpu,
    /// DSP-oriented core.
    DspCpu,
    /// Fixed-function hardware accelerator (the paper's CRC-32 block).
    HwAccelerator,
}

impl PeKind {
    /// Stable lowercase name matching the profile's enum literals.
    pub fn name(self) -> &'static str {
        match self {
            PeKind::GeneralCpu => "general",
            PeKind::DspCpu => "dsp",
            PeKind::HwAccelerator => "hw_accelerator",
        }
    }

    /// Parses from the profile literal.
    pub fn from_name(name: &str) -> Option<PeKind> {
        match name {
            "general" => Some(PeKind::GeneralCpu),
            "dsp" => Some(PeKind::DspCpu),
            "hw_accelerator" => Some(PeKind::HwAccelerator),
            _ => None,
        }
    }
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterised processing element, assembled from the `Type`,
/// `Frequency`, `Area`, `Power`, and `IntMemory` tagged values of the
/// platform model.
#[derive(Clone, PartialEq, Debug)]
pub struct PeDescriptor {
    /// Display name (instance name, e.g. `processor1`).
    pub name: String,
    /// Element kind.
    pub kind: PeKind,
    /// Clock frequency in MHz.
    pub frequency_mhz: u32,
    /// Internal memory in bytes.
    pub int_memory_bytes: u64,
    /// Scheduling priority of the instance (higher value = more urgent;
    /// used to break ties between ready processes).
    pub priority: i64,
    /// Declared silicon area (arbitrary units).
    pub area: f64,
    /// Declared power (arbitrary units).
    pub power: f64,
}

impl PeDescriptor {
    /// A descriptor with the given name/kind/frequency and library
    /// defaults for the rest.
    pub fn new(name: impl Into<String>, kind: PeKind, frequency_mhz: u32) -> PeDescriptor {
        PeDescriptor {
            name: name.into(),
            kind,
            frequency_mhz: frequency_mhz.max(1),
            int_memory_bytes: 64 * 1024,
            priority: 0,
            area: 1.0,
            power: 0.1,
        }
    }

    /// Nanoseconds taken by `cycles` clock cycles on this element.
    pub fn ns_for_cycles(&self, cycles: u64) -> u64 {
        // ns = cycles * 1000 / MHz, rounded up so work never takes 0 time.
        (cycles * 1000)
            .div_ceil(u64::from(self.frequency_mhz))
            .max(u64::from(cycles > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in [PeKind::GeneralCpu, PeKind::DspCpu, PeKind::HwAccelerator] {
            assert_eq!(PeKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PeKind::from_name("fpga"), None);
    }

    #[test]
    fn cycle_to_time_conversion() {
        let pe = PeDescriptor::new("cpu", PeKind::GeneralCpu, 50);
        assert_eq!(pe.ns_for_cycles(50), 1000);
        assert_eq!(pe.ns_for_cycles(0), 0);
        assert_eq!(pe.ns_for_cycles(1), 20);
        let fast = PeDescriptor::new("acc", PeKind::HwAccelerator, 1000);
        assert_eq!(fast.ns_for_cycles(1), 1, "sub-ns work rounds up to 1 ns");
    }

    #[test]
    fn frequency_clamped_to_nonzero() {
        let pe = PeDescriptor::new("cpu", PeKind::GeneralCpu, 0);
        assert_eq!(pe.frequency_mhz, 1);
    }
}
