//! The CRC-32 hardware accelerator model.
//!
//! The paper's platform library "contains implementations of some time
//! critical algorithms, such as Cyclic Redundancy Check (CRC), that can be
//! used for hardware acceleration of protocol functions" (§4). This module
//! models that block: functionally a table-driven CRC-32 (IEEE 802.3,
//! bit-exact with the bitwise software reference in
//! [`tut_uml::action::crc32_bitwise`]) with hardware-like timing — a fixed
//! setup cost plus one cycle per input byte.

/// A table-driven CRC-32 engine with a hardware timing model.
#[derive(Clone, Debug)]
pub struct Crc32Accelerator {
    table: [u32; 256],
    /// Fixed cycles to load the descriptor and start the engine.
    pub setup_cycles: u64,
    /// Bytes consumed per cycle once streaming.
    pub bytes_per_cycle: u64,
}

impl Crc32Accelerator {
    /// Builds the engine (precomputes the lookup table) with the default
    /// timing: 4 setup cycles, 1 byte per cycle.
    pub fn new() -> Crc32Accelerator {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
            *entry = crc;
        }
        Crc32Accelerator {
            table,
            setup_cycles: 4,
            bytes_per_cycle: 1,
        }
    }

    /// Computes the CRC-32 of `data` (IEEE 802.3: reflected,
    /// init `!0`, xorout `!0`).
    pub fn compute(&self, data: &[u8]) -> u32 {
        let mut crc: u32 = !0;
        for &byte in data {
            let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            crc = (crc >> 8) ^ self.table[index];
        }
        !crc
    }

    /// The cycles the engine needs for `len` input bytes.
    pub fn cycles(&self, len: u64) -> u64 {
        self.setup_cycles + len.div_ceil(self.bytes_per_cycle.max(1))
    }

    /// Verifies `data` against an expected CRC (receive-side check).
    pub fn verify(&self, data: &[u8], expected: u32) -> bool {
        self.compute(data) == expected
    }
}

impl Default for Crc32Accelerator {
    fn default() -> Self {
        Crc32Accelerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_trace::SplitMix64;
    use tut_uml::action::crc32_bitwise;

    #[test]
    fn known_answer() {
        let acc = Crc32Accelerator::new();
        assert_eq!(acc.compute(b"123456789"), 0xCBF4_3926);
        assert_eq!(acc.compute(b""), 0);
    }

    #[test]
    fn verify_catches_corruption() {
        let acc = Crc32Accelerator::new();
        let crc = acc.compute(b"payload");
        assert!(acc.verify(b"payload", crc));
        assert!(!acc.verify(b"paxload", crc));
    }

    #[test]
    fn timing_model() {
        let acc = Crc32Accelerator::new();
        assert_eq!(acc.cycles(0), 4);
        assert_eq!(acc.cycles(100), 104);
    }

    fn random_bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        data
    }

    /// The "hardware" (table-driven) and "software" (bitwise) CRC
    /// implementations agree on all inputs — the invariant the paper
    /// relies on when moving CRC from software to the accelerator.
    #[test]
    fn hardware_matches_software_reference() {
        let acc = Crc32Accelerator::new();
        let mut rng = SplitMix64::new(0xC4C3_2001);
        for _ in 0..256 {
            let len = rng.next_index(512);
            let data = random_bytes(&mut rng, len);
            assert_eq!(acc.compute(&data), crc32_bitwise(&data));
        }
    }

    /// Single-bit corruption is always detected.
    #[test]
    fn single_bit_flips_detected() {
        let acc = Crc32Accelerator::new();
        let mut rng = SplitMix64::new(0xC4C3_2002);
        for _ in 0..256 {
            let len = 1 + rng.next_index(255);
            let data = random_bytes(&mut rng, len);
            let crc = acc.compute(&data);
            let mut corrupted = data.clone();
            let index = rng.next_index(corrupted.len());
            let bit = rng.next_index(8);
            corrupted[index] ^= 1 << bit;
            assert!(!acc.verify(&corrupted, crc));
        }
    }
}
