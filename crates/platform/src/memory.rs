//! Internal-memory accounting against the profile's memory tagged values.

use std::collections::BTreeMap;
use std::fmt;

/// Tracks allocations of one processing element's internal memory
/// (`IntMemory` tag) by the code/data requirements of the processes mapped
/// onto it (`CodeMemory` / `DataMemory` tags).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemoryBudget {
    capacity: u64,
    allocations: BTreeMap<String, u64>,
}

/// Error returned when an allocation exceeds the remaining capacity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocateMemoryError {
    /// The requesting allocation name.
    pub name: String,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes remaining before the request.
    pub available: u64,
}

impl fmt::Display for AllocateMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocation `{}` of {} bytes exceeds the {} bytes available",
            self.name, self.requested, self.available
        )
    }
}

impl std::error::Error for AllocateMemoryError {}

impl MemoryBudget {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: u64) -> MemoryBudget {
        MemoryBudget {
            capacity,
            allocations: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Records a named allocation (replacing a previous allocation of the
    /// same name).
    ///
    /// # Errors
    ///
    /// Returns [`AllocateMemoryError`] when the allocation does not fit;
    /// the budget is left unchanged.
    pub fn allocate(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
    ) -> Result<(), AllocateMemoryError> {
        let name = name.into();
        let existing = self.allocations.get(&name).copied().unwrap_or(0);
        let available = self.available() + existing;
        if bytes > available {
            return Err(AllocateMemoryError {
                name,
                requested: bytes,
                available,
            });
        }
        self.allocations.insert(name, bytes);
        Ok(())
    }

    /// Removes a named allocation, returning its size.
    pub fn release(&mut self, name: &str) -> Option<u64> {
        self.allocations.remove(name)
    }

    /// The allocations by name.
    pub fn allocations(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.allocations.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fraction of capacity used, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.capacity == 0 {
            return if self.used() > 0 { 1.0 } else { 0.0 };
        }
        self.used() as f64 / self.capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut budget = MemoryBudget::new(1000);
        budget.allocate("proc1.code", 400).unwrap();
        budget.allocate("proc1.data", 300).unwrap();
        assert_eq!(budget.used(), 700);
        assert_eq!(budget.available(), 300);
        assert!((budget.utilisation() - 0.7).abs() < 1e-12);
        assert_eq!(budget.release("proc1.code"), Some(400));
        assert_eq!(budget.used(), 300);
        assert_eq!(budget.release("proc1.code"), None);
    }

    #[test]
    fn over_allocation_rejected_without_mutation() {
        let mut budget = MemoryBudget::new(100);
        budget.allocate("a", 80).unwrap();
        let err = budget.allocate("b", 30).unwrap_err();
        assert_eq!(err.available, 20);
        assert_eq!(budget.used(), 80, "failed allocation must not change state");
    }

    #[test]
    fn reallocation_replaces() {
        let mut budget = MemoryBudget::new(100);
        budget.allocate("a", 80).unwrap();
        // Shrinking "a" is fine even though 90 > remaining 20.
        budget.allocate("a", 90).unwrap();
        assert_eq!(budget.used(), 90);
    }

    #[test]
    fn zero_capacity_edge() {
        let budget = MemoryBudget::new(0);
        assert_eq!(budget.utilisation(), 0.0);
    }
}
