//! The platform component library: processing-element models, execution
//! cost model, hardware accelerators, and memory budgets.
//!
//! The paper's platform is "Altera Stratix FPGA with soft processor cores"
//! plus "implementations of some time critical algorithms, such as Cyclic
//! Redundancy Check (CRC), that can be used for hardware acceleration"
//! (§4). This crate provides the simulation-side equivalents:
//!
//! * [`pe::PeDescriptor`] — a parameterised processing element (kind,
//!   frequency, internal memory), built from the Table 3 tagged values;
//! * [`cost::CostModel`] — converts action-language execution weight and
//!   `Compute` workload units into cycles, with a kind-vs-workload match
//!   matrix (a DSP runs `dsp` work fast, a CPU runs `bit` work slowly,
//!   the accelerator runs `bit` work very fast and anything else not at
//!   all well);
//! * [`accel::Crc32Accelerator`] — a table-driven CRC-32 engine that is
//!   bit-exact with the software reference
//!   ([`tut_uml::action::crc32_bitwise`]) but with hardware-like timing;
//! * [`memory::MemoryBudget`] — internal-memory accounting against the
//!   `IntMemory` / `CodeMemory` / `DataMemory` tagged values;
//! * [`library::ComponentLibrary`] — the named catalogue a designer picks
//!   components from (§4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod cost;
pub mod library;
pub mod memory;
pub mod pe;

pub use accel::Crc32Accelerator;
pub use cost::CostModel;
pub use library::ComponentLibrary;
pub use memory::MemoryBudget;
pub use pe::{PeDescriptor, PeKind};
