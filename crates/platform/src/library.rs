//! The named component catalogue a designer instantiates platforms from.
//!
//! "When describing hardware platform, the designer selects suitable
//! components from the TUT-Profile library and connects components
//! together" (§4.2). [`ComponentLibrary::tut_defaults`] is that library
//! for this reproduction: Nios-class soft cores, a DSP core, and the
//! CRC-32 accelerator.

use std::collections::BTreeMap;

use crate::pe::{PeDescriptor, PeKind};

/// A named catalogue of processing-element templates.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ComponentLibrary {
    entries: BTreeMap<String, PeDescriptor>,
}

impl ComponentLibrary {
    /// An empty library.
    pub fn new() -> ComponentLibrary {
        ComponentLibrary::default()
    }

    /// The default TUT library: `nios/50` general CPU, `nios/100` fast
    /// general CPU, `dsp/100` DSP core, and `crc32` accelerator.
    pub fn tut_defaults() -> ComponentLibrary {
        let mut lib = ComponentLibrary::new();
        let mut nios50 = PeDescriptor::new("nios50", PeKind::GeneralCpu, 50);
        nios50.area = 2.0;
        nios50.power = 0.50;
        lib.register(nios50);

        let mut nios100 = PeDescriptor::new("nios100", PeKind::GeneralCpu, 100);
        nios100.area = 2.6;
        nios100.power = 0.95;
        lib.register(nios100);

        let mut dsp = PeDescriptor::new("dsp100", PeKind::DspCpu, 100);
        dsp.area = 3.4;
        dsp.power = 1.10;
        lib.register(dsp);

        let mut crc = PeDescriptor::new("crc32", PeKind::HwAccelerator, 100);
        crc.area = 0.2;
        crc.power = 0.05;
        crc.int_memory_bytes = 4 * 1024;
        lib.register(crc);
        lib
    }

    /// Adds (or replaces) a template under its own name.
    pub fn register(&mut self, descriptor: PeDescriptor) {
        self.entries.insert(descriptor.name.clone(), descriptor);
    }

    /// Looks up a template by name.
    pub fn get(&self, name: &str) -> Option<&PeDescriptor> {
        self.entries.get(name)
    }

    /// Instantiates a template under a new instance name.
    pub fn instantiate(&self, template: &str, instance_name: &str) -> Option<PeDescriptor> {
        self.entries.get(template).map(|d| {
            let mut instance = d.clone();
            instance.name = instance_name.to_owned();
            instance
        })
    }

    /// Iterates the templates in name order.
    pub fn iter(&self) -> impl Iterator<Item = &PeDescriptor> + '_ {
        self.entries.values()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_platform() {
        let lib = ComponentLibrary::tut_defaults();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.get("nios50").unwrap().kind, PeKind::GeneralCpu);
        assert_eq!(lib.get("crc32").unwrap().kind, PeKind::HwAccelerator);
        assert!(lib.get("missing").is_none());
    }

    #[test]
    fn instantiate_renames() {
        let lib = ComponentLibrary::tut_defaults();
        let pe = lib.instantiate("nios50", "processor1").unwrap();
        assert_eq!(pe.name, "processor1");
        assert_eq!(pe.frequency_mhz, 50);
        assert!(lib.instantiate("bogus", "x").is_none());
    }

    #[test]
    fn register_replaces() {
        let mut lib = ComponentLibrary::new();
        lib.register(PeDescriptor::new("cpu", PeKind::GeneralCpu, 50));
        lib.register(PeDescriptor::new("cpu", PeKind::GeneralCpu, 100));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get("cpu").unwrap().frequency_mhz, 100);
    }
}
